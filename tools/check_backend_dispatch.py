#!/usr/bin/env python
"""Lint guard: the autograd hot-path primitives must stay backend-dispatched.

``repro/autograd/functional.py``'s sparse/fused hot-path functions (``spmm``,
``spmm_batched``, ``sddmm``, ``spmm_pattern``, ``dropout``) are required to
route every array operation through the operand tensor's
:class:`~repro.autograd.backend.ArrayBackend` — either a registered kernel
(``backend.spmm(...)``) or the backend namespace (``backend.xp.asarray``).
A bare ``np.`` call inside one of them silently pins that op to host numpy
and breaks the CuPy seam, so this guard walks the AST and rejects any
``np.<attr>`` usage (and any ``scipy.sparse`` *math* beyond ``sp.issparse``
type checks) inside the hot-path function bodies.

Exit status: 0 when clean, 1 with a findings listing otherwise.  Run from
the repository root (CI wires it into the backend-matrix job)::

    python tools/check_backend_dispatch.py
"""

from __future__ import annotations

import ast
import pathlib
import sys

#: functions in functional.py whose bodies must contain no bare numpy math
HOT_PATH_FUNCTIONS = ("spmm", "spmm_batched", "sddmm", "spmm_pattern",
                      "dropout")

#: ``sp.`` attributes that are type plumbing, not array math
ALLOWED_SPARSE_ATTRS = {"issparse", "spmatrix", "csr_matrix"}

TARGET = pathlib.Path("src/repro/autograd/functional.py")


def _annotation_nodes(func: ast.FunctionDef) -> set:
    """Ids of every AST node inside a type annotation (not executable math)."""
    roots = [arg.annotation for arg in
             (func.args.args + func.args.posonlyargs + func.args.kwonlyargs)
             if arg.annotation is not None]
    if func.returns is not None:
        roots.append(func.returns)
    for node in ast.walk(func):
        if isinstance(node, ast.AnnAssign):
            roots.append(node.annotation)
    return {id(n) for root in roots for n in ast.walk(root)}


def _violations_in(func: ast.FunctionDef) -> list:
    skip = _annotation_nodes(func)
    found = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Attribute) or id(node) in skip:
            continue
        root = node.value
        if not isinstance(root, ast.Name):
            continue
        if root.id == "np":
            found.append((node.lineno, f"np.{node.attr}"))
        elif root.id == "sp" and node.attr not in ALLOWED_SPARSE_ATTRS:
            found.append((node.lineno, f"sp.{node.attr}"))
    return found


def check(path: pathlib.Path = TARGET) -> list:
    """Return ``(function, line, expression)`` tuples for every violation."""
    tree = ast.parse(path.read_text(), filename=str(path))
    hot = {node.name: node for node in tree.body
           if isinstance(node, ast.FunctionDef)
           and node.name in HOT_PATH_FUNCTIONS}
    missing = set(HOT_PATH_FUNCTIONS) - set(hot)
    if missing:
        raise SystemExit(
            f"{path}: hot-path functions not found: {sorted(missing)} "
            f"(was a primitive renamed without updating the guard?)")
    violations = []
    for name, node in sorted(hot.items()):
        for lineno, expr in _violations_in(node):
            violations.append((name, lineno, expr))
    return violations


def main() -> int:
    violations = check()
    if not violations:
        print(f"backend dispatch guard: {TARGET} clean "
              f"({', '.join(HOT_PATH_FUNCTIONS)})")
        return 0
    print(f"backend dispatch guard: bare array math in {TARGET} hot paths —")
    for name, lineno, expr in violations:
        print(f"  {TARGET}:{lineno}: {expr} inside {name}() "
              f"(route through the tensor's ArrayBackend instead)")
    return 1


if __name__ == "__main__":
    sys.exit(main())

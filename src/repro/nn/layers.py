"""Dense layers used by the GNN models."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.autograd import Tensor, functional as F
from repro.nn.module import Module, Parameter
from repro.nn.init import glorot_uniform, zeros_init


class Identity(Module):
    """Pass-through layer."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine transformation ``y = x W + b``.

    Accepts stacked inputs of shape ``(B, n, in_features)`` as well as the
    usual ``(n, in_features)``: the matmul broadcasts the shared weight over
    the leading batch axis and the bias gradient is reduced over it, which is
    what the batched federated execution backend relies on.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_uniform(in_features, out_features, rng),
                                name="weight")
        self.use_bias = bias
        if bias:
            self.bias = Parameter(zeros_init(out_features), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.use_bias:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout layer; active only in training mode."""

    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __len__(self) -> int:
        return len(self._order)


class MLP(Module):
    """Multi-layer perceptron with ReLU activations and dropout.

    ``hidden_dims`` may be empty, in which case the model reduces to a single
    linear layer (logistic regression when followed by softmax).
    """

    def __init__(self, in_features: int, hidden_dims: Sequence[int],
                 out_features: int, dropout: float = 0.0,
                 activation: Callable[[Tensor], Tensor] = F.relu,
                 bias: bool = True, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [in_features] + list(hidden_dims) + [out_features]
        self._layer_names = []
        for index, (fan_in, fan_out) in enumerate(zip(dims[:-1], dims[1:])):
            name = f"lin{index}"
            setattr(self, name, Linear(fan_in, fan_out, bias=bias, rng=rng))
            self._layer_names.append(name)
        self.activation = activation
        self.dropout = Dropout(dropout, seed=seed + 1)

    def forward(self, x: Tensor) -> Tensor:
        last = len(self._layer_names) - 1
        for index, name in enumerate(self._layer_names):
            x = getattr(self, name)(x)
            if index != last:
                x = self.activation(x)
                x = self.dropout(x)
        return x

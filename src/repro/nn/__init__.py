"""Minimal neural-network layer library built on :mod:`repro.autograd`."""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Linear, MLP, Dropout, Identity, Sequential
from repro.nn.init import glorot_uniform, zeros_init, he_uniform
from repro.nn.losses import CrossEntropyLoss, KnowledgePreservingLoss

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Dropout",
    "Identity",
    "Sequential",
    "glorot_uniform",
    "zeros_init",
    "he_uniform",
    "CrossEntropyLoss",
    "KnowledgePreservingLoss",
]

"""Loss functions wrapped as callables (Eq. 3, Eq. 8, Eq. 14 of the paper)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Tensor, functional as F


class CrossEntropyLoss:
    """Cross-entropy over the supervised node set (Eq. 3)."""

    def __call__(self, logits: Tensor, labels: np.ndarray,
                 mask: Optional[np.ndarray] = None) -> Tensor:
        return F.cross_entropy(logits, labels, mask=mask)


class KnowledgePreservingLoss:
    """Frobenius discrepancy between knowledge and local embeddings (Eq. 8).

    ``weight`` rescales the term so it does not dominate the supervised loss.
    """

    def __init__(self, weight: float = 1.0):
        self.weight = weight

    def __call__(self, knowledge_embedding: Tensor, reference) -> Tensor:
        return F.frobenius_loss(knowledge_embedding, reference) * self.weight

"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np


def glorot_uniform(fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a (fan_in, fan_out) matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_uniform(fan_in: int, fan_out: int,
               rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation (suited to ReLU activations)."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros_init(*shape: int) -> np.ndarray:
    """All-zero initialisation (used for biases)."""
    return np.zeros(shape)

"""Module/Parameter abstractions with federated-friendly state handling.

Federated averaging needs to read and write flat dictionaries of numpy
weights, so :class:`Module` exposes :meth:`state_dict` / :meth:`load_state_dict`
operating directly on numpy arrays (deep copies, never views).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional

import numpy as np

from repro.autograd import Tensor, resolve_backend


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter."""

    def __init__(self, data, name: Optional[str] = None, backend=None):
        super().__init__(data, requires_grad=True, name=name, backend=backend)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for optimisation and
    (de)serialisation.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter iteration
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter (depth-first, deterministic order)."""
        for param in self._parameters.values():
            yield param
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple]:
        for name, param in self._parameters.items():
            yield (prefix + name, param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module."""
        return int(sum(p.data.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def to_backend(self, backend) -> "Module":
        """Move every parameter onto the given array backend (in place).

        Only trainable parameters move; constant operands (propagation
        matrices, feature arrays) are converted lazily at the dispatch seam
        by the backend consuming them.
        """
        resolved = resolve_backend(backend)
        for param in self.parameters():
            param.backend = resolved
            param.data = resolved.asarray(param.data)
        return self

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    # ------------------------------------------------------------------
    # State dict (numpy based, for FedAvg)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat name → host numpy array copy of every parameter."""
        return {name: param.backend.to_host(param.data).copy()
                for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values from a flat dict produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = param.backend.asarray(np.asarray(state[name],
                                                     dtype=np.float64))
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {param.data.shape}, "
                    f"got {value.shape}")
            param.data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

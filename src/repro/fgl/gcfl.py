"""GCFL+ (Xie et al., 2021): gradient-driven client clustering.

Clients are grouped by the similarity of their model updates (gradients); the
server performs FedAvg *within* each discovered cluster, so clients with very
different data distributions stop hurting each other.

The clustering and per-cluster averaging live in one
:class:`~repro.federated.engine.AggregationStrategy`
(:class:`GCFLAggregation`); the trainer subclass only declares it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.federated import FederatedConfig, FederatedTrainer, fedavg_aggregate
from repro.federated.engine import AggregationStrategy
from repro.fgl.fedgnn import make_model_factory
from repro.graph import Graph


def _flatten(state: Dict[str, np.ndarray]) -> np.ndarray:
    return np.concatenate([state[key].ravel() for key in sorted(state)])


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    denom = (np.linalg.norm(a) * np.linalg.norm(b)) + 1e-12
    return float(np.dot(a, b) / denom)


class GCFLAggregation(AggregationStrategy):
    """FedAvg within clusters of similar gradient directions."""

    name = "gcfl+"

    def __init__(self, num_clusters: int = 2,
                 initial_state: Optional[Dict[str, np.ndarray]] = None):
        self.num_clusters = max(1, num_clusters)
        self._cluster_of: Dict[int, int] = {}
        self._previous_broadcast: Optional[Dict[str, np.ndarray]] = \
            initial_state
        self._cluster_states: Dict[int, Dict[str, np.ndarray]] = {}

    # ------------------------------------------------------------------
    def _cluster_clients(self, updates: Dict[int, np.ndarray]) -> None:
        """Greedy 2-means style clustering of gradient directions."""
        ids = sorted(updates)
        if len(ids) <= self.num_clusters:
            for index, client_id in enumerate(ids):
                self._cluster_of[client_id] = index
            return
        # Seed centroids with the two most dissimilar updates.
        best_pair, best_score = (ids[0], ids[-1]), 2.0
        for i in ids:
            for j in ids:
                if j <= i:
                    continue
                score = _cosine(updates[i], updates[j])
                if score < best_score:
                    best_score = score
                    best_pair = (i, j)
        centroids = [updates[best_pair[0]], updates[best_pair[1]]]
        while len(centroids) < self.num_clusters:
            centroids.append(updates[ids[len(centroids) % len(ids)]])
        for client_id in ids:
            sims = [_cosine(updates[client_id], c) for c in centroids]
            self._cluster_of[client_id] = int(np.argmax(sims))

    def aggregate(self, states, weights, context=None):
        """Cluster participants by update direction, FedAvg per cluster."""
        participants = context.participants if context else []
        if self._previous_broadcast is None and participants:
            self._previous_broadcast = participants[0].get_weights()
        updates = {}
        previous = _flatten(self._previous_broadcast)
        for client, state in zip(participants, states):
            updates[client.client_id] = _flatten(state) - previous
            if context is not None:
                context.trainer.tracker.record_upload("model_gradients",
                                                      previous.size)
        self._cluster_clients(updates)

        self._cluster_states = {}
        for cluster_id in set(self._cluster_of[c.client_id]
                              for c in participants):
            members = [i for i, c in enumerate(participants)
                       if self._cluster_of[c.client_id] == cluster_id]
            self._cluster_states[cluster_id] = fedavg_aggregate(
                [states[i] for i in members], [weights[i] for i in members])

        # The "global" state (used for bookkeeping) averages everything.
        global_state = fedavg_aggregate(states, weights)
        self._previous_broadcast = global_state
        return global_state

    def personalize(self, client, global_state, context=None):
        cluster_id = self._cluster_of.get(client.client_id, 0)
        return self._cluster_states.get(cluster_id, global_state)


class GCFLPlus(FederatedTrainer):
    """GCFL+ = FedAvg trainer + :class:`GCFLAggregation` strategy."""

    name = "GCFL+"

    def __init__(self, subgraphs: Sequence[Graph], model_name: str = "gcn",
                 hidden: int = 64, num_clusters: int = 2,
                 config: Optional[FederatedConfig] = None):
        factory = make_model_factory(model_name, hidden=hidden,
                                     seed=(config.seed if config else 0))
        super().__init__(subgraphs, factory, config)
        self.num_clusters = max(1, min(num_clusters, len(self.clients)))
        self.strategy = GCFLAggregation(
            num_clusters=self.num_clusters,
            initial_state=self.clients[0].get_weights())
        self.strategy._cluster_of = {c.client_id: 0 for c in self.clients}

    # Backwards-compatible views onto the strategy state.
    @property
    def _cluster_of(self) -> Dict[int, int]:
        return self.strategy._cluster_of

    @property
    def _cluster_states(self) -> Dict[int, Dict[str, np.ndarray]]:
        return self.strategy._cluster_states

    @property
    def _previous_broadcast(self) -> Dict[str, np.ndarray]:
        return self.strategy._previous_broadcast

"""Federated implementations of representative GNNs (FedGCN, FedGloGNN, ...).

These baselines apply plain FedAvg to a centralised GNN architecture: each
client trains the same architecture locally and the server averages weights.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.autograd import use_backend
from repro.federated import FederatedConfig, FederatedTrainer
from repro.graph import Graph
from repro.models import (
    GAMLP,
    GCN,
    GCNII,
    GGCN,
    MLP,
    GPRGNN,
    GloGNN,
    SGC,
)
from repro.nn import Module


class FeatureOnlyModel(Module):
    """Adapter giving an MLP the ``forward(x, adjacency)`` graph-model API."""

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 dropout: float = 0.5, seed: int = 0):
        super().__init__()
        self.mlp = MLP(in_features, [hidden], out_features, dropout=dropout,
                       seed=seed)

    def forward(self, x, adjacency=None):
        del adjacency  # structure-agnostic baseline
        return self.mlp(x)


#: propagation depth each decoupled/propagation-family model defaults to
DEFAULT_PROPAGATION_DEPTH = {"sgc": 2, "gamlp": 3, "gprgnn": 4}


def make_model_factory(model_name: str, hidden: int = 64, dropout: float = 0.5,
                       seed: int = 0,
                       k: Optional[int] = None,
                       array_backend=None) -> Callable[[Graph], Module]:
    """Return a callable building the requested model for a client subgraph.

    ``k`` overrides the propagation depth of the decoupled/propagation
    family (SGC / GAMLP / GPR-GNN — every client must share it for the
    batched engine to fuse the federation); other models ignore it.
    ``array_backend`` scopes parameter creation to the given array backend
    (``None`` inherits the caller's active scope — e.g. the trainer's
    ``config.array_backend`` wrap).
    """
    name = model_name.lower()
    depth = k if k is not None else DEFAULT_PROPAGATION_DEPTH.get(name)

    def build(graph: Graph) -> Module:
        in_features = graph.num_features
        out_features = graph.num_classes
        if name == "mlp":
            return FeatureOnlyModel(in_features, hidden, out_features,
                                    dropout=dropout, seed=seed)
        if name == "gcn":
            return GCN(in_features, hidden, out_features, dropout=dropout,
                       seed=seed)
        if name == "sgc":
            return SGC(in_features, out_features, k=depth, seed=seed)
        if name == "gcnii":
            return GCNII(in_features, hidden, out_features, num_layers=4,
                         dropout=dropout, seed=seed)
        if name == "gamlp":
            return GAMLP(in_features, hidden, out_features, k=depth,
                         dropout=dropout, seed=seed)
        if name == "gprgnn":
            return GPRGNN(in_features, hidden, out_features, k=depth,
                          dropout=dropout, seed=seed)
        if name == "ggcn":
            return GGCN(in_features, hidden, out_features, dropout=dropout,
                        seed=seed)
        if name == "glognn":
            return GloGNN(in_features, hidden, out_features, dropout=dropout,
                          seed=seed)
        raise KeyError(f"unknown model '{model_name}'")

    def factory(graph: Graph) -> Module:
        with use_backend(array_backend):
            return build(graph)

    return factory


class FederatedGNN(FederatedTrainer):
    """FedAvg applied to a centralised GNN architecture (e.g. FedGCN)."""

    def __init__(self, subgraphs: Sequence[Graph], model_name: str = "gcn",
                 hidden: int = 64, dropout: float = 0.5,
                 k: Optional[int] = None,
                 config: Optional[FederatedConfig] = None):
        self.model_name = model_name.lower()
        self.name = f"Fed{model_name.upper()}"
        factory = make_model_factory(
            model_name, hidden=hidden, dropout=dropout,
            seed=(config.seed if config else 0), k=k,
            array_backend=(config.array_backend if config else None))
        super().__init__(subgraphs, factory, config)

"""Federated graph learning baselines evaluated in the paper.

* Federated implementations of centralised GNNs (FedGCN, FedGCNII, FedGAMLP,
  FedGPRGNN, FedGGCN, FedGloGNN) — plain FedAvg over the corresponding model.
* FGL-specific methods: FedGL, GCFL+, FedSage+, FED-PUB.
"""

from repro.fgl.fedgnn import FederatedGNN, make_model_factory
from repro.fgl.fedgl import FedGL
from repro.fgl.gcfl import GCFLPlus, GCFLAggregation
from repro.fgl.fedsage import FedSagePlus
from repro.fgl.fedpub import FedPub, FedPubAggregation
from repro.fgl.registry import BASELINE_REGISTRY, build_baseline, list_baselines

__all__ = [
    "FederatedGNN",
    "make_model_factory",
    "FedGL",
    "GCFLPlus",
    "GCFLAggregation",
    "FedSagePlus",
    "FedPub",
    "FedPubAggregation",
    "BASELINE_REGISTRY",
    "build_baseline",
    "list_baselines",
]

"""FED-PUB (Baek et al., 2023): personalized subgraph federated learning.

The server estimates functional similarity between clients (we use the cosine
similarity of their uploaded weights, which approximates the paper's
random-graph functional embeddings) and sends every client a *personalized*
similarity-weighted average of the uploaded models.  Each client additionally
learns a sparse mask that interpolates between the personalized aggregate and
its own previous local weights.

The whole method is expressed as one
:class:`~repro.federated.engine.AggregationStrategy`
(:class:`FedPubAggregation`); the trainer subclass only declares it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.federated import FederatedConfig, FederatedTrainer, fedavg_aggregate
from repro.federated.client import Client
from repro.federated.engine import AggregationStrategy
from repro.fgl.fedgnn import make_model_factory
from repro.graph import Graph


def _flatten(state: Dict[str, np.ndarray]) -> np.ndarray:
    return np.concatenate([state[key].ravel() for key in sorted(state)])


class FedPubAggregation(AggregationStrategy):
    """Similarity-weighted personalized aggregation with local masking."""

    name = "fed-pub"

    def __init__(self, temperature: float = 5.0, local_mix: float = 0.25):
        self.temperature = temperature
        self.local_mix = local_mix
        self._personalized: Dict[int, Dict[str, np.ndarray]] = {}
        self._local_states: Dict[int, Dict[str, np.ndarray]] = {}

    def aggregate(self, states, weights, context=None):
        """Compute one personalized aggregate per participating client."""
        participants = context.participants if context else []
        vectors = [_flatten(state) for state in states]
        norms = [np.linalg.norm(v) + 1e-12 for v in vectors]
        global_state = fedavg_aggregate(states, weights)

        self._personalized = {}
        for i, client in enumerate(participants):
            sims = np.array([
                float(np.dot(vectors[i], vectors[j]) / (norms[i] * norms[j]))
                for j in range(len(participants))
            ])
            attention = np.exp(self.temperature * sims)
            attention /= attention.sum()
            personalized = fedavg_aggregate(states, attention.tolist())
            self._personalized[client.client_id] = personalized
            self._local_states[client.client_id] = states[i]
            if context is not None:
                context.trainer.tracker.record_upload(
                    "model_masks", sum(v.size for v in states[i].values()))
        return global_state

    def personalize(self, client, global_state, context=None):
        personalized = self._personalized.get(client.client_id)
        if personalized is None:
            return global_state
        local = self._local_states.get(client.client_id)
        if local is None:
            return personalized
        # Sparse-mask interpolation: keep a fraction of the local weights.
        mixed = {}
        for key in personalized:
            mixed[key] = ((1.0 - self.local_mix) * personalized[key]
                          + self.local_mix * local[key])
        return mixed


class FedPub(FederatedTrainer):
    """FED-PUB = FedAvg trainer + :class:`FedPubAggregation` strategy."""

    name = "FED-PUB"

    def __init__(self, subgraphs: Sequence[Graph], model_name: str = "gcn",
                 hidden: int = 64, temperature: float = 5.0,
                 local_mix: float = 0.25,
                 config: Optional[FederatedConfig] = None):
        factory = make_model_factory(model_name, hidden=hidden,
                                     seed=(config.seed if config else 0))
        super().__init__(subgraphs, factory, config)
        self.strategy = FedPubAggregation(temperature=temperature,
                                          local_mix=local_mix)

    # Backwards-compatible views onto the strategy state.
    @property
    def temperature(self) -> float:
        return self.strategy.temperature

    @property
    def local_mix(self) -> float:
        return self.strategy.local_mix

    @property
    def _personalized(self) -> Dict[int, Dict[str, np.ndarray]]:
        return self.strategy._personalized

    @property
    def _local_states(self) -> Dict[int, Dict[str, np.ndarray]]:
        return self.strategy._local_states

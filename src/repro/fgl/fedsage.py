"""FedSage+ (Zhang et al., 2021): missing-neighbour generation.

Community/Metis splits cut edges between clients, so every client is missing
part of its nodes' neighbourhoods.  FedSage+ trains a neighbour generator
(NeighGen) that, for each node, predicts how many neighbours are missing and
synthesises their features; the local subgraph is then augmented with the
generated neighbours before classifier training, and classifiers are averaged
with FedAvg.

Our NeighGen is a linear ridge-regression generator trained on the local
subgraph (predicting a neighbour-feature centroid from a node's own features)
plus a degree-deficit estimate from the global-vs-local degree gap; this keeps
the code dependency-free while exercising the same augmentation pipeline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.federated import FederatedConfig, FederatedTrainer
from repro.fgl.fedgnn import make_model_factory
from repro.graph import Graph
from repro.graph.utils import adjacency_from_edges, edges_from_adjacency


class NeighGen:
    """Linear neighbour-feature generator with a degree-deficit estimator."""

    def __init__(self, ridge: float = 1.0, seed: int = 0):
        self.ridge = ridge
        self.rng = np.random.default_rng(seed)
        self.weights: Optional[np.ndarray] = None
        self.noise_scale: float = 0.1

    def fit(self, graph: Graph) -> "NeighGen":
        """Fit the generator on (node feature → mean neighbour feature) pairs."""
        adjacency = sp.csr_matrix(graph.adjacency)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        degrees_safe = np.maximum(degrees, 1.0)
        neighbour_mean = sp.diags(1.0 / degrees_safe) @ adjacency @ graph.features

        x = graph.features
        y = neighbour_mean
        gram = x.T @ x + self.ridge * np.eye(x.shape[1])
        self.weights = np.linalg.solve(gram, x.T @ y)
        residual = y - x @ self.weights
        self.noise_scale = float(residual.std()) + 1e-6
        return self

    def generate(self, node_features: np.ndarray, count: int) -> np.ndarray:
        """Generate ``count`` synthetic neighbour feature vectors for a node."""
        if self.weights is None:
            raise RuntimeError("NeighGen must be fitted before generation")
        mean = node_features @ self.weights
        noise = self.rng.normal(scale=self.noise_scale,
                                size=(count, mean.shape[0]))
        return mean[None, :] + noise

    @property
    def num_parameters(self) -> int:
        return 0 if self.weights is None else int(self.weights.size)


def augment_with_generated_neighbours(graph: Graph, generator: NeighGen,
                                      max_new_per_node: int = 2,
                                      deficit_quantile: float = 0.3,
                                      seed: int = 0) -> Graph:
    """Return a copy of ``graph`` with generated neighbours attached.

    Nodes whose degree falls below the ``deficit_quantile`` of the local
    degree distribution are assumed to be missing cross-client neighbours and
    receive up to ``max_new_per_node`` generated neighbours.  Generated nodes
    inherit the label predicted by majority of their seed node (they are never
    used for supervision or evaluation).
    """
    degrees = graph.degrees
    threshold = np.quantile(degrees, deficit_quantile) if degrees.size else 0
    deficit_nodes = np.nonzero(degrees <= threshold)[0]
    if deficit_nodes.size == 0:
        return graph.copy()

    rng = np.random.default_rng(seed)
    new_features: List[np.ndarray] = []
    new_labels: List[int] = []
    new_edges: List[tuple] = []
    next_id = graph.num_nodes
    for node in deficit_nodes:
        count = int(rng.integers(1, max_new_per_node + 1))
        generated = generator.generate(graph.features[node], count)
        for row in generated:
            new_features.append(row)
            new_labels.append(int(graph.labels[node]))
            new_edges.append((int(node), next_id))
            next_id += 1

    total = next_id
    features = np.vstack([graph.features, np.asarray(new_features)])
    labels = np.concatenate([graph.labels, np.asarray(new_labels)])
    base_edges = edges_from_adjacency(graph.adjacency)
    edges = np.vstack([base_edges, np.asarray(new_edges, dtype=np.int64)])
    adjacency = adjacency_from_edges(edges, total)

    pad = np.zeros(total - graph.num_nodes, dtype=bool)
    augmented = Graph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        train_mask=np.concatenate([graph.train_mask, pad]),
        val_mask=np.concatenate([graph.val_mask, pad]),
        test_mask=np.concatenate([graph.test_mask, pad]),
        name=f"{graph.name}-augmented",
        metadata={**graph.metadata, "generated_nodes": total - graph.num_nodes},
    )
    return augmented


class FedSagePlus(FederatedTrainer):
    """FedAvg over classifiers trained on NeighGen-augmented subgraphs."""

    name = "FedSage+"

    def __init__(self, subgraphs: Sequence[Graph], model_name: str = "gcn",
                 hidden: int = 64, max_new_per_node: int = 2,
                 config: Optional[FederatedConfig] = None):
        config = config or FederatedConfig()
        self.generators: List[NeighGen] = []
        augmented: List[Graph] = []
        for index, graph in enumerate(subgraphs):
            generator = NeighGen(seed=config.seed + index).fit(graph)
            self.generators.append(generator)
            augmented.append(augment_with_generated_neighbours(
                graph, generator, max_new_per_node=max_new_per_node,
                seed=config.seed + index))
        factory = make_model_factory(model_name, hidden=hidden,
                                     seed=config.seed)
        super().__init__(augmented, factory, config)
        # Account for NeighGen training communication (cross-client losses).
        for generator in self.generators:
            self.tracker.record_upload("neighgen_parameters",
                                       generator.num_parameters)
            self.tracker.record_download("neighgen_gradients",
                                         generator.num_parameters)

"""FedGL (Chen et al., 2021): global self-supervision through pseudo-labels.

Clients upload local predictions and embeddings; the server fuses them into
global supervised information (pseudo-labels) which is broadcast back and used
as an additional loss on confident unlabeled nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import Tensor, functional as F
from repro.federated import FederatedConfig, FederatedTrainer
from repro.federated.client import Client
from repro.fgl.fedgnn import make_model_factory
from repro.graph import Graph


class FedGL(FederatedTrainer):
    """FedAvg + server-generated pseudo-label supervision."""

    name = "FedGL"

    def __init__(self, subgraphs: Sequence[Graph], model_name: str = "gcn",
                 hidden: int = 64, confidence: float = 0.8,
                 pseudo_weight: float = 0.5,
                 config: Optional[FederatedConfig] = None):
        factory = make_model_factory(model_name, hidden=hidden,
                                     seed=(config.seed if config else 0))
        super().__init__(subgraphs, factory, config)
        self.confidence = confidence
        self.pseudo_weight = pseudo_weight
        self._pseudo: Dict[int, np.ndarray] = {}
        for client in self.clients:
            client.extra_loss = self._make_extra_loss(client.client_id)

    def _make_extra_loss(self, client_id: int):
        def extra(client: Client, logits: Tensor):
            pseudo = self._pseudo.get(client_id)
            if pseudo is None:
                return None
            labels, mask = pseudo
            if mask.sum() == 0:
                return None
            return F.cross_entropy(logits, labels, mask=mask) * self.pseudo_weight
        return extra

    def after_round(self, round_index: int,
                    participants: List[Client]) -> None:
        """Generate global pseudo-labels from each client's predictions.

        Each client uploads its class-probability matrix and node embedding
        (tracked for communication volume); the server keeps high-confidence
        predictions on unlabeled nodes as pseudo-label supervision for the
        next round.
        """
        for client in participants:
            probs = client.predict()
            self.tracker.record_upload("node_predictions", probs.size)
            self.tracker.record_upload("node_embeddings", probs.size)
            confident = probs.max(axis=1) >= self.confidence
            unlabeled = ~client.graph.train_mask
            mask = confident & unlabeled
            pseudo_labels = probs.argmax(axis=1)
            self._pseudo[client.client_id] = (pseudo_labels, mask)
            self.tracker.record_download("pseudo_labels", float(mask.sum()))

"""Unified construction of every federated method evaluated in the paper.

Every trainer built here runs through the federation engine
(:mod:`repro.federated.engine`): the ``config`` argument's ``backend`` /
``num_workers`` / ``aggregation`` fields select the execution backend and
server aggregation strategy.  Methods with a built-in strategy (``fed-pub``,
``gcfl+``) keep their own aggregation; the rest honour ``config.aggregation``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.federated import FederatedConfig, FederatedTrainer
from repro.fgl.fedgl import FedGL
from repro.fgl.fedgnn import FederatedGNN
from repro.fgl.fedpub import FedPub
from repro.fgl.fedsage import FedSagePlus
from repro.fgl.gcfl import GCFLPlus
from repro.graph import Graph


def _fed_gnn(model_name: str):
    def build(subgraphs, config, hidden):
        return FederatedGNN(subgraphs, model_name=model_name, hidden=hidden,
                            config=config)
    return build


BASELINE_REGISTRY: Dict[str, Callable] = {
    # Federated implementations of centralised GNNs.
    "fedmlp": _fed_gnn("mlp"),
    "fedgcn": _fed_gnn("gcn"),
    "fedsgc": _fed_gnn("sgc"),
    "fedgcnii": _fed_gnn("gcnii"),
    "fedgamlp": _fed_gnn("gamlp"),
    "fedgprgnn": _fed_gnn("gprgnn"),
    "fedggcn": _fed_gnn("ggcn"),
    "fedglognn": _fed_gnn("glognn"),
    # FGL-specific baselines.
    "fedgl": lambda subgraphs, config, hidden: FedGL(
        subgraphs, hidden=hidden, config=config),
    "gcfl+": lambda subgraphs, config, hidden: GCFLPlus(
        subgraphs, hidden=hidden, config=config),
    "fedsage+": lambda subgraphs, config, hidden: FedSagePlus(
        subgraphs, hidden=hidden, config=config),
    "fed-pub": lambda subgraphs, config, hidden: FedPub(
        subgraphs, hidden=hidden, config=config),
}


def list_baselines() -> List[str]:
    """Names of every registered federated baseline."""
    return sorted(BASELINE_REGISTRY)


def build_baseline(name: str, subgraphs: Sequence[Graph],
                   config: Optional[FederatedConfig] = None,
                   hidden: int = 64) -> FederatedTrainer:
    """Instantiate a federated baseline by name."""
    key = name.lower()
    if key not in BASELINE_REGISTRY:
        raise KeyError(
            f"unknown baseline '{name}'; available: {', '.join(list_baselines())}")
    return BASELINE_REGISTRY[key](list(subgraphs), config or FederatedConfig(),
                                  hidden)

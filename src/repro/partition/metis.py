"""Metis-style balanced k-way partitioning.

A faithful multilevel implementation is unnecessary at our scale; instead we
use the same recipe Metis follows — grow balanced, locality-preserving parts —
via seeded BFS region growing followed by boundary refinement that trades
nodes between parts to reduce the edge cut while keeping sizes balanced.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np
import scipy.sparse as sp


def _bfs_distances(adjacency: sp.csr_matrix, source: int) -> np.ndarray:
    """Unweighted BFS distances from ``source`` (unreachable = large)."""
    n = adjacency.shape[0]
    distance = np.full(n, n + 1, dtype=np.int64)
    distance[source] = 0
    queue = deque([source])
    indptr, indices = adjacency.indptr, adjacency.indices
    while queue:
        node = queue.popleft()
        for pos in range(indptr[node], indptr[node + 1]):
            neighbour = indices[pos]
            if distance[neighbour] > distance[node] + 1:
                distance[neighbour] = distance[node] + 1
                queue.append(neighbour)
    return distance


def _farthest_point_seeds(adjacency: sp.csr_matrix, num_parts: int,
                          rng: np.random.Generator) -> np.ndarray:
    """k-center style seeding: each new seed maximises distance to the others."""
    n = adjacency.shape[0]
    seeds = [int(rng.integers(0, n))]
    min_distance = _bfs_distances(adjacency, seeds[0])
    while len(seeds) < num_parts:
        candidate = int(min_distance.argmax())
        if candidate in seeds:
            remaining = np.setdiff1d(np.arange(n), np.asarray(seeds))
            candidate = int(rng.choice(remaining))
        seeds.append(candidate)
        min_distance = np.minimum(min_distance,
                                  _bfs_distances(adjacency, candidate))
    return np.asarray(seeds, dtype=np.int64)


def _bfs_grow(adjacency: sp.csr_matrix, num_parts: int,
              rng: np.random.Generator) -> np.ndarray:
    """Grow ``num_parts`` regions from spread-out seeds with balanced capacities."""
    n = adjacency.shape[0]
    capacity = int(np.ceil(n / num_parts))
    part = np.full(n, -1, dtype=np.int64)
    sizes = np.zeros(num_parts, dtype=np.int64)
    indptr, indices = adjacency.indptr, adjacency.indices

    seeds = _farthest_point_seeds(adjacency, num_parts, rng)
    queues: List[deque] = []
    for p, seed in enumerate(seeds):
        part[seed] = p
        sizes[p] += 1
        queues.append(deque([seed]))

    active = True
    while active:
        active = False
        for p in range(num_parts):
            if sizes[p] >= capacity or not queues[p]:
                continue
            node = queues[p].popleft()
            for pos in range(indptr[node], indptr[node + 1]):
                neighbour = indices[pos]
                if part[neighbour] == -1 and sizes[p] < capacity:
                    part[neighbour] = p
                    sizes[p] += 1
                    queues[p].append(neighbour)
            active = True

    # Any nodes not reached (disconnected pieces) go to the smallest parts.
    unassigned = np.nonzero(part == -1)[0]
    for node in unassigned:
        p = int(sizes.argmin())
        part[node] = p
        sizes[p] += 1
    return part


def _refine(adjacency: sp.csr_matrix, part: np.ndarray, num_parts: int,
            rng: np.random.Generator, passes: int = 3,
            imbalance: float = 1.1) -> np.ndarray:
    """Greedy boundary refinement reducing edge cut under a balance constraint."""
    n = adjacency.shape[0]
    capacity = imbalance * n / num_parts
    floor = n / (num_parts * imbalance)
    sizes = np.bincount(part, minlength=num_parts).astype(float)
    indptr, indices = adjacency.indptr, adjacency.indices

    for _ in range(passes):
        moved = 0
        order = rng.permutation(n)
        for node in order:
            current = part[node]
            if sizes[current] - 1 < floor:
                continue
            counts = np.zeros(num_parts)
            for pos in range(indptr[node], indptr[node + 1]):
                counts[part[indices[pos]]] += 1
            best = int(counts.argmax())
            if best != current and counts[best] > counts[current] \
                    and sizes[best] + 1 <= capacity:
                part[node] = best
                sizes[current] -= 1
                sizes[best] += 1
                moved += 1
        if moved == 0:
            break
    return part


def metis_partition(adjacency: sp.spmatrix, num_parts: int,
                    seed: int = 0) -> np.ndarray:
    """Partition a graph into ``num_parts`` balanced, connected-ish parts.

    Returns an array of part ids in ``[0, num_parts)`` per node.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    n = adjacency.shape[0]
    if num_parts == 1:
        return np.zeros(n, dtype=np.int64)
    if num_parts > n:
        raise ValueError("cannot create more parts than nodes")
    rng = np.random.default_rng(seed)
    part = _bfs_grow(adjacency, num_parts, rng)
    part = _refine(adjacency, part, num_parts, rng)
    return part


def edge_cut(adjacency: sp.spmatrix, part: np.ndarray) -> int:
    """Number of edges crossing between parts (quality metric for tests)."""
    coo = sp.coo_matrix(adjacency)
    mask = coo.row < coo.col
    return int(np.sum(part[coo.row[mask]] != part[coo.col[mask]]))

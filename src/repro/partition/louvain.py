"""Louvain community detection (Blondel et al., 2008), from scratch.

Used by the community split: the global homophilous graph is clustered into
communities which are then assigned to clients by the node-average principle.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import scipy.sparse as sp


def _modularity_gain(node_degree: float, community_degree: float,
                     links_to_community: float, total_weight: float) -> float:
    """Gain in modularity from moving a node into a community."""
    return (links_to_community
            - community_degree * node_degree / (2.0 * total_weight))


def _one_level(adjacency: sp.csr_matrix, rng: np.random.Generator,
               max_passes: int = 10) -> np.ndarray:
    """Run one level of local-move optimisation; returns community labels."""
    n = adjacency.shape[0]
    community = np.arange(n)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    total_weight = degrees.sum() / 2.0
    if total_weight == 0:
        return community
    community_degree = degrees.copy()

    indptr, indices, data = adjacency.indptr, adjacency.indices, adjacency.data
    improved_any = True
    passes = 0
    while improved_any and passes < max_passes:
        improved_any = False
        passes += 1
        order = rng.permutation(n)
        for node in order:
            current = community[node]
            node_deg = degrees[node]
            # Weights to neighbouring communities.
            neighbour_weights: Dict[int, float] = {}
            for pos in range(indptr[node], indptr[node + 1]):
                neighbour = indices[pos]
                if neighbour == node:
                    continue
                neighbour_weights.setdefault(community[neighbour], 0.0)
                neighbour_weights[community[neighbour]] += data[pos]

            # Remove node from its community.
            community_degree[current] -= node_deg
            weight_to_current = neighbour_weights.get(current, 0.0)
            best_community = current
            best_gain = _modularity_gain(
                node_deg, community_degree[current], weight_to_current,
                total_weight)
            for candidate, weight in neighbour_weights.items():
                if candidate == current:
                    continue
                gain = _modularity_gain(
                    node_deg, community_degree[candidate], weight, total_weight)
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = candidate
            community_degree[best_community] += node_deg
            if best_community != current:
                community[node] = best_community
                improved_any = True
    return community


def _aggregate(adjacency: sp.csr_matrix, community: np.ndarray) -> sp.csr_matrix:
    """Collapse communities into super-nodes, summing edge weights."""
    unique, relabel = np.unique(community, return_inverse=True)
    k = unique.size
    coo = adjacency.tocoo()
    aggregated = sp.coo_matrix(
        (coo.data, (relabel[coo.row], relabel[coo.col])), shape=(k, k))
    return aggregated.tocsr()


def louvain_communities(adjacency: sp.spmatrix, seed: int = 0,
                        max_levels: int = 10) -> np.ndarray:
    """Return a community id per node via Louvain modularity optimisation."""
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    adjacency.setdiag(0)
    adjacency.eliminate_zeros()
    rng = np.random.default_rng(seed)

    n = adjacency.shape[0]
    node_to_community = np.arange(n)
    current = adjacency
    mapping = np.arange(n)

    for _ in range(max_levels):
        community = _one_level(current, rng)
        unique, relabel = np.unique(community, return_inverse=True)
        node_to_community = relabel[mapping]
        if unique.size == current.shape[0]:
            break  # No merges happened; converged.
        current = _aggregate(current, community)
        mapping = node_to_community
    # Relabel to 0..k-1.
    _, final = np.unique(node_to_community, return_inverse=True)
    return final


def modularity(adjacency: sp.spmatrix, community: np.ndarray) -> float:
    """Newman modularity of a partition (used in tests)."""
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    total = degrees.sum() / 2.0
    if total == 0:
        return 0.0
    coo = adjacency.tocoo()
    same = community[coo.row] == community[coo.col]
    intra = coo.data[same].sum() / (2.0 * total)
    expected = 0.0
    for c in np.unique(community):
        deg_c = degrees[community == c].sum()
        expected += (deg_c / (2.0 * total)) ** 2
    return float(intra - expected)

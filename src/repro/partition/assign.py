"""Community → client assignment by the node-average principle.

The paper's community split runs Louvain, then distributes whole communities
to clients so that each client ends up with roughly the same number of nodes.
"""

from __future__ import annotations

from typing import List

import numpy as np


def assign_communities_to_clients(community: np.ndarray, num_clients: int,
                                  seed: int = 0) -> List[np.ndarray]:
    """Distribute communities to clients balancing total node counts.

    Communities are considered from largest to smallest and each is assigned
    to the currently least-loaded client (longest-processing-time heuristic),
    which is how the FGL packages implement the "node average assignment"
    principle.

    Returns a list of node-index arrays, one per client.
    """
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    community = np.asarray(community)
    rng = np.random.default_rng(seed)

    unique, counts = np.unique(community, return_counts=True)
    order = np.argsort(-counts, kind="stable")
    # Break ties randomly but deterministically.
    order = order[np.argsort(rng.random(order.size) * 1e-9 - counts[order],
                             kind="stable")]

    loads = np.zeros(num_clients, dtype=np.int64)
    client_nodes: List[list] = [[] for _ in range(num_clients)]
    for community_id in unique[order]:
        members = np.nonzero(community == community_id)[0]
        target = int(loads.argmin())
        client_nodes[target].extend(members.tolist())
        loads[target] += members.size

    return [np.sort(np.asarray(nodes, dtype=np.int64)) for nodes in client_nodes]

"""Graph partitioning algorithms used by the data-simulation strategies."""

from repro.partition.louvain import louvain_communities
from repro.partition.metis import metis_partition
from repro.partition.assign import assign_communities_to_clients

__all__ = [
    "louvain_communities",
    "metis_partition",
    "assign_communities_to_clients",
]

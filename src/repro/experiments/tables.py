"""Plain-text table/series formatting for the benchmark harness output."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "", float_format: str = "{:.3f}") -> str:
    """Render a list of rows as an aligned plain-text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def _line(cells):
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(_line(headers))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(_line(row))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence,
                  float_format: str = "{:.3f}") -> str:
    """Render an (x, y) series as a compact one-line-per-point listing."""
    lines = [f"series: {name}"]
    for x, y in zip(xs, ys):
        y_str = float_format.format(y) if isinstance(y, float) else str(y)
        lines.append(f"  {x}: {y_str}")
    return "\n".join(lines)


def best_method(results: Dict[str, Dict]) -> str:
    """Name of the method with the highest test accuracy in a results dict."""
    return max(results, key=lambda m: results[m]["accuracy"])

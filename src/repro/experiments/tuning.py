"""Deterministic grid search replacing the paper's Optuna tuning."""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Tuple


def grid_search(objective: Callable[..., float],
                grid: Dict[str, Iterable]) -> Tuple[Dict, float, List[Tuple[Dict, float]]]:
    """Exhaustively evaluate ``objective(**params)`` over a parameter grid.

    Returns ``(best_params, best_score, all_results)`` where ``all_results``
    preserves evaluation order for reproducibility.
    """
    keys = sorted(grid)
    best_params: Dict = {}
    best_score = float("-inf")
    all_results: List[Tuple[Dict, float]] = []
    for values in itertools.product(*(list(grid[key]) for key in keys)):
        params = dict(zip(keys, values))
        score = float(objective(**params))
        all_results.append((params, score))
        if score > best_score:
            best_score = score
            best_params = params
    return best_params, best_score, all_results

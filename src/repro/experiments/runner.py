"""Unified experiment runner over every federated method (baselines + AdaFGL).

The evaluation scale is controlled by :class:`ExperimentSettings`; the
defaults read the environment variables ``REPRO_ROUNDS`` / ``REPRO_EPOCHS`` /
``REPRO_CLIENTS`` so that the benchmark harness can be made faster or slower
without touching code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core import AdaFGL, AdaFGLConfig
from repro.datasets import load_dataset
from repro.federated import FederatedConfig
from repro.fgl import build_baseline, list_baselines
from repro.graph import Graph
from repro.metrics import TrainingHistory
from repro.simulation import community_split, structure_noniid_split


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@dataclass
class ExperimentSettings:
    """Scale knobs shared by every experiment.

    ``backend`` / ``aggregation`` / ``num_workers`` select the federation
    engine plug-ins (see :mod:`repro.federated.engine`) for Step-1 training
    and every FGL baseline; they are forwarded into both
    :meth:`federated_config` and :meth:`adafgl_config`.
    """

    num_clients: int = field(default_factory=lambda: _env_int("REPRO_CLIENTS", 5))
    rounds: int = field(default_factory=lambda: _env_int("REPRO_ROUNDS", 20))
    local_epochs: int = field(default_factory=lambda: _env_int("REPRO_EPOCHS", 3))
    personalized_epochs: int = field(
        default_factory=lambda: _env_int("REPRO_PERSONALIZED_EPOCHS", 60))
    hidden: int = 32
    lr: float = 0.01
    participation: float = 1.0
    seed: int = 0
    #: execution backend name; None = auto (serial, or a process pool for
    #: Step-1 when ``num_workers > 1``).  An explicit "serial" pins serial.
    backend: Optional[str] = None
    aggregation: str = "fedavg"
    num_workers: int = field(
        default_factory=lambda: _env_int("REPRO_WORKERS", 0))
    #: how a persistent process-pool worker trains its resident shard:
    #: "auto"/"batched" fuse it through the batched engine, "serial" pins
    #: the per-client loop.
    intra_worker: str = "auto"
    #: process-pool round discipline: "sync" (pipelined, exact) or "async"
    #: (bounded staleness: seal after ``async_buffer`` shard reports, drop
    #: reports older than ``staleness_cap`` server rounds).
    round_mode: str = "sync"
    #: workers act as edge aggregators: one pre-aggregated fixed-point
    #: partial per shard per round (sync process-pool rounds only).
    hierarchical: bool = False
    async_buffer: int = 1
    staleness_cap: int = 3
    #: persistent-pool upload transport: "bitdelta" (lossless), "topk"
    #: (lossy, ``delta_top_k`` entries per parameter, error feedback) or
    #: "qtopk" (top-k entries quantised to ``delta_bits`` bits per value).
    delta_codec: str = "bitdelta"
    delta_top_k: int = 32
    delta_bits: int = 8
    #: coordinator↔worker channel ("pipe" or "tcp" framed sockets with
    #: CRC/heartbeats/reconnect); overridable via ``REPRO_TRANSPORT``.
    transport: str = field(
        default_factory=lambda: os.environ.get("REPRO_TRANSPORT", "pipe"))
    #: array backend for every client's local math ("numpy" — the bitwise
    #: reference — or "jit"); None inherits the process default
    #: (``REPRO_ARRAY_BACKEND``, else numpy).
    array_backend: Optional[str] = field(
        default_factory=lambda: os.environ.get("REPRO_ARRAY_BACKEND"))
    #: fault tolerance (see FederatedConfig): worker-crash policy, round
    #: deadline in seconds, checkpoint cadence/location and resume source.
    on_worker_failure: str = "fail"
    round_timeout: Optional[float] = None
    checkpoint_every: int = 0
    checkpoint_dir: str = "checkpoints"
    resume_from: Optional[str] = None

    def federated_config(self) -> FederatedConfig:
        backend = self.backend
        if backend is None:
            backend = "process_pool" if self.num_workers > 1 else "serial"
        return FederatedConfig(rounds=self.rounds,
                               local_epochs=self.local_epochs, lr=self.lr,
                               participation=self.participation,
                               seed=self.seed, backend=backend,
                               aggregation=self.aggregation,
                               num_workers=self.num_workers,
                               intra_worker=self.intra_worker,
                               hierarchical=self.hierarchical,
                               round_mode=self.round_mode,
                               async_buffer=self.async_buffer,
                               staleness_cap=self.staleness_cap,
                               delta_codec=self.delta_codec,
                               delta_top_k=self.delta_top_k,
                               delta_bits=self.delta_bits,
                               transport=self.transport,
                               on_worker_failure=self.on_worker_failure,
                               round_timeout=self.round_timeout,
                               checkpoint_every=self.checkpoint_every,
                               checkpoint_dir=self.checkpoint_dir,
                               resume_from=self.resume_from,
                               array_backend=self.array_backend)

    def adafgl_config(self, **overrides) -> AdaFGLConfig:
        # ``sparse_propagation=True`` is the experiment-runner default since
        # the dense-vs-sparse parity gate landed (``top_k=None`` sparse is
        # numerically identical to dense; the default top-k is an accuracy-
        # preserving approximation tracked by benchmarks/bench_perf.py).
        config = AdaFGLConfig(rounds=self.rounds,
                              local_epochs=self.local_epochs, lr=self.lr,
                              hidden=self.hidden,
                              personalized_epochs=self.personalized_epochs,
                              participation=self.participation,
                              seed=self.seed,
                              sparse_propagation=True,
                              # None (the unset default) keeps the engine's
                              # auto-promotion to a process pool when
                              # num_workers > 1; an explicit name (including
                              # "serial") is forwarded verbatim.
                              step1_backend=self.backend,
                              step1_aggregation=self.aggregation,
                              num_workers=self.num_workers,
                              intra_worker=self.intra_worker,
                              hierarchical=self.hierarchical,
                              round_mode=self.round_mode,
                              async_buffer=self.async_buffer,
                              staleness_cap=self.staleness_cap,
                              delta_codec=self.delta_codec,
                              delta_top_k=self.delta_top_k,
                              delta_bits=self.delta_bits,
                              transport=self.transport,
                              on_worker_failure=self.on_worker_failure,
                              round_timeout=self.round_timeout,
                              checkpoint_every=self.checkpoint_every,
                              checkpoint_dir=self.checkpoint_dir,
                              resume_from=self.resume_from,
                              array_backend=self.array_backend)
        for key, value in overrides.items():
            setattr(config, key, value)
        return config


def prepare_clients(dataset: str, split: str, settings: ExperimentSettings,
                    injection: str = "random",
                    graph: Optional[Graph] = None) -> List[Graph]:
    """Load a dataset and apply the requested data-simulation strategy."""
    if graph is None:
        graph = load_dataset(dataset, seed=settings.seed)
    if split == "community":
        return community_split(graph, settings.num_clients, seed=settings.seed)
    if split in ("structure", "structure-noniid", "noniid"):
        return structure_noniid_split(graph, settings.num_clients,
                                      seed=settings.seed, injection=injection)
    raise ValueError(f"unknown split strategy '{split}'")


def run_method(method: str, clients: Sequence[Graph],
               settings: Optional[ExperimentSettings] = None,
               adafgl_overrides: Optional[Dict] = None) -> Dict:
    """Train one federated method and return its summary dictionary.

    Returns keys: ``method``, ``accuracy`` (weighted test accuracy),
    ``train_accuracy``, ``history`` (:class:`TrainingHistory`),
    ``communication`` (float volume summary) and ``trainer``.
    """
    settings = settings or ExperimentSettings()
    name = method.lower()
    if name == "adafgl":
        config = settings.adafgl_config(**(adafgl_overrides or {}))
        trainer = AdaFGL(list(clients), config)
        history = trainer.run()
    else:
        trainer = build_baseline(name, clients,
                                 config=settings.federated_config(),
                                 hidden=settings.hidden)
        history = trainer.run()
    return {
        "method": method,
        "accuracy": trainer.evaluate("test"),
        "train_accuracy": trainer.evaluate("train"),
        "history": history,
        "communication": trainer.tracker.summary(),
        "trainer": trainer,
    }


def compare_methods(methods: Sequence[str], clients: Sequence[Graph],
                    settings: Optional[ExperimentSettings] = None) -> Dict[str, Dict]:
    """Run several methods on the same client split and collect summaries."""
    settings = settings or ExperimentSettings()
    results = {}
    for method in methods:
        results[method] = run_method(method, clients, settings)
    return results


def available_methods() -> List[str]:
    """Every runnable method name (baselines plus AdaFGL)."""
    return list_baselines() + ["adafgl"]

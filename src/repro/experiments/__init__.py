"""Experiment harness that regenerates the paper's tables and figures."""

from repro.experiments.runner import (
    ExperimentSettings,
    run_method,
    compare_methods,
    prepare_clients,
)
from repro.experiments.tables import format_table, format_series
from repro.experiments.tuning import grid_search

__all__ = [
    "ExperimentSettings",
    "run_method",
    "compare_methods",
    "prepare_clients",
    "format_table",
    "format_series",
    "grid_search",
]

"""Contextual stochastic block model (cSBM) graph generator.

The generator controls exactly the quantities the paper studies: the number of
classes, the feature dimension and signal strength, and the *edge homophily*
(fraction of edges whose endpoints share a label).  Community structure is
obtained by splitting every class into several latent blocks so that Louvain
and Metis find meaningful clusters, mirroring the citation-network structure
exploited by the paper's community split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.graph import Graph
from repro.graph.utils import adjacency_from_edges


@dataclass
class CSBMConfig:
    """Parameters of a contextual stochastic block model.

    Attributes
    ----------
    num_nodes / num_classes / num_features:
        Graph dimensions.
    avg_degree:
        Target mean node degree.
    edge_homophily:
        Desired fraction of intra-class edges (Table I, "E.Homo").
    feature_signal:
        Scale of the class-dependent mean in the node features; larger values
        make the classification problem easier from features alone.
    blocks_per_class:
        Number of latent communities each class is subdivided into; higher
        values give Louvain/Metis more clusters to find.
    seed:
        RNG seed for reproducibility.
    """

    num_nodes: int = 1000
    num_classes: int = 5
    num_features: int = 32
    avg_degree: float = 8.0
    edge_homophily: float = 0.8
    feature_signal: float = 1.0
    blocks_per_class: int = 2
    seed: int = 0
    name: str = "csbm"


def _sample_class_sizes(num_nodes: int, num_classes: int,
                        rng: np.random.Generator) -> np.ndarray:
    """Roughly balanced class sizes with mild random variation."""
    weights = rng.uniform(0.8, 1.2, size=num_classes)
    weights /= weights.sum()
    sizes = np.floor(weights * num_nodes).astype(int)
    sizes[: num_nodes - sizes.sum()] += 1
    return sizes


def _label_aware_spanning_tree(labels: np.ndarray, homophily: float,
                               rng: np.random.Generator) -> list:
    """Spanning-tree edges whose intra-class rate matches ``homophily``.

    Keeping the graph connected must not dilute the edge-homophily target, so
    every tree edge picks a same-label partner with probability ``homophily``
    (falling back to whatever is available early in the ordering).
    """
    n = labels.shape[0]
    order = rng.permutation(n)
    seen_by_class: dict[int, list] = {}
    seen_all: list = []
    edges = []
    for position, node in enumerate(order):
        if position > 0:
            same = seen_by_class.get(int(labels[node]), [])
            other = seen_all
            want_same = rng.random() < homophily
            pool = same if (want_same and same) else other
            if not want_same and len(other) > len(same):
                # Prefer a different-label partner when one exists.
                for _ in range(4):
                    candidate = other[rng.integers(0, len(other))]
                    if labels[candidate] != labels[node]:
                        pool = [candidate]
                        break
            partner = pool[rng.integers(0, len(pool))]
            edges.append((int(node), int(partner)))
        seen_by_class.setdefault(int(labels[node]), []).append(int(node))
        seen_all.append(int(node))
    return edges


def generate_csbm(config: CSBMConfig) -> Graph:
    """Generate a :class:`Graph` from a :class:`CSBMConfig`.

    The sampling procedure:

    1. assign labels (roughly balanced classes), and split each class into
       ``blocks_per_class`` latent communities;
    2. draw node features from a Gaussian whose mean is a class-specific
       direction scaled by ``feature_signal``;
    3. sample ``avg_degree * n / 2`` edges; each edge is intra-class with
       probability ``edge_homophily`` and inter-class otherwise, with endpoints
       preferentially drawn from the same latent block so the graph has
       community structure;
    4. add a random spanning tree so the graph is connected.
    """
    rng = np.random.default_rng(config.seed)
    n = config.num_nodes
    num_classes = config.num_classes

    # --- labels and latent blocks -------------------------------------
    class_sizes = _sample_class_sizes(n, num_classes, rng)
    labels = np.repeat(np.arange(num_classes), class_sizes)
    rng.shuffle(labels)

    blocks = np.zeros(n, dtype=np.int64)
    block_id = 0
    block_members: list[np.ndarray] = []
    for c in range(num_classes):
        members = np.nonzero(labels == c)[0]
        rng.shuffle(members)
        chunks = np.array_split(members, max(1, config.blocks_per_class))
        for chunk in chunks:
            blocks[chunk] = block_id
            block_members.append(chunk)
            block_id += 1
    num_blocks = block_id

    # --- features -------------------------------------------------------
    class_means = rng.normal(size=(num_classes, config.num_features))
    class_means /= np.linalg.norm(class_means, axis=1, keepdims=True) + 1e-12
    features = (config.feature_signal * class_means[labels]
                + rng.normal(scale=1.0, size=(n, config.num_features)))

    # --- edges ----------------------------------------------------------
    target_edges = int(config.avg_degree * n / 2)
    nodes_by_class = [np.nonzero(labels == c)[0] for c in range(num_classes)]
    block_of = [block_members[b] for b in range(num_blocks)]

    sources = rng.integers(0, n, size=target_edges * 2)
    edge_set: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []
    intra_probability = config.edge_homophily
    same_block_probability = 0.8

    for u in sources:
        if len(edges) >= target_edges:
            break
        label_u = labels[u]
        if rng.random() < intra_probability:
            # Same-class partner, preferentially from the same latent block.
            if rng.random() < same_block_probability:
                pool = block_of[blocks[u]]
            else:
                pool = nodes_by_class[label_u]
        else:
            other = rng.integers(0, num_classes - 1)
            if other >= label_u:
                other += 1
            pool = nodes_by_class[other]
        if pool.size <= 1:
            continue
        v = int(pool[rng.integers(0, pool.size)])
        if v == u:
            continue
        key = (min(u, v), max(u, v))
        if key in edge_set:
            continue
        edge_set.add(key)
        edges.append(key)

    tree_edges = _label_aware_spanning_tree(labels, config.edge_homophily, rng)
    all_edges = np.asarray(edges + tree_edges, dtype=np.int64)
    adjacency = adjacency_from_edges(all_edges, n)

    return Graph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        name=config.name,
        metadata={"blocks": blocks, "config": config},
    )

"""Train/validation/test split utilities (transductive and inductive)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph import Graph


def make_split_masks(graph: Graph, train_ratio: float, val_ratio: float,
                     test_ratio: Optional[float] = None,
                     stratified: bool = True, seed: int = 0) -> Graph:
    """Assign train/val/test masks in place and return the graph.

    Ratios follow Table I of the paper (e.g. 20%/40%/40% for citation
    networks, 60%/20%/20% for heterophilous datasets).  Splits are stratified
    by class by default so every class is represented in the training set.
    """
    if test_ratio is None:
        test_ratio = 1.0 - train_ratio - val_ratio
    if min(train_ratio, val_ratio, test_ratio) < 0:
        raise ValueError("split ratios must be non-negative")
    if train_ratio + val_ratio + test_ratio > 1.0 + 1e-9:
        raise ValueError("split ratios must sum to at most 1")

    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    train_mask = np.zeros(n, dtype=bool)
    val_mask = np.zeros(n, dtype=bool)
    test_mask = np.zeros(n, dtype=bool)

    if stratified:
        groups = [np.nonzero(graph.labels == c)[0]
                  for c in range(graph.num_classes)]
    else:
        groups = [np.arange(n)]

    for members in groups:
        members = members.copy()
        rng.shuffle(members)
        n_train = max(1, int(round(train_ratio * members.size))) if members.size else 0
        n_val = int(round(val_ratio * members.size))
        train_mask[members[:n_train]] = True
        val_mask[members[n_train:n_train + n_val]] = True
        test_mask[members[n_train + n_val:]] = True

    graph.train_mask = train_mask
    graph.val_mask = val_mask
    graph.test_mask = test_mask
    return graph


def inductive_partition(graph: Graph, seed: int = 0) -> Tuple[Graph, Graph]:
    """Split a graph into an observed training graph and the full graph.

    Inductive evaluation in the paper trains on the subgraph induced by the
    train+val nodes and predicts test nodes that were never seen during
    training.  We return ``(observed_graph, full_graph)`` where the observed
    graph contains only train/val nodes and their induced edges.
    """
    observed_nodes = np.nonzero(graph.train_mask | graph.val_mask)[0]
    observed = graph.node_subgraph(observed_nodes, name=f"{graph.name}-observed")
    return observed, graph

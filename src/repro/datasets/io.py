"""Saving and loading generated graphs (``.npz``) for reproducible runs.

Generated stand-in datasets are cheap to re-create, but persisting them lets
an experiment be re-run bit-for-bit later (or shared between machines) without
depending on generator code staying unchanged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.graph import Graph

PathLike = Union[str, Path]


def save_graph(graph: Graph, path: PathLike) -> Path:
    """Serialise a :class:`Graph` to a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    adjacency = sp.coo_matrix(graph.adjacency)
    np.savez_compressed(
        path,
        adj_row=adjacency.row,
        adj_col=adjacency.col,
        adj_data=adjacency.data,
        num_nodes=np.array([graph.num_nodes]),
        features=graph.features,
        labels=graph.labels,
        train_mask=graph.train_mask,
        val_mask=graph.val_mask,
        test_mask=graph.test_mask,
        name=np.array([graph.name]),
        num_classes=np.array([graph.num_classes]),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_graph(path: PathLike) -> Graph:
    """Load a :class:`Graph` previously written by :func:`save_graph`."""
    with np.load(Path(path), allow_pickle=False) as payload:
        n = int(payload["num_nodes"][0])
        adjacency = sp.coo_matrix(
            (payload["adj_data"], (payload["adj_row"], payload["adj_col"])),
            shape=(n, n)).tocsr()
        graph = Graph(
            adjacency=adjacency,
            features=payload["features"],
            labels=payload["labels"],
            train_mask=payload["train_mask"],
            val_mask=payload["val_mask"],
            test_mask=payload["test_mask"],
            name=str(payload["name"][0]),
        )
        graph.metadata["num_classes"] = int(payload["num_classes"][0])
    return graph

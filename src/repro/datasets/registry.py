"""Registry of the 12 benchmark datasets from Table I of the paper.

Each entry records the statistics that matter to the paper's analysis —
class count, feature dimension, split ratios, edge homophily, transductive vs
inductive — plus a scaled-down node/edge budget used by the synthetic cSBM
generator.  ``load_dataset`` produces a ready-to-use :class:`Graph` with split
masks applied.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List

from repro.datasets.csbm import CSBMConfig, generate_csbm
from repro.datasets.splits import make_split_masks
from repro.graph import Graph, edge_homophily


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one named benchmark dataset."""

    name: str
    num_nodes: int
    num_features: int
    num_classes: int
    avg_degree: float
    edge_homophily: float
    train_ratio: float
    val_ratio: float
    test_ratio: float
    task: str  # "transductive" or "inductive"
    description: str
    feature_signal: float = 1.5
    paper_nodes: int = 0
    paper_edges: int = 0
    #: default AdaFGL ``propagation_top_k`` (Eq. 5 sparsification), read off
    #: the ``benchmarks/results/BENCH_topk.json`` accuracy-vs-k curve: on
    #: homophilous graphs even k=4 matches the dense reference, so k=8 gives
    #: comfortable margin; the lower the homophily, the more of the P̂P̂ᵀ
    #: similarity mass the heterophilous propagation needs, hence k=16/32.
    #: ``load_dataset`` stamps this into ``graph.metadata`` where
    #: :func:`repro.core.resolve_propagation_top_k` picks it up unless the
    #: config names an explicit value.  Regenerate the curve with
    #: ``python benchmarks/bench_perf.py --suite topk``.
    propagation_top_k: int = 32


def _spec(name, nodes, feats, classes, degree, homophily, splits, task,
          description, signal=1.5, paper_nodes=0, paper_edges=0,
          top_k=None) -> DatasetSpec:
    if top_k is None:
        # BENCH_topk-informed banding by target edge homophily.
        top_k = 8 if homophily >= 0.7 else (16 if homophily >= 0.4 else 32)
    return DatasetSpec(
        name=name, num_nodes=nodes, num_features=feats, num_classes=classes,
        avg_degree=degree, edge_homophily=homophily,
        train_ratio=splits[0], val_ratio=splits[1], test_ratio=splits[2],
        task=task, description=description, feature_signal=signal,
        paper_nodes=paper_nodes, paper_edges=paper_edges,
        propagation_top_k=top_k)


#: Table I of the paper, scaled down for CPU-only training.  The original node
#: and edge counts are kept in ``paper_nodes`` / ``paper_edges`` for reporting.
DATASET_REGISTRY: Dict[str, DatasetSpec] = {
    "cora": _spec("cora", 900, 64, 7, 4.0, 0.810, (0.2, 0.4, 0.4),
                  "transductive", "citation network", 0.9, 2708, 5429),
    "citeseer": _spec("citeseer", 950, 96, 6, 3.0, 0.736, (0.2, 0.4, 0.4),
                      "transductive", "citation network", 0.8, 3327, 4732),
    "pubmed": _spec("pubmed", 1400, 48, 3, 4.5, 0.802, (0.2, 0.4, 0.4),
                    "transductive", "citation network", 1.0, 19717, 44338),
    "computer": _spec("computer", 1200, 64, 10, 18.0, 0.777, (0.2, 0.4, 0.4),
                      "transductive", "co-purchase network", 0.9, 13381, 245778),
    "physics": _spec("physics", 1500, 96, 5, 14.0, 0.931, (0.2, 0.4, 0.4),
                     "transductive", "co-authorship network", 1.2, 34493, 247962),
    "chameleon": _spec("chameleon", 900, 64, 5, 16.0, 0.234, (0.6, 0.2, 0.2),
                       "transductive", "wiki pages network", 1.2, 2277, 36101),
    "squirrel": _spec("squirrel", 1100, 64, 5, 20.0, 0.223, (0.6, 0.2, 0.2),
                      "transductive", "wiki pages network", 1.0, 5201, 216933),
    "actor": _spec("actor", 1200, 48, 5, 8.0, 0.216, (0.6, 0.2, 0.2),
                   "transductive", "movie network", 0.9, 7600, 29926),
    "penn94": _spec("penn94", 1400, 8, 2, 30.0, 0.470, (0.6, 0.2, 0.2),
                    "transductive", "dating network", 0.7, 41554, 1362229),
    "arxiv-year": _spec("arxiv-year", 1600, 32, 5, 13.0, 0.222, (0.6, 0.2, 0.2),
                        "transductive", "publish network", 1.0, 169343, 1166243),
    "reddit": _spec("reddit", 1500, 48, 7, 20.0, 0.756, (0.5, 0.25, 0.25),
                    "inductive", "social network", 1.1, 89250, 899756),
    "flickr": _spec("flickr", 1600, 48, 9, 10.0, 0.319, (0.66, 0.1, 0.24),
                    "inductive", "image network", 1.0, 232965, 11606919),
}


def list_datasets(task: str = None) -> List[str]:
    """Return the registered dataset names, optionally filtered by task."""
    names = sorted(DATASET_REGISTRY)
    if task is None:
        return names
    return [n for n in names if DATASET_REGISTRY[n].task == task]


def _scale() -> float:
    """Global node-count scaling factor, controlled by ``REPRO_SCALE``."""
    try:
        return float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0


def load_dataset(name: str, seed: int = 0, num_nodes: int = None) -> Graph:
    """Generate the named benchmark graph with split masks applied.

    Parameters
    ----------
    name:
        One of :func:`list_datasets`.
    seed:
        RNG seed controlling graph sampling and split assignment.
    num_nodes:
        Optional override of the scaled node count (useful in tests).
    """
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise KeyError(
            f"unknown dataset '{name}'; available: {', '.join(list_datasets())}")
    spec = DATASET_REGISTRY[key]
    nodes = num_nodes if num_nodes is not None else max(
        120, int(spec.num_nodes * _scale()))
    config = CSBMConfig(
        num_nodes=nodes,
        num_classes=spec.num_classes,
        num_features=spec.num_features,
        avg_degree=spec.avg_degree,
        edge_homophily=spec.edge_homophily,
        feature_signal=spec.feature_signal,
        blocks_per_class=max(2, 12 // spec.num_classes),
        seed=seed,
        name=spec.name,
    )
    graph = generate_csbm(config)
    graph = make_split_masks(graph, spec.train_ratio, spec.val_ratio,
                             spec.test_ratio, seed=seed)
    graph.metadata["spec"] = spec
    graph.metadata["task"] = spec.task
    graph.metadata["num_classes"] = spec.num_classes
    # Per-dataset sparsity default; survives node_subgraph / client splits
    # (metadata is inherited), so AdaFGL's ``propagation_top_k="auto"``
    # resolves to it on every client subgraph of this dataset.
    graph.metadata["propagation_top_k"] = spec.propagation_top_k
    return graph


def dataset_statistics(name: str, seed: int = 0) -> Dict[str, float]:
    """Return Table-I style statistics for a generated dataset."""
    graph = load_dataset(name, seed=seed)
    spec = DATASET_REGISTRY[name.lower()]
    return {
        "name": spec.name,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "features": graph.num_features,
        "classes": graph.num_classes,
        "edge_homophily": edge_homophily(graph.adjacency, graph.labels),
        "target_edge_homophily": spec.edge_homophily,
        "task": spec.task,
        "train_ratio": spec.train_ratio,
        "paper_nodes": spec.paper_nodes,
        "paper_edges": spec.paper_edges,
    }

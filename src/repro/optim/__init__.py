"""Gradient-descent optimizers."""

from repro.optim.optimizers import SGD, Adam, Optimizer, clip_grad_norm

__all__ = ["SGD", "Adam", "Optimizer", "clip_grad_norm"]

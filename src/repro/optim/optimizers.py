"""First-order optimizers operating on :class:`repro.nn.Parameter` lists."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd import Tensor


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm > 0:
        scale = max_norm / (total + 1e-12)
        for param in params:
            param.grad = param.grad * scale
    return total


class Optimizer:
    """Base optimizer: owns a parameter list and a ``step``/``zero_grad`` API."""

    def __init__(self, parameters: Iterable[Tensor], lr: float,
                 weight_decay: float = 0.0):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _grad(self, param: Tensor) -> np.ndarray:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        return grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = self._grad(param)
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = self._grad(param)
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

"""Command-line interface for the AdaFGL reproduction.

Examples::

    python -m repro.cli datasets
    python -m repro.cli run --dataset cora --split structure --method adafgl
    python -m repro.cli compare --dataset citeseer --methods fedgcn fed-pub adafgl
    python -m repro.cli hcs --dataset chameleon --split structure
    python -m repro.cli serve --dataset cora --method fedgcn --rate 2000
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import AdaFGL
from repro.datasets import dataset_statistics, list_datasets, load_dataset
from repro.experiments import (
    ExperimentSettings,
    compare_methods,
    format_table,
    prepare_clients,
    run_method,
)
from repro.autograd import list_array_backends
from repro.experiments.runner import available_methods
from repro.federated import list_aggregations, list_backends
from repro.graph import edge_homophily


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    settings = ExperimentSettings(seed=args.seed)
    if args.clients is not None:
        settings.num_clients = args.clients
    if args.rounds is not None:
        settings.rounds = args.rounds
    if args.epochs is not None:
        settings.local_epochs = args.epochs
    if getattr(args, "backend", None) is not None:
        settings.backend = args.backend
    if getattr(args, "aggregation", None) is not None:
        settings.aggregation = args.aggregation
    if getattr(args, "workers", None) is not None:
        settings.num_workers = args.workers
    if getattr(args, "intra_worker", None) is not None:
        settings.intra_worker = args.intra_worker
    if getattr(args, "round_mode", None) is not None:
        settings.round_mode = args.round_mode
    if getattr(args, "hierarchical", None) is not None:
        settings.hierarchical = args.hierarchical
    if getattr(args, "async_buffer", None) is not None:
        settings.async_buffer = args.async_buffer
    if getattr(args, "staleness_cap", None) is not None:
        settings.staleness_cap = args.staleness_cap
    if getattr(args, "delta_codec", None) is not None:
        settings.delta_codec = args.delta_codec
    if getattr(args, "delta_top_k", None) is not None:
        settings.delta_top_k = args.delta_top_k
    if getattr(args, "delta_bits", None) is not None:
        settings.delta_bits = args.delta_bits
    if getattr(args, "transport", None) is not None:
        settings.transport = args.transport
    if getattr(args, "on_worker_failure", None) is not None:
        settings.on_worker_failure = args.on_worker_failure
    if getattr(args, "round_timeout", None) is not None:
        settings.round_timeout = args.round_timeout
    if getattr(args, "checkpoint_every", None) is not None:
        settings.checkpoint_every = args.checkpoint_every
    if getattr(args, "checkpoint_dir", None) is not None:
        settings.checkpoint_dir = args.checkpoint_dir
    if getattr(args, "resume_from", None) is not None:
        settings.resume_from = args.resume_from
    if getattr(args, "array_backend", None) is not None:
        settings.array_backend = args.array_backend
    return settings


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="cora", choices=list_datasets())
    parser.add_argument("--split", default="community",
                        choices=["community", "structure"])
    parser.add_argument("--injection", default="random",
                        choices=["random", "meta"])
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--nodes", type=int, default=None,
                        help="override the generated dataset size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", default=None, choices=list_backends(),
                        help="execution backend for federated local training")
    parser.add_argument("--array-backend", default=None,
                        choices=list_array_backends(),
                        help="array backend for every client's local math "
                             "(numpy = bitwise reference, jit = numba CSR "
                             "kernels; default: REPRO_ARRAY_BACKEND or "
                             "numpy)")
    parser.add_argument("--aggregation", default=None,
                        choices=list_aggregations(),
                        help="server aggregation strategy (methods with a "
                             "built-in strategy, e.g. fed-pub, keep theirs)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (backend=process_pool and "
                             "AdaFGL Step-2)")
    parser.add_argument("--intra-worker", default=None,
                        choices=["auto", "batched", "serial"],
                        help="how a persistent pool worker trains its "
                             "resident client shard (auto fuses it through "
                             "the batched engine when possible)")
    parser.add_argument("--round-mode", default=None,
                        choices=["sync", "async"],
                        help="process-pool round discipline: sync pipelined "
                             "rounds (exact) or bounded-staleness async "
                             "rounds")
    parser.add_argument("--hierarchical", action="store_true", default=None,
                        help="process-pool workers act as edge aggregators: "
                             "one pre-aggregated fixed-point partial per "
                             "shard per round instead of per-client uploads "
                             "(sync rounds, bitwise-equal to flat FedAvg)")
    parser.add_argument("--async-buffer", type=int, default=None,
                        help="async mode: shard reports per server seal")
    parser.add_argument("--staleness-cap", type=int, default=None,
                        help="async mode: drop reports older than this many "
                             "server rounds")
    parser.add_argument("--delta-codec", default=None,
                        choices=["bitdelta", "topk", "qtopk"],
                        help="persistent-pool upload transport: lossless "
                             "bit deltas, lossy top-k sparsified deltas, or "
                             "top-k plus uniform quantisation (qtopk)")
    parser.add_argument("--delta-top-k", type=int, default=None,
                        help="delta entries kept per parameter with "
                             "--delta-codec topk/qtopk")
    parser.add_argument("--delta-bits", type=int, default=None,
                        help="bits per transported delta value with "
                             "--delta-codec qtopk")
    parser.add_argument("--transport", default=None,
                        choices=["pipe", "tcp"],
                        help="coordinator-worker channel of the process "
                             "pool: pipe (in-host, the parity reference) or "
                             "tcp framed sockets with CRC, heartbeats and "
                             "reconnect (default: REPRO_TRANSPORT or pipe)")
    parser.add_argument("--on-worker-failure", default=None,
                        choices=["fail", "restart", "redistribute"],
                        help="process-pool crash policy: abort the run, "
                             "respawn the dead worker in place, or spread "
                             "its clients over the survivors")
    parser.add_argument("--round-timeout", type=float, default=None,
                        help="seconds before a round drops its late shards "
                             "(the aggregate reweights over the reporters)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        help="write a resumable checkpoint every N rounds "
                             "(0 disables; sync rounds only)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="directory for checkpoint files "
                             "(default: checkpoints/)")
    parser.add_argument("--resume-from", default=None,
                        help="checkpoint file to restore before training "
                             "(resumes the interrupted run bitwise on the "
                             "serial/sync paths)")


def cmd_datasets(args: argparse.Namespace) -> int:
    rows = [list(dataset_statistics(name, seed=args.seed).values())
            for name in list_datasets()]
    headers = list(dataset_statistics(list_datasets()[0], seed=args.seed))
    print(format_table(headers, rows, title="Registered datasets"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    settings = _settings(args)
    graph = load_dataset(args.dataset, seed=args.seed, num_nodes=args.nodes)
    clients = prepare_clients(args.dataset, args.split, settings, graph=graph,
                              injection=args.injection)
    summary = run_method(args.method, clients, settings)
    print(format_table(
        ["method", "split", "test accuracy", "train accuracy", "floats/round"],
        [[args.method, args.split, summary["accuracy"],
          summary["train_accuracy"], summary["communication"]["per_round"]]],
        title=f"{args.dataset} ({len(clients)} clients)"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    settings = _settings(args)
    graph = load_dataset(args.dataset, seed=args.seed, num_nodes=args.nodes)
    clients = prepare_clients(args.dataset, args.split, settings, graph=graph,
                              injection=args.injection)
    results = compare_methods(args.methods, clients, settings)
    rows = [[method, results[method]["accuracy"],
             results[method]["communication"]["per_round"]]
            for method in args.methods]
    print(format_table(["method", "test accuracy", "floats/round"], rows,
                       title=f"{args.dataset} — {args.split} split"))
    return 0


def cmd_hcs(args: argparse.Namespace) -> int:
    settings = _settings(args)
    graph = load_dataset(args.dataset, seed=args.seed, num_nodes=args.nodes)
    clients = prepare_clients(args.dataset, args.split, settings, graph=graph,
                              injection=args.injection)
    trainer = AdaFGL(clients, settings.adafgl_config())
    trainer.run()
    hcs = trainer.client_hcs()
    rows = [[cid, hcs[cid],
             edge_homophily(clients[cid].adjacency, clients[cid].labels)]
            for cid in sorted(hcs)]
    print(format_table(["client", "HCS", "edge homophily"], rows,
                       title=f"HCS on {args.dataset} — {args.split} split"))
    print(f"\noverall test accuracy: {trainer.evaluate('test'):.3f}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Export (or load) a serving snapshot and drive it with open-loop load."""
    from repro.serving import (
        QueryEngine,
        ServingSnapshot,
        build_query_mix,
        run_open_loop,
    )

    if args.snapshot:
        snapshot = ServingSnapshot.load(args.snapshot)
    else:
        settings = _settings(args)
        graph = load_dataset(args.dataset, seed=args.seed,
                             num_nodes=args.nodes)
        clients = prepare_clients(args.dataset, args.split, settings,
                                  graph=graph, injection=args.injection)
        summary = run_method(args.method, clients, settings)
        trainer = summary["trainer"]
        snapshot = ServingSnapshot.from_adafgl(trainer) \
            if isinstance(trainer, AdaFGL) \
            else ServingSnapshot.from_trainer(trainer)
    if args.export:
        snapshot.save(args.export)
        print(f"snapshot written to {args.export}")
    engine_kwargs = dict(max_batch=args.max_batch,
                         max_delay_ms=args.max_delay_ms,
                         cache_size=args.cache_size,
                         max_queue=args.max_queue)
    if getattr(args, "array_backend", None) is not None:
        engine_kwargs["array_backend"] = args.array_backend
    with QueryEngine(snapshot, **engine_kwargs) as engine:
        queries = build_query_mix(
            snapshot, args.queries,
            inductive_fraction=args.inductive_frac, seed=args.seed)
        report = run_open_loop(engine, queries, args.rate, seed=args.seed)
        backend = engine.array_backend
    print(format_table(
        ["family", "backend", "max batch", "offered qps", "achieved qps",
         "p50 ms", "p99 ms", "mean batch", "rejected"],
        [[snapshot.model_family, backend, args.max_batch,
          f"{report.offered_qps:.0f}", f"{report.achieved_qps:.0f}",
          f"{report.p50_ms:.2f}", f"{report.p99_ms:.2f}",
          f"{report.mean_batch:.1f}", report.rejected]],
        title=f"serving {snapshot.num_clients} clients "
              f"({report.queries} queries, source: {snapshot.source})"))
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Run one federation worker that dials a TCP coordinator.

    The remote half of ``--transport tcp`` with ``mode="external"``: the
    coordinator listens, this process dials ``--connect host:port``,
    identifies itself as worker ``--worker-id`` and then serves the
    standard command loop until the coordinator closes the channel (crash
    supervision, reconnect and session resume all behave exactly as for
    locally spawned workers).
    """
    from repro.federated.engine.transport import run_tcp_worker

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"--connect must be HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    run_tcp_worker((host, int(port)), args.worker_id, token=args.token)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AdaFGL reproduction command-line interface")
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_datasets = subparsers.add_parser(
        "datasets", help="list the registered benchmark datasets")
    p_datasets.add_argument("--seed", type=int, default=0)
    p_datasets.set_defaults(func=cmd_datasets)

    p_run = subparsers.add_parser("run", help="train one federated method")
    _add_common(p_run)
    p_run.add_argument("--method", default="adafgl",
                       choices=available_methods())
    p_run.set_defaults(func=cmd_run)

    p_compare = subparsers.add_parser(
        "compare", help="compare several methods on the same split")
    _add_common(p_compare)
    p_compare.add_argument("--methods", nargs="+",
                           default=["fedgcn", "fed-pub", "adafgl"],
                           choices=available_methods())
    p_compare.set_defaults(func=cmd_compare)

    p_hcs = subparsers.add_parser(
        "hcs", help="report per-client Homophily Confidence Scores")
    _add_common(p_hcs)
    p_hcs.set_defaults(func=cmd_hcs)

    p_serve = subparsers.add_parser(
        "serve", help="freeze a serving snapshot and measure qps / latency")
    _add_common(p_serve)
    p_serve.add_argument("--method", default="fedgcn",
                         choices=available_methods())
    p_serve.add_argument("--snapshot", default=None,
                         help="serve a previously exported snapshot file "
                              "instead of training one")
    p_serve.add_argument("--export", default=None,
                         help="write the snapshot to this path before "
                              "serving")
    p_serve.add_argument("--queries", type=int, default=2000,
                         help="number of queries the load run submits")
    p_serve.add_argument("--rate", type=float, default=1000.0,
                         help="open-loop Poisson arrival rate (queries/sec)")
    p_serve.add_argument("--inductive-frac", type=float, default=0.0,
                         help="fraction of queries that present a new node "
                              "(requires an inductive-capable snapshot)")
    p_serve.add_argument("--max-batch", type=int, default=32,
                         help="micro-batch flush size")
    p_serve.add_argument("--max-delay-ms", type=float, default=2.0,
                         help="micro-batch flush deadline in milliseconds")
    p_serve.add_argument("--cache-size", type=int, default=128,
                         help="LRU capacity over extracted subgraph blocks")
    p_serve.add_argument("--max-queue", type=int, default=0,
                         help="admission-queue bound: submissions beyond "
                              "this many waiting queries fast-fail instead "
                              "of growing latency (0 = unbounded)")
    p_serve.set_defaults(func=cmd_serve)

    p_worker = subparsers.add_parser(
        "worker", help="run one TCP federation worker (dials a coordinator)")
    p_worker.add_argument("--connect", required=True,
                          help="coordinator listener address as HOST:PORT")
    p_worker.add_argument("--worker-id", type=int, required=True,
                          help="worker slot this process serves (matches "
                               "the coordinator's worker indices)")
    p_worker.add_argument("--token", default="",
                          help="shared secret the coordinator requires at "
                               "the HELLO handshake (if any)")
    p_worker.set_defaults(func=cmd_worker)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Distribution diagnostics reproduced in Fig. 2 of the paper."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph import Graph, edge_homophily, node_homophily


def client_label_distribution(clients: List[Graph],
                              num_classes: int = None) -> np.ndarray:
    """Matrix of node counts per (client, class) — Fig. 2(a).

    Rows are clients, columns are classes.
    """
    if not clients:
        return np.zeros((0, 0))
    if num_classes is None:
        num_classes = max(int(c.labels.max()) + 1 for c in clients)
    matrix = np.zeros((len(clients), num_classes), dtype=np.int64)
    for row, client in enumerate(clients):
        matrix[row] = np.bincount(client.labels, minlength=num_classes)
    return matrix


def client_topology_distribution(clients: List[Graph]) -> np.ndarray:
    """Per-client (node homophily, edge homophily) pairs — Fig. 2(b)."""
    stats = np.zeros((len(clients), 2))
    for row, client in enumerate(clients):
        stats[row, 0] = node_homophily(client.adjacency, client.labels)
        stats[row, 1] = edge_homophily(client.adjacency, client.labels)
    return stats

"""Node-classification metrics."""

from __future__ import annotations

from typing import Optional

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions.

    ``predictions`` may be class ids ``(n,)`` or probability/logit rows
    ``(n, c)`` in which case the argmax is taken.
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    if predictions.shape[0] != labels.shape[0]:
        raise ValueError("predictions and labels have different lengths")
    if labels.size == 0:
        return 0.0
    return float(np.mean(predictions == labels))


def masked_accuracy(predictions: np.ndarray, labels: np.ndarray,
                    mask: np.ndarray) -> float:
    """Accuracy restricted to ``mask`` (boolean or index array)."""
    mask = np.asarray(mask)
    if mask.dtype == bool:
        idx = np.nonzero(mask)[0]
    else:
        idx = mask
    if idx.size == 0:
        return 0.0
    predictions = np.asarray(predictions)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    return accuracy(predictions[idx], np.asarray(labels)[idx])


def macro_f1(predictions: np.ndarray, labels: np.ndarray,
             num_classes: Optional[int] = None) -> float:
    """Unweighted mean of per-class F1 scores."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    if num_classes is None:
        num_classes = int(max(labels.max(initial=0), predictions.max(initial=0))) + 1
    scores = []
    for c in range(num_classes):
        tp = np.sum((predictions == c) & (labels == c))
        fp = np.sum((predictions == c) & (labels != c))
        fn = np.sum((predictions != c) & (labels == c))
        if tp + fp + fn == 0:
            continue
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        if precision + recall == 0:
            scores.append(0.0)
        else:
            scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores)) if scores else 0.0

"""Training-history containers used for convergence-curve figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ClientReport:
    """Per-client evaluation snapshot."""

    client_id: int
    num_nodes: int
    num_test_nodes: int
    accuracy: float
    homophily: Optional[float] = None


@dataclass
class TrainingHistory:
    """Accumulates per-round metrics during federated training."""

    rounds: List[int] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)
    loss: List[float] = field(default_factory=list)
    client_accuracy: List[Dict[int, float]] = field(default_factory=list)
    #: per-client round lag at each recorded round — empty dicts for
    #: synchronous training, populated by the bounded-staleness async loop
    #: (lag = server rounds between a client's broadcast and its merge)
    client_lag: List[Dict[int, int]] = field(default_factory=list)
    #: per-client round wall-time (seconds the client's shard spent on its
    #: local epochs that round) at each recorded round — populated by the
    #: pipelined sync loop, giving straggler profiles the same per-client
    #: resolution :attr:`client_lag` gives async runs; empty dicts for the
    #: lockstep/serial loops
    client_round_sec: List[Dict[int, float]] = field(default_factory=list)
    #: cumulative count of rounds each client was dropped from (shard
    #: timed out past ``round_timeout``, or lost with a crashed worker
    #: under a non-``fail`` recovery policy); absent ids were never dropped
    client_drops: Dict[int, int] = field(default_factory=dict)
    #: round index → sorted participant client ids selected that round
    #: (every round, not just evaluated ones; async rounds record the
    #: clients merged into each seal)
    participants: Dict[int, List[int]] = field(default_factory=dict)

    def record_drop(self, client_id: int) -> None:
        """Count one dropped-round event for a client (fault degradation)."""
        self.client_drops[client_id] = self.client_drops.get(client_id, 0) + 1

    def record_participants(self, round_index: int, ids) -> None:
        """Remember which clients were selected to train this round."""
        self.participants[int(round_index)] = sorted(int(i) for i in ids)

    def record(self, round_index: int, train_acc: float, test_acc: float,
               loss: float, per_client: Optional[Dict[int, float]] = None,
               per_client_lag: Optional[Dict[int, int]] = None,
               per_client_round_sec: Optional[Dict[int, float]] = None
               ) -> None:
        self.rounds.append(round_index)
        self.train_accuracy.append(train_acc)
        self.test_accuracy.append(test_acc)
        self.loss.append(loss)
        self.client_accuracy.append(dict(per_client or {}))
        self.client_lag.append(dict(per_client_lag or {}))
        self.client_round_sec.append(dict(per_client_round_sec or {}))

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracy[-1] if self.test_accuracy else 0.0

    @property
    def best_test_accuracy(self) -> float:
        return max(self.test_accuracy) if self.test_accuracy else 0.0

    def rounds_to_reach(self, threshold: float) -> Optional[int]:
        """First round whose test accuracy reaches ``threshold`` (or None)."""
        for round_index, acc in zip(self.rounds, self.test_accuracy):
            if acc >= threshold:
                return round_index
        return None

    def as_dict(self) -> Dict[str, list]:
        return {
            "rounds": list(self.rounds),
            "train_accuracy": list(self.train_accuracy),
            "test_accuracy": list(self.test_accuracy),
            "loss": list(self.loss),
        }

"""Evaluation metrics and training-history tracking."""

from repro.metrics.classification import accuracy, masked_accuracy, macro_f1
from repro.metrics.history import TrainingHistory, ClientReport
from repro.metrics.distribution import (
    client_label_distribution,
    client_topology_distribution,
)

__all__ = [
    "accuracy",
    "masked_accuracy",
    "macro_f1",
    "TrainingHistory",
    "ClientReport",
    "client_label_distribution",
    "client_topology_distribution",
]

"""Reproduction of AdaFGL (ICDE 2024) on a pure numpy/scipy substrate.

The package is organised bottom-up:

* :mod:`repro.autograd` — reverse-mode automatic differentiation engine.
* :mod:`repro.nn` / :mod:`repro.optim` — neural-network layers and optimizers.
* :mod:`repro.graph` — graph container, normalisation and homophily metrics.
* :mod:`repro.datasets` — synthetic stand-ins for the paper's 12 benchmarks.
* :mod:`repro.partition` — Louvain and Metis-style partitioners.
* :mod:`repro.simulation` — community split, structure Non-iid split, sparsity.
* :mod:`repro.federated` — clients, server, FedAvg collaborative training.
* :mod:`repro.models` — centralised GNN baselines (GCN, GCNII, GloGNN, ...).
* :mod:`repro.fgl` — federated graph learning baselines (FedGL, FED-PUB, ...).
* :mod:`repro.core` — the AdaFGL paradigm (the paper's contribution).
* :mod:`repro.experiments` — table/figure regeneration harness.
"""

from repro.graph import Graph
from repro.datasets import load_dataset, list_datasets
from repro.simulation import community_split, structure_noniid_split
from repro.core import AdaFGL, AdaFGLConfig

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "load_dataset",
    "list_datasets",
    "community_split",
    "structure_noniid_split",
    "AdaFGL",
    "AdaFGLConfig",
    "__version__",
]

"""Topological homophily metrics (Eq. 2 of the paper)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def _edge_list(adjacency: sp.spmatrix) -> tuple:
    coo = sp.coo_matrix(adjacency)
    mask = coo.row != coo.col
    return coo.row[mask], coo.col[mask]


def edge_homophily(adjacency: sp.spmatrix, labels: np.ndarray) -> float:
    """Fraction of edges connecting same-label endpoints (Eq. 2, H_edge)."""
    labels = np.asarray(labels)
    rows, cols = _edge_list(adjacency)
    if rows.size == 0:
        return 1.0
    return float(np.mean(labels[rows] == labels[cols]))


def node_homophily(adjacency: sp.spmatrix, labels: np.ndarray) -> float:
    """Average per-node fraction of same-label neighbours (Eq. 2, H_node)."""
    labels = np.asarray(labels)
    adjacency = sp.csr_matrix(adjacency)
    n = adjacency.shape[0]
    scores = []
    indptr, indices = adjacency.indptr, adjacency.indices
    for v in range(n):
        neigh = indices[indptr[v]:indptr[v + 1]]
        neigh = neigh[neigh != v]
        if neigh.size == 0:
            continue
        scores.append(np.mean(labels[neigh] == labels[v]))
    if not scores:
        return 1.0
    return float(np.mean(scores))


def class_homophily(adjacency: sp.spmatrix, labels: np.ndarray) -> float:
    """Class-insensitive homophily (Lim et al., 2021).

    Subtracts the expected same-class rate under a label-shuffled null model,
    clipping negative contributions to zero, and averages over classes.
    """
    labels = np.asarray(labels)
    num_classes = int(labels.max()) + 1 if labels.size else 0
    if num_classes <= 1:
        return 1.0
    adjacency = sp.csr_matrix(adjacency)
    indptr, indices = adjacency.indptr, adjacency.indices
    class_fraction = np.bincount(labels, minlength=num_classes) / labels.size

    per_class = np.zeros(num_classes)
    counts = np.zeros(num_classes)
    for v in range(adjacency.shape[0]):
        neigh = indices[indptr[v]:indptr[v + 1]]
        neigh = neigh[neigh != v]
        if neigh.size == 0:
            continue
        k = labels[v]
        per_class[k] += np.mean(labels[neigh] == k)
        counts[k] += 1

    total = 0.0
    for k in range(num_classes):
        if counts[k] == 0:
            continue
        total += max(0.0, per_class[k] / counts[k] - class_fraction[k])
    return float(total / (num_classes - 1))

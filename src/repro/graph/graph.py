"""The :class:`Graph` container used throughout the library.

A graph bundles a sparse adjacency matrix, dense node features, integer node
labels and (optional) train/val/test masks.  All federated splits, datasets
and models exchange this type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp


@dataclass
class Graph:
    """An attributed, labelled graph for semi-supervised node classification.

    Attributes
    ----------
    adjacency:
        Symmetric sparse adjacency matrix without self-loops, shape ``(n, n)``.
    features:
        Dense node feature matrix, shape ``(n, f)``.
    labels:
        Integer class labels, shape ``(n,)``.
    train_mask / val_mask / test_mask:
        Boolean masks of shape ``(n,)``; may be all-False if unset.
    name:
        Optional human-readable dataset name.
    metadata:
        Free-form dictionary (e.g. original global node ids after a split).
    """

    adjacency: sp.spmatrix
    features: np.ndarray
    labels: np.ndarray
    train_mask: Optional[np.ndarray] = None
    val_mask: Optional[np.ndarray] = None
    test_mask: Optional[np.ndarray] = None
    name: str = "graph"
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self):
        self.adjacency = sp.csr_matrix(self.adjacency, dtype=np.float64)
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        n = self.adjacency.shape[0]
        if self.adjacency.shape[0] != self.adjacency.shape[1]:
            raise ValueError("adjacency must be square")
        if self.features.shape[0] != n:
            raise ValueError(
                f"features have {self.features.shape[0]} rows but the graph "
                f"has {n} nodes")
        if self.labels.shape[0] != n:
            raise ValueError(
                f"labels have {self.labels.shape[0]} entries but the graph "
                f"has {n} nodes")
        for attr in ("train_mask", "val_mask", "test_mask"):
            mask = getattr(self, attr)
            if mask is None:
                setattr(self, attr, np.zeros(n, dtype=bool))
            else:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape[0] != n:
                    raise ValueError(f"{attr} has wrong length {mask.shape[0]}")
                setattr(self, attr, mask)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return int(self.adjacency.nnz // 2)

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        """Number of classes in the *global* problem.

        Subgraphs produced by the split strategies may not contain every
        class, so the global class count is carried through ``metadata``
        (falling back to ``labels.max() + 1`` for standalone graphs).
        """
        declared = self.metadata.get("num_classes")
        if declared is not None:
            return int(declared)
        return int(self.labels.max()) + 1 if self.labels.size else 0

    @property
    def degrees(self) -> np.ndarray:
        return np.asarray(self.adjacency.sum(axis=1)).ravel()

    def train_indices(self) -> np.ndarray:
        return np.nonzero(self.train_mask)[0]

    def val_indices(self) -> np.ndarray:
        return np.nonzero(self.val_mask)[0]

    def test_indices(self) -> np.ndarray:
        return np.nonzero(self.test_mask)[0]

    # ------------------------------------------------------------------
    # Manipulation
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        return Graph(
            adjacency=self.adjacency.copy(),
            features=self.features.copy(),
            labels=self.labels.copy(),
            train_mask=self.train_mask.copy(),
            val_mask=self.val_mask.copy(),
            test_mask=self.test_mask.copy(),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def with_adjacency(self, adjacency: sp.spmatrix) -> "Graph":
        """Return a copy of the graph with a replaced adjacency matrix."""
        out = self.copy()
        out.adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
        if out.adjacency.shape != (self.num_nodes, self.num_nodes):
            raise ValueError("replacement adjacency has the wrong shape")
        return out

    def node_subgraph(self, nodes: np.ndarray, name: Optional[str] = None) -> "Graph":
        """Extract the induced subgraph over ``nodes`` (keeps split masks)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        adjacency = self.adjacency[nodes][:, nodes]
        return Graph(
            adjacency=adjacency,
            features=self.features[nodes],
            labels=self.labels[nodes],
            train_mask=self.train_mask[nodes],
            val_mask=self.val_mask[nodes],
            test_mask=self.test_mask[nodes],
            name=name or f"{self.name}-sub",
            metadata={**self.metadata, "global_ids": nodes.copy(),
                      "num_classes": self.num_classes},
        )

    def label_onehot(self) -> np.ndarray:
        """Return labels as a one-hot matrix of shape ``(n, num_classes)``."""
        onehot = np.zeros((self.num_nodes, self.num_classes))
        onehot[np.arange(self.num_nodes), self.labels] = 1.0
        return onehot

    def label_distribution(self) -> np.ndarray:
        """Return the class histogram (counts per class)."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
                f"edges={self.num_edges}, features={self.num_features}, "
                f"classes={self.num_classes})")

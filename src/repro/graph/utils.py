"""Sparse graph utilities: edge-list conversion, k-hop operators, components."""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph


def edges_from_adjacency(adjacency: sp.spmatrix) -> np.ndarray:
    """Return the undirected edge list as an ``(m, 2)`` array with u < v."""
    coo = sp.coo_matrix(adjacency)
    mask = coo.row < coo.col
    return np.stack([coo.row[mask], coo.col[mask]], axis=1)


def adjacency_from_edges(edges: np.ndarray, num_nodes: int,
                         symmetric: bool = True) -> sp.csr_matrix:
    """Build a binary adjacency matrix from an ``(m, 2)`` edge list."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size == 0:
        return sp.csr_matrix((num_nodes, num_nodes))
    data = np.ones(edges.shape[0])
    adjacency = sp.coo_matrix(
        (data, (edges[:, 0], edges[:, 1])), shape=(num_nodes, num_nodes))
    if symmetric:
        adjacency = adjacency.maximum(adjacency.T)
    adjacency = sp.csr_matrix(adjacency)
    adjacency.data = np.ones_like(adjacency.data)
    adjacency.setdiag(0)
    adjacency.eliminate_zeros()
    return adjacency


def k_hop_adjacency(adjacency: sp.spmatrix, k: int) -> sp.csr_matrix:
    """Binary reachability within exactly ``k`` hops (powers of the adjacency)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    adjacency = sp.csr_matrix(adjacency)
    adjacency.data = np.ones_like(adjacency.data)
    power = adjacency.copy()
    for _ in range(k - 1):
        power = power @ adjacency
        power.data = np.ones_like(power.data)
    power.setdiag(0)
    power.eliminate_zeros()
    return power.tocsr()


def largest_connected_component(adjacency: sp.spmatrix) -> np.ndarray:
    """Return the node indices of the largest connected component."""
    n_components, component = csgraph.connected_components(
        sp.csr_matrix(adjacency), directed=False)
    if n_components <= 1:
        return np.arange(adjacency.shape[0])
    sizes = np.bincount(component)
    return np.nonzero(component == sizes.argmax())[0]


def subgraph(adjacency: sp.spmatrix, nodes: np.ndarray) -> sp.csr_matrix:
    """Induced-subgraph adjacency over ``nodes``."""
    nodes = np.asarray(nodes, dtype=np.int64)
    return sp.csr_matrix(adjacency)[nodes][:, nodes]


def random_spanning_edges(num_nodes: int,
                          rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Edges of a random spanning tree over ``num_nodes`` (used to keep graphs
    connected in synthetic generation)."""
    rng = rng if rng is not None else np.random.default_rng()
    order = rng.permutation(num_nodes)
    edges = []
    for i in range(1, num_nodes):
        j = rng.integers(0, i)
        edges.append((order[i], order[j]))
    return np.asarray(edges, dtype=np.int64).reshape(-1, 2)

"""Graph container, normalisation operators and homophily metrics."""

from repro.graph.graph import Graph
from repro.graph.normalize import (
    add_self_loops,
    normalize_adjacency,
    row_normalize,
    to_symmetric,
)
from repro.graph.homophily import node_homophily, edge_homophily, class_homophily
from repro.graph.utils import (
    edges_from_adjacency,
    adjacency_from_edges,
    k_hop_adjacency,
    largest_connected_component,
    subgraph,
)

__all__ = [
    "Graph",
    "add_self_loops",
    "normalize_adjacency",
    "row_normalize",
    "to_symmetric",
    "node_homophily",
    "edge_homophily",
    "class_homophily",
    "edges_from_adjacency",
    "adjacency_from_edges",
    "k_hop_adjacency",
    "largest_connected_component",
    "subgraph",
]

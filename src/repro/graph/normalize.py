"""Adjacency normalisation operators (Eq. 1 of the paper).

``normalize_adjacency`` implements ``D^{r-1} Â D^{-r}``: ``r = 1/2`` gives the
GCN symmetric normalisation, ``r = 1`` the random-walk operator ``Â D^{-1}``
and ``r = 0`` the reverse-transition operator ``D^{-1} Â``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def to_symmetric(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Symmetrise an adjacency matrix (logical OR of A and Aᵀ), binary weights."""
    adjacency = sp.csr_matrix(adjacency)
    sym = adjacency.maximum(adjacency.T)
    sym.data = np.ones_like(sym.data)
    sym.setdiag(0)
    sym.eliminate_zeros()
    return sym.tocsr()


def add_self_loops(adjacency: sp.spmatrix, weight: float = 1.0) -> sp.csr_matrix:
    """Return ``A + weight * I``."""
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    n = adjacency.shape[0]
    return (adjacency + weight * sp.eye(n, format="csr")).tocsr()


def normalize_adjacency(adjacency: sp.spmatrix, r: float = 0.5,
                        self_loops: bool = True) -> sp.csr_matrix:
    """Generalised degree normalisation ``D^{r-1} Â D^{-r}`` (Eq. 1).

    Parameters
    ----------
    adjacency:
        Sparse adjacency matrix.
    r:
        Convolution kernel coefficient in ``[0, 1]``.
    self_loops:
        Whether to add self-loops before normalising (GCN convention).
    """
    if not 0.0 <= r <= 1.0:
        raise ValueError("normalisation coefficient r must be in [0, 1]")
    matrix = add_self_loops(adjacency) if self_loops else sp.csr_matrix(
        adjacency, dtype=np.float64)
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    degrees[degrees == 0] = 1.0
    left = sp.diags(np.power(degrees, r - 1.0))
    right = sp.diags(np.power(degrees, -r))
    return (left @ matrix @ right).tocsr()


def row_normalize(matrix: np.ndarray) -> np.ndarray:
    """Row-normalise a dense non-negative matrix so rows sum to one."""
    matrix = np.asarray(matrix, dtype=np.float64)
    sums = matrix.sum(axis=1, keepdims=True)
    sums[sums == 0] = 1.0
    return matrix / sums

"""Step 2 building blocks: personalized propagation modules (Sec. III-C).

The per-client model combines:

* **knowledge smoothing** (Eq. 7) — k-step propagation of features through the
  optimized matrix P̃, learned by the ``MessageUpdater`` MLP (Θ_knowledge);
* **homophilous propagation** (Eq. 8–9) — knowledge-preserving loss plus the
  comprehensive prediction mixing knowledge embeddings with P̂;
* **heterophilous propagation** (Eq. 10–13) — topology-independent feature
  embedding (Θ_feature), global-dependent node embedding (the same knowledge
  embedding, without knowledge preservation) and the learnable positive /
  negative message-passing mechanism (Θ_message).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd import Tensor, functional as F
from repro.core.propagation import PropagationCache
from repro.nn import Linear, MLP, Module
from repro.nn.module import Parameter

#: Propagation operators accepted throughout Step 2: dense arrays or any
#: scipy sparse matrix (the sparse-first engine hands around CSR).
PropagationMatrix = Union[np.ndarray, sp.spmatrix]

# The sddmm support rows of a CSR pattern (``np.repeat`` over the row
# pointers) are a per-epoch recompute on the sparse message-passing hot
# path; the pattern object is a per-client constant, so cache by identity
# (strong reference keeps the id stable while cached).
_PATTERN_ROWS_CACHE: dict = {}


def _pattern_rows(pattern: sp.csr_matrix) -> np.ndarray:
    hit = _PATTERN_ROWS_CACHE.get(id(pattern))
    if hit is not None and hit[0] is pattern:
        return hit[1]
    if len(_PATTERN_ROWS_CACHE) >= 64:
        _PATTERN_ROWS_CACHE.clear()
    rows = np.repeat(np.arange(pattern.shape[0]), np.diff(pattern.indptr))
    _PATTERN_ROWS_CACHE[id(pattern)] = (pattern, rows)
    return rows


class MessageUpdater(Module):
    """MLP over concatenated multi-hop propagated features (Eq. 7)."""

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 k: int, dropout: float = 0.3, seed: int = 0):
        super().__init__()
        self.k = k
        self.in_features = in_features
        self.mlp = MLP(in_features * k, [hidden], out_features,
                       dropout=dropout, seed=seed)

    def forward(self, propagated: Union[Sequence[Tensor], Tensor]) -> Tensor:
        if isinstance(propagated, Tensor):
            # Pre-concatenated (n, k·f) block straight from a PropagationCache.
            if propagated.shape[1] != self.k * self.in_features:
                raise ValueError(
                    f"expected a concatenated block of width "
                    f"{self.k * self.in_features}, got {propagated.shape[1]}")
            return self.mlp(propagated)
        if len(propagated) != self.k:
            raise ValueError(
                f"expected {self.k} propagated feature blocks, got {len(propagated)}")
        return self.mlp(F.concat(propagated, axis=1))


class LearnableMessagePassing(Module):
    """End-to-end learnable positive/negative message modelling (Eq. 11–12)."""

    def __init__(self, num_classes: int, num_layers: int = 2,
                 beta: float = 0.7, seed: int = 0):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.num_layers = num_layers
        self.beta = beta
        self._layer_names = []
        rng_seed = seed
        for index in range(num_layers):
            name = f"message{index}"
            setattr(self, name, Linear(num_classes, num_classes,
                                       rng=np.random.default_rng(rng_seed + index)))
            self._layer_names.append(name)

    def forward(self, knowledge_embedding: Tensor,
                propagation_matrix: PropagationMatrix) -> Tensor:
        """Run the signed message-passing refinement.

        ``knowledge_embedding`` is H_m^{(0)} = H̃ and ``propagation_matrix``
        is P̃^{(0)}; both are per-client quantities from Step 1.

        A dense P̃ follows the textbook Eq. 11–12 with an explicit ``(n, n)``
        similarity update.  A sparse P̃ routes through the sparse-first path
        instead: the similarity refinement is restricted to the fixed support
        of P̃ (an SDDMM), so the whole module stays ``O(nnz · c)``.  When P̃
        keeps every off-diagonal entry (``top_k=None``) the support is full
        and both paths coincide numerically.
        """
        h_m = knowledge_embedding
        if sp.issparse(propagation_matrix):
            return self._forward_sparse(h_m, propagation_matrix.tocsr())
        p_current = Tensor(np.asarray(propagation_matrix))
        for name in self._layer_names:
            h_m = F.relu(getattr(self, name)(h_m))
            similarity = h_m.matmul(h_m.T)
            p_current = p_current * self.beta + similarity * (1.0 - self.beta)
            h_pos = F.relu(p_current).matmul(h_m)
            h_neg = F.relu(-p_current).matmul(h_m)
            scale = 1.0 / max(1.0, float(h_m.shape[0]))
            h_m = h_m + (h_pos - h_neg) * scale
        return h_m

    def _forward_sparse(self, h_m: Tensor, pattern: sp.csr_matrix) -> Tensor:
        """Eq. 11–12 on the fixed support of a sparse P̃ (never ``(n, n)``)."""
        rows = _pattern_rows(pattern)
        cols = pattern.indices
        p_values = Tensor(pattern.data)
        scale = 1.0 / max(1.0, float(h_m.shape[0]))
        for name in self._layer_names:
            h_m = F.relu(getattr(self, name)(h_m))
            similarity = F.sddmm(rows, cols, h_m, h_m)
            p_values = p_values * self.beta + similarity * (1.0 - self.beta)
            h_pos = F.spmm_pattern(pattern, F.relu(p_values), h_m)
            h_neg = F.spmm_pattern(pattern, F.relu(-p_values), h_m)
            h_m = h_m + (h_pos - h_neg) * scale
        return h_m


class AdaFGLClientModel(Module):
    """The full per-client Step-2 model.

    Parameters
    ----------
    in_features / hidden / num_classes:
        Dimensions of the local subgraph problem.
    k_prop:
        Number of knowledge-smoothing propagation steps (Eq. 7).
    message_layers / beta:
        Depth and residual coefficient of the learnable message passing.
    use_topology_independent / use_learnable_message:
        Ablation switches for the heterophilous module (T.F. and L.M.).
    """

    def __init__(self, in_features: int, hidden: int, num_classes: int,
                 k_prop: int = 3, message_layers: int = 2, beta: float = 0.7,
                 dropout: float = 0.3, seed: int = 0,
                 use_topology_independent: bool = True,
                 use_learnable_message: bool = True):
        super().__init__()
        self.k_prop = k_prop
        self.num_classes = num_classes
        self.use_topology_independent = use_topology_independent
        self.use_learnable_message = use_learnable_message

        self.knowledge_updater = MessageUpdater(
            in_features, hidden, num_classes, k=k_prop, dropout=dropout,
            seed=seed)
        if use_topology_independent:
            self.feature_mlp = MLP(in_features, [hidden], num_classes,
                                   dropout=dropout, seed=seed + 7)
        if use_learnable_message:
            self.message_passing = LearnableMessagePassing(
                num_classes, num_layers=message_layers, beta=beta,
                seed=seed + 13)
        # Learnable combination of the heterophilous views (Eq. 13 uses a
        # plain average; a per-client softmax gate lets each client emphasise
        # whichever view its topology supports — see DESIGN.md).
        num_views = 1 + int(use_topology_independent) + int(use_learnable_message)
        self.view_logits = Parameter(np.zeros(num_views), name="view_logits")

    # ------------------------------------------------------------------
    def knowledge_embedding(self, features: np.ndarray,
                            propagation_matrix: PropagationMatrix,
                            cache: Optional[PropagationCache] = None) -> Tensor:
        """Eq. 7: H̃ from k-step smoothing through P̃ and the MessageUpdater.

        When a :class:`PropagationCache` is supplied, the k-hop products (and
        their concatenation) are constants fetched from the cache instead of
        being recomputed — they never change across epochs.  The cache is
        assumed to wrap the same operator as ``propagation_matrix``
        (``PersonalizedClient`` keeps the two in sync on reassignment).
        """
        if cache is not None:
            return self.knowledge_updater(cache.concatenated(self.k_prop))
        propagated: List[Tensor] = []
        current = F.as_tensor(features)
        if sp.issparse(propagation_matrix):
            operator = propagation_matrix.tocsr()
            for _ in range(self.k_prop):
                current = F.spmm(operator, current)
                propagated.append(current)
        else:
            # Wrap the dense operator exactly once, not per hop per epoch.
            operator = F.as_tensor(propagation_matrix)
            for _ in range(self.k_prop):
                current = operator.matmul(current)
                propagated.append(current)
        return self.knowledge_updater(propagated)

    def homophilous_prediction(self, knowledge_embedding: Tensor,
                               extractor_probs: np.ndarray) -> Tensor:
        """Eq. 9: Ŷ_ho = (softmax(H̃) + P̂) / 2."""
        return (F.softmax(knowledge_embedding, axis=-1)
                + Tensor(np.asarray(extractor_probs))) * 0.5

    def heterophilous_prediction(self, features: np.ndarray,
                                 knowledge_embedding: Tensor,
                                 propagation_matrix: PropagationMatrix) -> Tensor:
        """Eq. 13: gated combination of the available heterophilous views."""
        views = [F.softmax(knowledge_embedding, axis=-1)]
        if self.use_topology_independent:
            h_f = self.feature_mlp(Tensor(np.asarray(features)))
            views.append(F.softmax(h_f, axis=-1))
        if self.use_learnable_message:
            h_m = self.message_passing(knowledge_embedding, propagation_matrix)
            views.append(F.softmax(h_m, axis=-1))
        gates = F.softmax(self.view_logits.reshape(1, -1), axis=-1)
        combined = None
        for index, view in enumerate(views):
            weighted = view * gates[0, index]
            combined = weighted if combined is None else combined + weighted
        return combined

    def forward(self, features: np.ndarray,
                propagation_matrix: PropagationMatrix,
                extractor_probs: np.ndarray, hcs: float,
                cache: Optional[PropagationCache] = None) -> dict:
        """Produce every prediction head and the HCS-combined output (Eq. 17)."""
        knowledge = self.knowledge_embedding(features, propagation_matrix,
                                             cache=cache)
        y_ho = self.homophilous_prediction(knowledge, extractor_probs)
        y_he = self.heterophilous_prediction(features, knowledge,
                                             propagation_matrix)
        combined = y_ho * hcs + y_he * (1.0 - hcs)
        return {
            "knowledge": knowledge,
            "homophilous": y_ho,
            "heterophilous": y_he,
            "combined": combined,
        }

"""Per-client propagation precompute cache — the sparse-first engine hot path.

AdaFGL's Step-2 knowledge smoothing (Eq. 7) propagates the *fixed* feature
matrix ``X`` through the *fixed* optimized matrix P̃ for ``k`` hops every
epoch.  Neither operand ever changes during personalized training, so the
propagated blocks ``[P̃X, P̃²X, …, P̃ᵏX]`` — and their concatenation fed to the
``MessageUpdater`` MLP — are per-client constants.  :class:`PropagationCache`
computes them once (routing every fixed-operator product through
:func:`repro.autograd.functional.propagate`, i.e. sparse CSR ``spmm`` when P̃
is sparse) and hands out constant tensors on every subsequent epoch,
replacing ``O(k · n² · f)`` dense work per epoch with an ``O(k · nnz(P̃) · f)``
one-off.

When to prefer sparse vs. dense P̃
---------------------------------
* **Sparse (top-k)** — the default choice at scale: memory is
  ``O(n · (k + degree))`` instead of ``O(n²)`` and each hop costs
  ``O(nnz · f)``.  With ``top_k ≳ 32`` the retained similarity mass tracks
  the dense matrix closely (see ``benchmarks/results/BENCH_step2.json``).
* **Dense** — exact Eq. 5–6 semantics; fine below a few thousand nodes and
  required when every pairwise similarity entry must participate (e.g. the
  equivalence tests).  A sparse P̃ additionally routes the learnable message
  passing (Eq. 11–12) through SDDMM / pattern-spmm kernels restricted to
  P̃'s support, so the whole Step-2 epoch stays ``O(nnz)``.

The cache invalidates itself whenever :attr:`propagation` is reassigned, so
a client that rebuilds P̃ (new alpha, refreshed P̂) transparently recomputes
its blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd import Tensor, functional as F, no_grad

Operator = Union[np.ndarray, sp.spmatrix]


class PropagationCache:
    """Precomputed k-hop propagated feature blocks for one client.

    Parameters
    ----------
    propagation:
        The fixed propagation operator P̃ — dense ``(n, n)`` array or scipy
        sparse matrix.
    features:
        The fixed node feature matrix ``X`` of shape ``(n, f)``.
    """

    def __init__(self, propagation: Operator, features: np.ndarray):
        self._propagation = propagation
        self._features = np.asarray(features, dtype=np.float64)
        if self._features.ndim != 2:
            raise ValueError("features must be a 2-D (n, f) matrix")
        if propagation.shape[0] != propagation.shape[1]:
            raise ValueError("propagation operator must be square")
        if propagation.shape[0] != self._features.shape[0]:
            raise ValueError(
                "propagation operator and features disagree on node count")
        self._blocks: List[np.ndarray] = []
        self._concats: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    @property
    def propagation(self) -> Operator:
        return self._propagation

    @propagation.setter
    def propagation(self, value: Operator) -> None:
        if value.shape != (self._features.shape[0],) * 2:
            raise ValueError("new propagation operator has the wrong shape")
        self._propagation = value
        self.invalidate()

    @property
    def num_cached_hops(self) -> int:
        return len(self._blocks)

    def invalidate(self) -> None:
        """Drop every cached block (called automatically on P̃ reassignment)."""
        self._blocks = []
        self._concats = {}

    # ------------------------------------------------------------------
    def _ensure(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        current = self._blocks[-1] if self._blocks else self._features
        with no_grad():
            while len(self._blocks) < k:
                propagated = F.propagate(self._propagation, Tensor(current))
                current = propagated.data
                self._blocks.append(current)

    def blocks(self, k: int) -> List[Tensor]:
        """``[P̃X, P̃²X, …, P̃ᵏX]`` as constant (no-grad) tensors."""
        self._ensure(k)
        return [Tensor(block) for block in self._blocks[:k]]

    def concatenated(self, k: int) -> Tensor:
        """The ``(n, k·f)`` concatenation of the first ``k`` blocks.

        This is exactly the input of the Eq. 7 ``MessageUpdater`` MLP, cached
        so the concatenation copy is also paid once rather than per epoch.
        """
        if k not in self._concats:
            self._ensure(k)
            self._concats[k] = np.concatenate(self._blocks[:k], axis=1)
        return Tensor(self._concats[k])

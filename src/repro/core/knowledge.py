"""Step 1 of AdaFGL: the federated knowledge extractor and topology optimisation.

The federated knowledge extractor is the global model aggregated in the final
round of standard federated collaborative training (Sec. III-B).  Each client
then uses its local predictions ``P̂ = f(X, A, W^{T+1})`` to build the corrected
probability propagation matrix

``P = α A + (1 − α) P̂ P̂ᵀ``                               (Eq. 5)

followed by the degree-style rescaling of Eq. 6 that removes self-affinity
bias and re-normalises the propagation weights.

Sparse-first engine
-------------------
The ``P̂ P̂ᵀ`` similarity term is dense by construction, so the textbook
implementation materialises an ``(n, n)`` array per client.  For the hot path
we instead offer a *top-k sparsified* variant (``sparse=True``): the local
topology term stays in CSR form and only the ``top_k`` strongest similarity
entries per row are kept, computed blockwise so the full dense product is
never materialised.  With ``top_k=None`` the sparse path keeps every
off-diagonal similarity entry and is numerically identical to the dense path
(used by the equivalence tests); with small ``top_k`` it is an approximation
that preserves accuracy in practice (see ``benchmarks/bench_perf.py``) while
cutting both memory and the per-epoch propagation cost from ``O(n²)`` to
``O(n·k)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.federated import FederatedConfig
from repro.fgl.fedgnn import FederatedGNN
from repro.graph import Graph
from repro.graph.normalize import normalize_adjacency
from repro.metrics import TrainingHistory


def _topk_similarity(probabilities: np.ndarray, top_k: Optional[int],
                     block_size: int = 2048) -> sp.csr_matrix:
    """Top-k rows of ``P̂ P̂ᵀ`` (diagonal excluded), computed blockwise.

    Only ``block_size`` rows of the similarity product exist at any moment,
    so peak memory is ``O(block_size · n)`` instead of ``O(n²)``.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    n = probabilities.shape[0]
    k = n - 1 if top_k is None else min(int(top_k), n - 1)
    if k <= 0:
        return sp.csr_matrix((n, n), dtype=np.float64)

    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    vals: List[np.ndarray] = []
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block = probabilities[start:stop] @ probabilities.T
        # Eq. 6 removes self-affinity anyway, so never spend top-k slots on it.
        local_rows = np.arange(stop - start)
        block[local_rows, np.arange(start, stop)] = -np.inf
        if k < n - 1:
            idx = np.argpartition(block, -k, axis=1)[:, -k:]
        else:
            idx = np.argsort(block, axis=1)[:, 1:]
        val = np.take_along_axis(block, idx, axis=1)
        keep = val > 0.0
        row_ids = np.broadcast_to(local_rows[:, None] + start, idx.shape)
        rows.append(row_ids[keep])
        cols.append(idx[keep])
        vals.append(val[keep])

    matrix = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n), dtype=np.float64)
    return matrix


def _finalize_sparse(blended: sp.spmatrix, n: int) -> sp.csr_matrix:
    """Eq. 6 on a sparse blend: zero diagonal, row-normalise, tiny self-loop."""
    coo = blended.tocoo()
    off_diag = coo.row != coo.col
    corrected = sp.csr_matrix(
        (coo.data[off_diag], (coo.row[off_diag], coo.col[off_diag])),
        shape=(n, n), dtype=np.float64)

    row_scale = np.asarray(corrected.sum(axis=1)).ravel()
    row_scale[row_scale <= 1e-12] = 1.0
    row_nnz = np.diff(corrected.indptr)
    corrected.data /= np.repeat(row_scale, row_nnz)

    # Small self-loop so isolated nodes still propagate their own signal
    # (sparse counterpart of the in-place diagonal update on the dense path).
    corrected = (corrected + sp.diags(np.full(n, 1e-3), format="csr")).tocsr()
    total = np.asarray(corrected.sum(axis=1)).ravel()
    corrected.data /= np.repeat(total, np.diff(corrected.indptr))
    return corrected


def optimized_propagation_matrix(adjacency: sp.spmatrix,
                                 probabilities: np.ndarray,
                                 alpha: float = 0.7,
                                 *,
                                 sparse: bool = False,
                                 top_k: Optional[int] = None,
                                 block_size: int = 2048,
                                 ) -> Union[np.ndarray, sp.csr_matrix]:
    """Build the federated-knowledge-guided propagation matrix P̃ (Eq. 5–6).

    Parameters
    ----------
    adjacency:
        Local subgraph adjacency (unnormalised, no self-loops).
    probabilities:
        Class-probability matrix ``P̂`` produced by the federated knowledge
        extractor on the local nodes, shape ``(n, num_classes)``.
    alpha:
        Topology-optimisation coefficient: 1.0 keeps the original topology,
        0.0 relies entirely on prediction similarity.
    sparse:
        Return a :class:`scipy.sparse.csr_matrix` built without ever
        materialising the dense ``P̂ P̂ᵀ`` product.
    top_k:
        Number of similarity entries kept per row on the sparse path
        (``None`` keeps all off-diagonal entries, which is numerically
        identical to the dense path).  Only valid with ``sparse=True``.
    block_size:
        Row-block size of the blockwise similarity sweep (sparse path only).

    Returns
    -------
    A row-normalised ``(n, n)`` propagation matrix: dense ``np.ndarray`` by
    default, CSR when ``sparse=True``.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    if top_k is not None and not sparse:
        raise ValueError("top_k is only meaningful with sparse=True")
    if top_k is not None and top_k < 1:
        raise ValueError("top_k must be >= 1")
    probabilities = np.asarray(probabilities, dtype=np.float64)
    n = probabilities.shape[0]
    if adjacency.shape[0] != n:
        raise ValueError("adjacency and probabilities disagree on node count")

    local = normalize_adjacency(adjacency, r=0.5, self_loops=True)

    if sparse:
        similarity = _topk_similarity(probabilities, top_k,
                                      block_size=block_size)
        blended = (alpha * local + (1.0 - alpha) * similarity).tocsr()
        return _finalize_sparse(blended, n)

    similarity = probabilities @ probabilities.T

    blended = alpha * local.toarray()
    blended += (1.0 - alpha) * similarity

    # Eq. 6: remove the self-affinity diagonal and rescale by the pairwise
    # "identity distance" so that no single node dominates the propagation.
    np.fill_diagonal(blended, 0.0)
    row_scale = blended.sum(axis=1, keepdims=True)
    row_scale[row_scale <= 1e-12] = 1.0
    blended /= row_scale

    # Keep a small self-loop so isolated nodes still propagate their own
    # signal (in-place diagonal update; no dense identity allocation).
    diag = np.arange(n)
    blended[diag, diag] += 1e-3
    blended /= blended.sum(axis=1, keepdims=True)
    return blended


class FederatedKnowledgeExtractor:
    """Runs Step 1 and exposes the per-client knowledge products.

    In our implementation the extractor is a federated GCN trained with
    FedAvg (the paper's default); any :class:`repro.fgl.FederatedGNN` model
    name can be substituted.  ``client_probabilities`` is computed once after
    Step 1 and cached — P̂ depends only on the final broadcast global model,
    so repeated calls (per-client P̃ construction, ablations, reports) reuse
    the same arrays.
    """

    def __init__(self, subgraphs: Sequence[Graph], model_name: str = "gcn",
                 hidden: int = 64,
                 config: Optional[FederatedConfig] = None):
        self.config = config or FederatedConfig()
        self.trainer = FederatedGNN(list(subgraphs), model_name=model_name,
                                    hidden=hidden, config=self.config)
        self.history: Optional[TrainingHistory] = None
        self._probabilities: Optional[List[np.ndarray]] = None

    def run(self, rounds: Optional[int] = None) -> TrainingHistory:
        """Execute the standard federated collaborative training (Alg. 1)."""
        self._probabilities = None
        self.history = self.trainer.run(rounds=rounds)
        return self.history

    @property
    def global_state(self) -> Dict[str, np.ndarray]:
        return self.trainer.global_state

    def client_probabilities(self, refresh: bool = False) -> List[np.ndarray]:
        """``P̂_i`` for every client using the final broadcast global model.

        Cached after the first call; pass ``refresh=True`` to force a
        recomputation (e.g. after manually mutating the global state).
        """
        if refresh or self._probabilities is None:
            if refresh:
                # Punch through the per-client prediction cache too, so
                # out-of-band weight mutations are picked up.
                for client in self.trainer.clients:
                    client.invalidate_cache()
            self._probabilities = [client.predict()
                                   for client in self.trainer.clients]
        return self._probabilities

    def client_graphs(self) -> List[Graph]:
        return [client.graph for client in self.trainer.clients]

    def optimized_matrices(self, alpha: float = 0.7, *, sparse: bool = False,
                           top_k: Optional[int] = None
                           ) -> List[Union[np.ndarray, sp.csr_matrix]]:
        """The optimized propagation matrix P̃ for every client (Eq. 5–6)."""
        return [
            optimized_propagation_matrix(graph.adjacency, probs, alpha=alpha,
                                         sparse=sparse, top_k=top_k)
            for graph, probs in zip(self.client_graphs(),
                                    self.client_probabilities())
        ]

"""Step 1 of AdaFGL: the federated knowledge extractor and topology optimisation.

The federated knowledge extractor is the global model aggregated in the final
round of standard federated collaborative training (Sec. III-B).  Each client
then uses its local predictions ``P̂ = f(X, A, W^{T+1})`` to build the corrected
probability propagation matrix

``P = α A + (1 − α) P̂ P̂ᵀ``                               (Eq. 5)

followed by the degree-style rescaling of Eq. 6 that removes self-affinity
bias and re-normalises the propagation weights.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.federated import FederatedConfig
from repro.fgl.fedgnn import FederatedGNN
from repro.graph import Graph
from repro.graph.normalize import normalize_adjacency
from repro.metrics import TrainingHistory


def optimized_propagation_matrix(adjacency: sp.spmatrix,
                                 probabilities: np.ndarray,
                                 alpha: float = 0.7) -> np.ndarray:
    """Build the federated-knowledge-guided propagation matrix P̃ (Eq. 5–6).

    Parameters
    ----------
    adjacency:
        Local subgraph adjacency (unnormalised, no self-loops).
    probabilities:
        Class-probability matrix ``P̂`` produced by the federated knowledge
        extractor on the local nodes, shape ``(n, num_classes)``.
    alpha:
        Topology-optimisation coefficient: 1.0 keeps the original topology,
        0.0 relies entirely on prediction similarity.

    Returns
    -------
    A dense, row-normalised ``(n, n)`` propagation matrix.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    probabilities = np.asarray(probabilities, dtype=np.float64)
    n = probabilities.shape[0]
    if adjacency.shape[0] != n:
        raise ValueError("adjacency and probabilities disagree on node count")

    local = normalize_adjacency(adjacency, r=0.5, self_loops=True).toarray()
    similarity = probabilities @ probabilities.T

    blended = alpha * local + (1.0 - alpha) * similarity

    # Eq. 6: remove the self-affinity diagonal and rescale by the pairwise
    # "identity distance" so that no single node dominates the propagation.
    diagonal = np.diag(blended).copy()
    corrected = blended - np.diag(diagonal)
    row_scale = corrected.sum(axis=1, keepdims=True)
    row_scale[row_scale <= 1e-12] = 1.0
    corrected = corrected / row_scale

    # Keep a small self-loop so isolated nodes still propagate their own signal.
    corrected += np.eye(n) * 1e-3
    corrected /= corrected.sum(axis=1, keepdims=True)
    return corrected


class FederatedKnowledgeExtractor:
    """Runs Step 1 and exposes the per-client knowledge products.

    In our implementation the extractor is a federated GCN trained with
    FedAvg (the paper's default); any :class:`repro.fgl.FederatedGNN` model
    name can be substituted.
    """

    def __init__(self, subgraphs: Sequence[Graph], model_name: str = "gcn",
                 hidden: int = 64,
                 config: Optional[FederatedConfig] = None):
        self.config = config or FederatedConfig()
        self.trainer = FederatedGNN(list(subgraphs), model_name=model_name,
                                    hidden=hidden, config=self.config)
        self.history: Optional[TrainingHistory] = None

    def run(self, rounds: Optional[int] = None) -> TrainingHistory:
        """Execute the standard federated collaborative training (Alg. 1)."""
        self.history = self.trainer.run(rounds=rounds)
        return self.history

    @property
    def global_state(self) -> Dict[str, np.ndarray]:
        return self.trainer.global_state

    def client_probabilities(self) -> List[np.ndarray]:
        """``P̂_i`` for every client using the final broadcast global model."""
        return [client.predict() for client in self.trainer.clients]

    def client_graphs(self) -> List[Graph]:
        return [client.graph for client in self.trainer.clients]

    def optimized_matrices(self, alpha: float = 0.7) -> List[np.ndarray]:
        """The optimized propagation matrix P̃ for every client (Eq. 5–6)."""
        return [
            optimized_propagation_matrix(client.graph.adjacency,
                                         client.predict(), alpha=alpha)
            for client in self.trainer.clients
        ]

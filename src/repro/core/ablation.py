"""Ablation configurations for Tables VI and VII."""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.core.adafgl import AdaFGLConfig

#: Maps the paper's ablation row names to the config field they disable.
ABLATION_COMPONENTS: Dict[str, str] = {
    "w/o K.P.": "use_knowledge_preserving",
    "w/o T.F.": "use_topology_independent",
    "w/o L.M.": "use_learnable_message",
    "w/o L.T.": "use_local_topology",
    "w/o HCS": "use_hcs",
}


def ablation_variants(base: AdaFGLConfig) -> Dict[str, AdaFGLConfig]:
    """Return the full model plus every single-component ablation.

    Keys follow the paper's row labels ("w/o K.P.", ..., "AdaFGL").
    """
    variants: Dict[str, AdaFGLConfig] = {}
    for label, flag in ABLATION_COMPONENTS.items():
        variants[label] = dataclasses.replace(base, **{flag: False})
    variants["AdaFGL"] = dataclasses.replace(base)
    return variants

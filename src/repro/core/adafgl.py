"""The AdaFGL trainer: Step 1 + Step 2 orchestration (Alg. 1 and Alg. 2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import Tensor, functional as F, no_grad
from repro.core.hcs import homophily_confidence_score
from repro.core.knowledge import (
    FederatedKnowledgeExtractor,
    optimized_propagation_matrix,
)
from repro.core.modules import AdaFGLClientModel
from repro.federated import FederatedConfig
from repro.graph import Graph, edge_homophily
from repro.graph.normalize import normalize_adjacency
from repro.metrics import ClientReport, TrainingHistory, masked_accuracy
from repro.optim import Adam, clip_grad_norm


@dataclass
class AdaFGLConfig:
    """All hyperparameters of the two-step AdaFGL paradigm.

    The ``use_*`` switches correspond to the ablation components of
    Tables VI and VII:

    * ``use_knowledge_preserving`` — K.P. (Eq. 8);
    * ``use_topology_independent`` — T.F. (Eq. 10);
    * ``use_learnable_message`` — L.M. (Eq. 11–12);
    * ``use_local_topology`` — L.T. (Eq. 5–6, replaced by the raw normalised
      adjacency when disabled);
    * ``use_hcs`` — the adaptive combination (Eq. 17, replaced by a fixed
      0.5/0.5 mixture when disabled).
    """

    # Step 1: federated collaborative training.
    rounds: int = 20
    local_epochs: int = 3
    lr: float = 0.01
    weight_decay: float = 5e-4
    hidden: int = 64
    extractor_model: str = "gcn"
    participation: float = 1.0

    # Step 2: personalized propagation.
    personalized_epochs: int = 30
    personalized_lr: float = 0.01
    alpha: float = 0.7
    beta: float = 0.7
    k_prop: int = 3
    message_layers: int = 2
    dropout: float = 0.3
    knowledge_weight: float = 0.1

    # HCS / label propagation.
    lp_steps: int = 5
    lp_kappa: float = 0.5
    mask_probability: float = 0.5

    # Ablation switches.
    use_knowledge_preserving: bool = True
    use_topology_independent: bool = True
    use_learnable_message: bool = True
    use_local_topology: bool = True
    use_hcs: bool = True

    seed: int = 0

    def federated_config(self) -> FederatedConfig:
        return FederatedConfig(
            rounds=self.rounds, local_epochs=self.local_epochs, lr=self.lr,
            weight_decay=self.weight_decay, participation=self.participation,
            seed=self.seed)


class PersonalizedClient:
    """Step-2 state of one client: local model, P̃, P̂ and HCS."""

    def __init__(self, client_id: int, graph: Graph,
                 extractor_probs: np.ndarray, config: AdaFGLConfig):
        self.client_id = client_id
        self.graph = graph
        self.config = config
        self.extractor_probs = np.asarray(extractor_probs)

        if config.use_local_topology:
            self.propagation = optimized_propagation_matrix(
                graph.adjacency, self.extractor_probs, alpha=config.alpha)
        else:
            self.propagation = normalize_adjacency(
                graph.adjacency, r=0.5, self_loops=True).toarray()

        if config.use_hcs:
            self.hcs = homophily_confidence_score(
                graph, k=config.lp_steps, kappa=config.lp_kappa,
                mask_probability=config.mask_probability,
                seed=config.seed + client_id)
        else:
            self.hcs = 0.5

        self.model = AdaFGLClientModel(
            in_features=graph.num_features, hidden=config.hidden,
            num_classes=graph.num_classes, k_prop=config.k_prop,
            message_layers=config.message_layers, beta=config.beta,
            dropout=config.dropout, seed=config.seed + client_id,
            use_topology_independent=config.use_topology_independent,
            use_learnable_message=config.use_learnable_message)
        self.optimizer = Adam(self.model.parameters(),
                              lr=config.personalized_lr,
                              weight_decay=config.weight_decay)

    # ------------------------------------------------------------------
    def _combined_log_probs(self, outputs: Dict[str, Tensor]) -> Tensor:
        combined = outputs["combined"]
        return (combined + 1e-9).log()

    def train_epoch(self) -> float:
        """One epoch of personalized training (Eq. 14).

        The supervised term is applied to the HCS-combined output and, with
        the same HCS weighting, to each propagation module's own output
        (deep supervision).  The per-module terms markedly speed up local
        convergence on the small subgraphs used in this reproduction without
        changing which module dominates the final prediction.
        """
        self.model.train()
        self.optimizer.zero_grad()
        outputs = self.model(self.graph.features, self.propagation,
                             self.extractor_probs, self.hcs)
        log_probs = self._combined_log_probs(outputs)
        loss = F.nll_loss(log_probs, self.graph.labels,
                          mask=self.graph.train_mask)
        labels, mask = self.graph.labels, self.graph.train_mask
        loss = loss + F.nll_loss((outputs["homophilous"] + 1e-9).log(),
                                 labels, mask=mask) * self.hcs
        loss = loss + F.nll_loss((outputs["heterophilous"] + 1e-9).log(),
                                 labels, mask=mask) * (1.0 - self.hcs)
        if self.config.use_knowledge_preserving:
            knowledge_soft = F.softmax(outputs["knowledge"], axis=-1)
            knowledge_loss = F.frobenius_loss(knowledge_soft,
                                              self.extractor_probs)
            loss = loss + knowledge_loss * self.config.knowledge_weight
        loss.backward()
        clip_grad_norm(self.model.parameters(), 5.0)
        self.optimizer.step()
        return loss.item()

    def predict(self) -> np.ndarray:
        """Final combined probability predictions (Eq. 17)."""
        self.model.eval()
        with no_grad():
            outputs = self.model(self.graph.features, self.propagation,
                                 self.extractor_probs, self.hcs)
            probs = outputs["combined"].numpy()
        self.model.train()
        return probs

    def evaluate(self, split: str = "test") -> float:
        mask = getattr(self.graph, f"{split}_mask")
        if mask.sum() == 0:
            return 0.0
        return masked_accuracy(self.predict(), self.graph.labels, mask)


class AdaFGL:
    """The complete AdaFGL paradigm over a set of client subgraphs.

    Usage::

        clients = structure_noniid_split(graph, num_clients=10)
        method = AdaFGL(clients, AdaFGLConfig(rounds=20))
        history = method.run()
        print(method.evaluate("test"))
    """

    name = "AdaFGL"

    def __init__(self, subgraphs: Sequence[Graph],
                 config: Optional[AdaFGLConfig] = None):
        self.config = config or AdaFGLConfig()
        self.subgraphs = list(subgraphs)
        if not self.subgraphs:
            raise ValueError("AdaFGL requires at least one client subgraph")
        self.extractor = FederatedKnowledgeExtractor(
            self.subgraphs, model_name=self.config.extractor_model,
            hidden=self.config.hidden, config=self.config.federated_config())
        self.tracker = self.extractor.trainer.tracker
        self.history = TrainingHistory()
        self.personalized: List[PersonalizedClient] = []
        self.step1_history: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------
    # Orchestration
    # ------------------------------------------------------------------
    def run_step1(self, rounds: Optional[int] = None) -> TrainingHistory:
        """Federated collaborative training to obtain the knowledge extractor."""
        self.step1_history = self.extractor.run(rounds=rounds)
        return self.step1_history

    def run_step2(self, epochs: Optional[int] = None) -> TrainingHistory:
        """Personalized propagation on every client (Alg. 2)."""
        if self.step1_history is None:
            raise RuntimeError("run_step1 must be executed before run_step2")
        epochs = epochs if epochs is not None else self.config.personalized_epochs

        probabilities = self.extractor.client_probabilities()
        self.personalized = [
            PersonalizedClient(index, graph, probs, self.config)
            for index, (graph, probs) in enumerate(
                zip(self.extractor.client_graphs(), probabilities))
        ]

        offset = self.step1_history.rounds[-1] if self.step1_history.rounds else 0
        for epoch in range(1, epochs + 1):
            losses = [client.train_epoch() for client in self.personalized]
            if epoch % max(1, epochs // 10) == 0 or epoch == epochs:
                train_acc = self.evaluate("train")
                test_acc = self.evaluate("test")
                per_client = {c.client_id: c.evaluate("test")
                              for c in self.personalized}
                self.history.record(offset + epoch, train_acc, test_acc,
                                    float(np.mean(losses)), per_client)
        return self.history

    def run(self, rounds: Optional[int] = None,
            epochs: Optional[int] = None) -> TrainingHistory:
        """Full pipeline: Step 1 followed by Step 2."""
        self.run_step1(rounds=rounds)
        self.run_step2(epochs=epochs)
        return self.history

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, split: str = "test") -> float:
        """Test-node-weighted accuracy across clients.

        Falls back to the Step-1 federated model if Step 2 has not run yet.
        """
        if not self.personalized:
            return self.extractor.trainer.evaluate(split)
        total, weight = 0.0, 0
        for client in self.personalized:
            mask = getattr(client.graph, f"{split}_mask")
            count = int(mask.sum())
            if count == 0:
                continue
            total += client.evaluate(split) * count
            weight += count
        return total / weight if weight else 0.0

    def client_reports(self, split: str = "test") -> List[ClientReport]:
        """Per-client accuracy and homophily breakdown."""
        source = self.personalized or self.extractor.trainer.clients
        reports = []
        for client in source:
            mask = getattr(client.graph, f"{split}_mask")
            reports.append(ClientReport(
                client_id=client.client_id,
                num_nodes=client.graph.num_nodes,
                num_test_nodes=int(mask.sum()),
                accuracy=client.evaluate(split),
                homophily=edge_homophily(client.graph.adjacency,
                                         client.graph.labels)))
        return reports

    def client_hcs(self) -> Dict[int, float]:
        """Per-client Homophily Confidence Score (Fig. 7)."""
        if not self.personalized:
            raise RuntimeError("Step 2 has not been run yet")
        return {client.client_id: client.hcs for client in self.personalized}

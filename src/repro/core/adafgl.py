"""The AdaFGL trainer: Step 1 + Step 2 orchestration (Alg. 1 and Alg. 2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd import Tensor, functional as F, no_grad, use_backend
from repro.core.hcs import homophily_confidence_score
from repro.core.knowledge import (
    FederatedKnowledgeExtractor,
    optimized_propagation_matrix,
)
from repro.core.modules import AdaFGLClientModel
from repro.core.propagation import PropagationCache
from repro.federated import FederatedConfig, ProcessPoolBackend
from repro.graph import Graph, edge_homophily
from repro.graph.normalize import normalize_adjacency
from repro.metrics import ClientReport, TrainingHistory, masked_accuracy
from repro.optim import Adam, clip_grad_norm


@dataclass
class AdaFGLConfig:
    """All hyperparameters of the two-step AdaFGL paradigm.

    The ``use_*`` switches correspond to the ablation components of
    Tables VI and VII:

    * ``use_knowledge_preserving`` — K.P. (Eq. 8);
    * ``use_topology_independent`` — T.F. (Eq. 10);
    * ``use_learnable_message`` — L.M. (Eq. 11–12);
    * ``use_local_topology`` — L.T. (Eq. 5–6, replaced by the raw normalised
      adjacency when disabled);
    * ``use_hcs`` — the adaptive combination (Eq. 17, replaced by a fixed
      0.5/0.5 mixture when disabled).
    """

    # Step 1: federated collaborative training.
    rounds: int = 20
    local_epochs: int = 3
    lr: float = 0.01
    weight_decay: float = 5e-4
    hidden: int = 64
    extractor_model: str = "gcn"
    participation: float = 1.0

    # Step 2: personalized propagation.
    personalized_epochs: int = 30
    personalized_lr: float = 0.01
    alpha: float = 0.7
    beta: float = 0.7
    k_prop: int = 3
    message_layers: int = 2
    dropout: float = 0.3
    knowledge_weight: float = 0.1

    # Sparse-first propagation engine.  ``sparse_propagation`` keeps P̃ in CSR
    # form with only the ``propagation_top_k`` strongest similarity entries
    # per row (Eq. 5); ``"auto"`` (the default) reads the per-dataset value
    # the dataset registry stamped into ``graph.metadata`` (picked off the
    # BENCH_topk.json accuracy-vs-k curve) and falls back to 32 — an explicit
    # integer (or ``None`` for the exact keep-every-entry sparse path) always
    # wins over the registry default.  ``use_propagation_cache`` precomputes
    # the constant k-hop feature blocks once per client; ``num_workers > 1``
    # trains the (embarrassingly parallel) Step-2 clients in the persistent
    # worker pool — shared with Step-1 local training, whose execution
    # backend auto-promotes to ``process_pool`` unless ``step1_backend`` pins
    # one explicitly.
    sparse_propagation: bool = False
    propagation_top_k: Union[int, None, str] = "auto"
    use_propagation_cache: bool = True
    num_workers: int = 0
    intra_worker: str = "auto"

    # Federation-engine knobs for Step 1 (see repro.federated.engine):
    # ``step1_backend`` is an execution-backend name ("serial" /
    # "process_pool" / "batched"); None auto-selects "process_pool" when
    # ``num_workers > 1``.  ``step1_aggregation`` names the server-side
    # aggregation strategy ("fedavg" / "topology_weighted" / "trimmed_mean"
    # / the FedOpt family).  ``round_mode`` selects the process pool's round
    # discipline — "sync" pipelined-but-exact rounds (default) or "async"
    # bounded-staleness rounds sealed after ``async_buffer`` shard reports
    # with staleness capped at ``staleness_cap`` — and ``delta_codec`` its
    # upload transport ("bitdelta" lossless / "topk" lossy keeping
    # ``delta_top_k`` entries per parameter with error feedback / "qtopk"
    # additionally quantising kept entries to ``delta_bits`` bits).
    # ``worker_speeds`` simulates heterogeneous worker hardware (straggler
    # benchmarks, deterministic async runs).  Step 2 rides the same
    # (pipelined) pool, so these knobs shape both steps' execution.
    step1_backend: Optional[str] = None
    step1_aggregation: str = "fedavg"
    round_mode: str = "sync"
    #: Step-1 workers act as edge aggregators (one fixed-point partial per
    #: shard per round); sync process-pool rounds only.
    hierarchical: bool = False
    async_buffer: int = 1
    staleness_cap: int = 3
    delta_codec: str = "bitdelta"
    delta_top_k: int = 32
    delta_bits: int = 8
    worker_speeds: Optional[Sequence[float]] = None
    #: coordinator↔worker channel of the pool both steps share: ``"pipe"``
    #: (default) or ``"tcp"`` (framed sockets with CRC/heartbeats/reconnect;
    #: ``transport_options`` carries the TCP knobs / WAN link spec).
    transport: str = "pipe"
    transport_options: Optional[Dict] = None

    # Fault tolerance (see FederatedConfig / the README's fault-tolerance
    # section): crash policy, round deadline, checkpoint cadence/location,
    # resume source and the deterministic chaos plan for testing.
    on_worker_failure: str = "fail"
    round_timeout: Optional[float] = None
    checkpoint_every: int = 0
    checkpoint_dir: str = "checkpoints"
    resume_from: Optional[str] = None
    fault_plan: Optional[object] = None

    #: array backend both steps' local math runs under (``numpy`` — the
    #: bitwise reference — or ``jit``); ``None`` inherits the process
    #: default.  Travels in the worker payloads, so pool-trained Step-2
    #: clients select it identically.
    array_backend: Optional[str] = None

    # HCS / label propagation.
    lp_steps: int = 5
    lp_kappa: float = 0.5
    mask_probability: float = 0.5

    # Ablation switches.
    use_knowledge_preserving: bool = True
    use_topology_independent: bool = True
    use_learnable_message: bool = True
    use_local_topology: bool = True
    use_hcs: bool = True

    seed: int = 0

    def federated_config(self) -> FederatedConfig:
        backend = self.step1_backend
        if backend is None:
            backend = "process_pool" if self.num_workers > 1 else "serial"
        return FederatedConfig(
            rounds=self.rounds, local_epochs=self.local_epochs, lr=self.lr,
            weight_decay=self.weight_decay, participation=self.participation,
            seed=self.seed, backend=backend, num_workers=self.num_workers,
            intra_worker=self.intra_worker,
            hierarchical=self.hierarchical,
            aggregation=self.step1_aggregation,
            round_mode=self.round_mode, async_buffer=self.async_buffer,
            staleness_cap=self.staleness_cap, delta_codec=self.delta_codec,
            delta_top_k=self.delta_top_k, delta_bits=self.delta_bits,
            worker_speeds=self.worker_speeds,
            transport=self.transport,
            transport_options=self.transport_options,
            on_worker_failure=self.on_worker_failure,
            round_timeout=self.round_timeout,
            checkpoint_every=self.checkpoint_every,
            checkpoint_dir=self.checkpoint_dir,
            resume_from=self.resume_from,
            fault_plan=self.fault_plan,
            array_backend=self.array_backend)


#: fallback sparsity when neither the config nor the dataset registry pins one
DEFAULT_PROPAGATION_TOP_K = 32


def resolve_propagation_top_k(config: AdaFGLConfig,
                              graph: Optional[Graph] = None
                              ) -> Optional[int]:
    """Effective ``top_k`` for a client graph (Eq. 5 sparsification).

    Precedence: an explicit config value (an ``int``, or ``None`` meaning
    keep every off-diagonal entry) beats the per-dataset registry default
    stamped into ``graph.metadata["propagation_top_k"]`` by
    :func:`repro.datasets.load_dataset`, which beats
    :data:`DEFAULT_PROPAGATION_TOP_K`.
    """
    top_k = config.propagation_top_k
    if isinstance(top_k, str):
        if top_k != "auto":
            raise ValueError(
                f"propagation_top_k must be an int, None or 'auto', "
                f"got {top_k!r}")
        registry_default = None
        if graph is not None:
            registry_default = graph.metadata.get("propagation_top_k")
        if registry_default is None:
            return DEFAULT_PROPAGATION_TOP_K
        return int(registry_default)
    return top_k


class PersonalizedClient:
    """Step-2 state of one client: local model, P̃, P̂ and HCS."""

    def __init__(self, client_id: int, graph: Graph,
                 extractor_probs: np.ndarray, config: AdaFGLConfig,
                 *, propagation=None, hcs: Optional[float] = None):
        self.client_id = client_id
        self.graph = graph
        self.config = config
        self.extractor_probs = np.asarray(extractor_probs)
        self.prop_cache = None

        # ``propagation`` / ``hcs`` may be supplied precomputed (e.g. shipped
        # back from a Step-2 worker process) to skip the expensive setup.
        if propagation is not None:
            self.propagation = propagation
        elif config.use_local_topology:
            self.propagation = optimized_propagation_matrix(
                graph.adjacency, self.extractor_probs, alpha=config.alpha,
                sparse=config.sparse_propagation,
                top_k=(resolve_propagation_top_k(config, graph)
                       if config.sparse_propagation else None))
        else:
            normalised = normalize_adjacency(graph.adjacency, r=0.5,
                                             self_loops=True)
            self.propagation = (normalised if config.sparse_propagation
                                else normalised.toarray())
        if config.use_propagation_cache:
            self.prop_cache = PropagationCache(self.propagation,
                                               graph.features)

        if hcs is not None:
            self.hcs = hcs
        elif config.use_hcs:
            self.hcs = homophily_confidence_score(
                graph, k=config.lp_steps, kappa=config.lp_kappa,
                mask_probability=config.mask_probability,
                seed=config.seed + client_id)
        else:
            self.hcs = 0.5

        with use_backend(config.array_backend):
            self.model = AdaFGLClientModel(
                in_features=graph.num_features, hidden=config.hidden,
                num_classes=graph.num_classes, k_prop=config.k_prop,
                message_layers=config.message_layers, beta=config.beta,
                dropout=config.dropout, seed=config.seed + client_id,
                use_topology_independent=config.use_topology_independent,
                use_learnable_message=config.use_learnable_message)
        self.optimizer = Adam(self.model.parameters(),
                              lr=config.personalized_lr,
                              weight_decay=config.weight_decay)

    # ------------------------------------------------------------------
    @property
    def propagation(self):
        return self._propagation

    @propagation.setter
    def propagation(self, value) -> None:
        """Reassigning P̃ keeps the precompute cache in sync (invalidated)."""
        self._propagation = value
        if self.prop_cache is not None:
            self.prop_cache.propagation = value

    # ------------------------------------------------------------------
    def _combined_log_probs(self, outputs: Dict[str, Tensor]) -> Tensor:
        combined = outputs["combined"]
        return (combined + 1e-9).log()

    def train_epoch(self) -> float:
        """One epoch of personalized training (Eq. 14).

        The supervised term is applied to the HCS-combined output and, with
        the same HCS weighting, to each propagation module's own output
        (deep supervision).  The per-module terms markedly speed up local
        convergence on the small subgraphs used in this reproduction without
        changing which module dominates the final prediction.
        """
        self.model.train()
        self.optimizer.zero_grad()
        with use_backend(self.config.array_backend):
            outputs = self.model(self.graph.features, self.propagation,
                                 self.extractor_probs, self.hcs,
                                 cache=self.prop_cache)
            log_probs = self._combined_log_probs(outputs)
            loss = F.nll_loss(log_probs, self.graph.labels,
                              mask=self.graph.train_mask)
            labels, mask = self.graph.labels, self.graph.train_mask
            loss = loss + F.nll_loss((outputs["homophilous"] + 1e-9).log(),
                                     labels, mask=mask) * self.hcs
            loss = loss + F.nll_loss((outputs["heterophilous"] + 1e-9).log(),
                                     labels, mask=mask) * (1.0 - self.hcs)
            if self.config.use_knowledge_preserving:
                knowledge_soft = F.softmax(outputs["knowledge"], axis=-1)
                knowledge_loss = F.frobenius_loss(knowledge_soft,
                                                  self.extractor_probs)
                loss = loss + knowledge_loss * self.config.knowledge_weight
            loss.backward()
            clip_grad_norm(self.model.parameters(), 5.0)
            self.optimizer.step()
        return loss.item()

    def predict(self) -> np.ndarray:
        """Final combined probability predictions (Eq. 17)."""
        self.model.eval()
        with no_grad(), use_backend(self.config.array_backend):
            outputs = self.model(self.graph.features, self.propagation,
                                 self.extractor_probs, self.hcs,
                                 cache=self.prop_cache)
            probs = outputs["combined"].numpy()
        self.model.train()
        return probs

    def evaluate(self, split: str = "test") -> float:
        mask = getattr(self.graph, f"{split}_mask")
        if mask.sum() == 0:
            return 0.0
        return masked_accuracy(self.predict(), self.graph.labels, mask)


def _train_personalized_client(payload: Tuple) -> Tuple:
    """Process-pool worker: train one Step-2 client end to end.

    Clients are embarrassingly parallel — no state is exchanged during
    personalized training — so each worker builds its client from the same
    (graph, P̂, config) triple the serial path uses, runs every epoch, and
    ships back the trained weights plus the per-epoch losses and the metrics
    needed to reconstruct the aggregate training history.
    """
    client_id, graph, extractor_probs, config, epochs, checkpoints = payload
    client = PersonalizedClient(client_id, graph, extractor_probs, config)
    checkpoint_set = set(checkpoints)
    losses: List[float] = []
    metrics: Dict[int, Dict[str, float]] = {}
    for epoch in range(1, epochs + 1):
        losses.append(client.train_epoch())
        if epoch in checkpoint_set:
            metrics[epoch] = {"train": client.evaluate("train"),
                              "test": client.evaluate("test")}
    counts = {split: int(getattr(graph, f"{split}_mask").sum())
              for split in ("train", "test")}
    return (client_id, client.model.state_dict(), losses, metrics, counts,
            client.propagation, client.hcs)


def _step2_worker_job(residents: Dict, payload: Tuple) -> Tuple:
    """Persistent-pool entry point for one Step-2 client.

    Runs inside a worker's command loop (see
    :mod:`repro.federated.engine.persistent`): when the worker already holds
    the client's Step-1 :class:`~repro.federated.client.Client` resident, the
    subgraph is taken from it instead of being shipped again — only P̂ and
    the config cross the process boundary, and the
    :class:`~repro.core.propagation.PropagationCache` blocks are built once
    in the owning worker.
    """
    client_id, graph, extractor_probs, config, epochs, checkpoints = payload
    if graph is None:
        graph = residents[client_id].graph
    return _train_personalized_client(
        (client_id, graph, extractor_probs, config, epochs, checkpoints))


class AdaFGL:
    """The complete AdaFGL paradigm over a set of client subgraphs.

    Usage::

        clients = structure_noniid_split(graph, num_clients=10)
        method = AdaFGL(clients, AdaFGLConfig(rounds=20))
        history = method.run()
        print(method.evaluate("test"))
    """

    name = "AdaFGL"

    def __init__(self, subgraphs: Sequence[Graph],
                 config: Optional[AdaFGLConfig] = None):
        self.config = config or AdaFGLConfig()
        self.subgraphs = list(subgraphs)
        if not self.subgraphs:
            raise ValueError("AdaFGL requires at least one client subgraph")
        self.extractor = FederatedKnowledgeExtractor(
            self.subgraphs, model_name=self.config.extractor_model,
            hidden=self.config.hidden, config=self.config.federated_config())
        self.tracker = self.extractor.trainer.tracker
        self.history = TrainingHistory()
        self.personalized: List[PersonalizedClient] = []
        self.step1_history: Optional[TrainingHistory] = None
        self._in_context = False
        if self.config.num_workers > 1:
            # Step 2 rides the same persistent worker pool as Step 1 (worker-
            # resident subgraphs are reused), so the trainer must not tear it
            # down when run_step1 returns; the pipeline end (run_step2 /
            # __exit__ / close) releases it instead.
            self.extractor.trainer.close_backend_after_run = False

    # ------------------------------------------------------------------
    # Resource management
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the backend worker pool (idempotent).

        Needed explicitly only when Step 1 ran with ``num_workers > 1`` and
        Step 2 is never executed; ``run`` / ``run_step2`` and the context-
        manager protocol release the pool on their own.
        """
        self.extractor.trainer.close()

    def __enter__(self) -> "AdaFGL":
        self._in_context = True
        return self

    def __exit__(self, exc_type, exc_value, exc_traceback) -> None:
        self._in_context = False
        self.close()

    # ------------------------------------------------------------------
    # Orchestration
    # ------------------------------------------------------------------
    def run_step1(self, rounds: Optional[int] = None) -> TrainingHistory:
        """Federated collaborative training to obtain the knowledge extractor."""
        self.step1_history = self.extractor.run(rounds=rounds)
        return self.step1_history

    def run_step2(self, epochs: Optional[int] = None) -> TrainingHistory:
        """Personalized propagation on every client (Alg. 2).

        With ``config.num_workers > 1`` the clients — which never exchange
        state during Step 2 — are trained concurrently in a process pool;
        the recorded history is reconstructed from per-worker metrics and
        matches the serial schedule checkpoint for checkpoint.
        """
        if self.step1_history is None:
            raise RuntimeError("run_step1 must be executed before run_step2")
        epochs = epochs if epochs is not None else self.config.personalized_epochs
        try:
            return self._run_step2(epochs)
        finally:
            # Step 2 is the pipeline end: outside a ``with`` block the worker
            # pool is released here (and on any mid-run failure), so plain
            # ``AdaFGL(...).run()`` never leaks worker processes.
            if not self._in_context:
                self.close()

    def _run_step2(self, epochs: int) -> TrainingHistory:
        probabilities = self.extractor.client_probabilities()
        graphs = self.extractor.client_graphs()
        offset = self.step1_history.rounds[-1] if self.step1_history.rounds else 0
        checkpoints = [epoch for epoch in range(1, epochs + 1)
                       if epoch % max(1, epochs // 10) == 0 or epoch == epochs]

        if self.config.num_workers > 1 and len(graphs) > 1:
            self._run_step2_parallel(graphs, probabilities, epochs,
                                     checkpoints, offset)
            return self.history

        self.personalized = [
            PersonalizedClient(index, graph, probs, self.config)
            for index, (graph, probs) in enumerate(zip(graphs, probabilities))
        ]
        for epoch in range(1, epochs + 1):
            losses = [client.train_epoch() for client in self.personalized]
            if epoch in set(checkpoints):
                train_acc = self.evaluate("train")
                test_acc = self.evaluate("test")
                per_client = {c.client_id: c.evaluate("test")
                              for c in self.personalized}
                self.history.record(offset + epoch, train_acc, test_acc,
                                    float(np.mean(losses)), per_client)
        return self.history

    def _run_step2_parallel(self, graphs: Sequence[Graph],
                            probabilities: Sequence[np.ndarray], epochs: int,
                            checkpoints: List[int], offset: int) -> None:
        """Train every Step-2 client on the persistent pool, merge results.

        Reuses the Step-1 :class:`~repro.federated.ProcessPoolBackend` when
        the extractor trained on one — each worker already holds its shard's
        subgraphs resident, so only P̂ and the config are shipped down — and
        spins up a dedicated pool otherwise (released before returning).
        """
        backend = self.extractor.trainer.backend
        owned = not isinstance(backend, ProcessPoolBackend)
        if owned:
            backend = ProcessPoolBackend(
                min(self.config.num_workers, len(graphs)),
                intra_worker=self.config.intra_worker)
        try:
            results = self._dispatch_step2_jobs(backend, graphs,
                                                probabilities, epochs,
                                                checkpoints)
        finally:
            if owned:
                backend.close()

        # Rebuild in-process clients carrying the trained weights so that
        # evaluate() / client_reports() / client_hcs() work exactly as after
        # a serial run; P̃ and HCS come back from the workers so their
        # expensive setup is not paid twice.
        self.personalized = []
        self._merge_step2_results(results, graphs, probabilities,
                                  checkpoints, offset)

    def _dispatch_step2_jobs(self, backend: ProcessPoolBackend,
                             graphs: Sequence[Graph],
                             probabilities: Sequence[np.ndarray], epochs: int,
                             checkpoints: List[int]) -> List[Tuple]:
        """Fan Step-2 jobs out over the workers; collect in client-id order.

        Clients whose Step-1 counterpart is resident in a worker are routed
        to that worker with ``graph=None`` (the resident subgraph is reused);
        everyone else is sharded deterministically by ``cid % workers``.
        """
        pool = backend.ensure_pool()
        alive = pool.alive_workers
        per_worker: Dict[int, List[Tuple[str, object]]] = {}
        for cid in range(len(graphs)):
            owner = backend.owner_of(cid)
            resident = owner is not None
            if not resident:
                # Shard over the *alive* slots only — a Step-1 crash under
                # the redistribute policy may have retired some workers.
                owner = alive[cid % len(alive)]
            payload = (cid, None if resident else graphs[cid],
                       probabilities[cid], self.config, epochs, checkpoints)
            per_worker.setdefault(owner, []).append(
                ("call", (_step2_worker_job, (payload,))))
        # run_batches keeps one job in flight per worker: Step-2 payloads
        # and replies (graphs, P̃ matrices) are far larger than a pipe
        # buffer, so naive queue-everything dispatch can deadlock.
        results: Dict[int, Tuple] = {}
        for batch in pool.run_batches(per_worker).values():
            for result in batch:
                results[result[0]] = result
        return [results[cid] for cid in range(len(graphs))]

    def _merge_step2_results(self, results: List[Tuple],
                             graphs: Sequence[Graph],
                             probabilities: Sequence[np.ndarray],
                             checkpoints: List[int], offset: int) -> None:
        all_losses: Dict[int, List[float]] = {}
        all_metrics: Dict[int, Dict[int, Dict[str, float]]] = {}
        all_counts: Dict[int, Dict[str, int]] = {}
        for client_id, state, losses, metrics, counts, prop, hcs in results:
            client = PersonalizedClient(client_id, graphs[client_id],
                                        probabilities[client_id], self.config,
                                        propagation=prop, hcs=hcs)
            client.model.load_state_dict(state)
            self.personalized.append(client)
            all_losses[client_id] = losses
            all_metrics[client_id] = metrics
            all_counts[client_id] = counts

        for epoch in checkpoints:
            accuracy = {}
            for split in ("train", "test"):
                total = sum(all_metrics[cid][epoch][split]
                            * all_counts[cid][split]
                            for cid in all_metrics
                            if all_counts[cid][split] > 0)
                weight = sum(all_counts[cid][split] for cid in all_metrics
                             if all_counts[cid][split] > 0)
                accuracy[split] = total / weight if weight else 0.0
            per_client = {cid: all_metrics[cid][epoch]["test"]
                          for cid in sorted(all_metrics)}
            mean_loss = float(np.mean([all_losses[cid][epoch - 1]
                                       for cid in sorted(all_losses)]))
            self.history.record(offset + epoch, accuracy["train"],
                                accuracy["test"], mean_loss, per_client)

    def run(self, rounds: Optional[int] = None,
            epochs: Optional[int] = None) -> TrainingHistory:
        """Full pipeline: Step 1 followed by Step 2."""
        self.run_step1(rounds=rounds)
        self.run_step2(epochs=epochs)
        return self.history

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, split: str = "test") -> float:
        """Test-node-weighted accuracy across clients.

        Falls back to the Step-1 federated model if Step 2 has not run yet.
        """
        if not self.personalized:
            return self.extractor.trainer.evaluate(split)
        total, weight = 0.0, 0
        for client in self.personalized:
            mask = getattr(client.graph, f"{split}_mask")
            count = int(mask.sum())
            if count == 0:
                continue
            total += client.evaluate(split) * count
            weight += count
        return total / weight if weight else 0.0

    def client_reports(self, split: str = "test") -> List[ClientReport]:
        """Per-client accuracy and homophily breakdown."""
        source = self.personalized or self.extractor.trainer.clients
        reports = []
        for client in source:
            mask = getattr(client.graph, f"{split}_mask")
            reports.append(ClientReport(
                client_id=client.client_id,
                num_nodes=client.graph.num_nodes,
                num_test_nodes=int(mask.sum()),
                accuracy=client.evaluate(split),
                homophily=edge_homophily(client.graph.adjacency,
                                         client.graph.labels)))
        return reports

    def client_hcs(self) -> Dict[int, float]:
        """Per-client Homophily Confidence Score (Fig. 7)."""
        if not self.personalized:
            raise RuntimeError("Step 2 has not been run yet")
        return {client.client_id: client.hcs for client in self.personalized}

"""AdaFGL: the paper's decoupled two-step personalized FGL paradigm.

Step 1 (:mod:`repro.core.knowledge`) — standard federated collaborative
training produces the *federated knowledge extractor*; each client uses it to
build an optimized probability propagation matrix (Eq. 5–6).

Step 2 (:mod:`repro.core.modules`, :mod:`repro.core.adafgl`) — each client
trains a personalized model combining a homophilous propagation module, a
heterophilous propagation module and the Homophily Confidence Score
(:mod:`repro.core.hcs`) that adaptively mixes their outputs (Eq. 7–17).
"""

from repro.core.adafgl import (
    AdaFGL,
    AdaFGLConfig,
    DEFAULT_PROPAGATION_TOP_K,
    resolve_propagation_top_k,
)
from repro.core.knowledge import (
    FederatedKnowledgeExtractor,
    optimized_propagation_matrix,
)
from repro.core.hcs import homophily_confidence_score, label_propagation
from repro.core.modules import AdaFGLClientModel
from repro.core.propagation import PropagationCache
from repro.core.ablation import ablation_variants

__all__ = [
    "AdaFGL",
    "AdaFGLConfig",
    "DEFAULT_PROPAGATION_TOP_K",
    "resolve_propagation_top_k",
    "FederatedKnowledgeExtractor",
    "optimized_propagation_matrix",
    "PropagationCache",
    "homophily_confidence_score",
    "label_propagation",
    "AdaFGLClientModel",
    "ablation_variants",
]

"""Non-parametric label propagation and the Homophily Confidence Score.

The HCS (Definition 2) estimates how homophilous a client's subgraph is
without requiring full label knowledge: mask half the training labels, run
K-step non-parametric label propagation (Eq. 15) from the remaining labels and
measure the accuracy on the masked nodes.  High accuracy means propagation
along the topology is trustworthy (homophily); low accuracy means it is not
(heterophily).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph import Graph
from repro.graph.normalize import normalize_adjacency


def label_propagation(adjacency: sp.spmatrix, labels: np.ndarray,
                      labeled_mask: np.ndarray, num_classes: int,
                      k: int = 5, kappa: float = 0.5) -> np.ndarray:
    """K-step non-parametric label propagation (Eq. 15).

    Labeled nodes start from their one-hot label; unlabeled nodes start from
    the uniform distribution.  Each step mixes the initial beliefs with the
    symmetric-normalised neighbourhood average using the personalised
    PageRank-style teleport ``kappa``.

    Returns the final ``(n, num_classes)`` belief matrix.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not 0.0 <= kappa <= 1.0:
        raise ValueError("kappa must be in [0, 1]")
    labels = np.asarray(labels)
    labeled_mask = np.asarray(labeled_mask, dtype=bool)
    n = labels.shape[0]

    initial = np.full((n, num_classes), 1.0 / num_classes)
    idx = np.nonzero(labeled_mask)[0]
    initial[idx] = 0.0
    initial[idx, labels[idx]] = 1.0

    propagation = normalize_adjacency(adjacency, r=0.5, self_loops=False)
    beliefs = initial.copy()
    for _ in range(k):
        beliefs = kappa * initial + (1.0 - kappa) * (propagation @ beliefs)
        # Clamp the labelled nodes back to their known labels.
        beliefs[idx] = initial[idx]
    return beliefs


def homophily_confidence_score(graph: Graph, k: int = 5, kappa: float = 0.5,
                               mask_probability: float = 0.5,
                               seed: int = 0,
                               return_beliefs: bool = False
                               ) -> float | Tuple[float, np.ndarray]:
    """Homophily Confidence Score of a client subgraph (Eq. 16).

    The score is the label-propagation accuracy on a randomly masked half of
    the training nodes.  It requires no learning and is computed entirely from
    the local subgraph.
    """
    if not 0.0 < mask_probability < 1.0:
        raise ValueError("mask_probability must be in (0, 1)")
    rng = np.random.default_rng(seed)
    train_nodes = graph.train_indices()
    if train_nodes.size < 2:
        score = 0.5
        if return_beliefs:
            beliefs = label_propagation(
                graph.adjacency, graph.labels, graph.train_mask,
                graph.num_classes, k=k, kappa=kappa)
            return score, beliefs
        return score

    masked = rng.random(train_nodes.size) < mask_probability
    if masked.all():
        masked[rng.integers(0, masked.size)] = False
    if not masked.any():
        masked[rng.integers(0, masked.size)] = True
    masked_nodes = train_nodes[masked]
    visible_mask = np.zeros(graph.num_nodes, dtype=bool)
    visible_mask[train_nodes[~masked]] = True

    beliefs = label_propagation(graph.adjacency, graph.labels, visible_mask,
                                graph.num_classes, k=k, kappa=kappa)
    predictions = beliefs[masked_nodes].argmax(axis=1)
    score = float(np.mean(predictions == graph.labels[masked_nodes]))
    if return_beliefs:
        return score, beliefs
    return score

"""Online serving: frozen snapshots, micro-batched queries, load tooling.

Layered as the serving PR describes:

* :mod:`repro.serving.snapshot` — :class:`ServingSnapshot`, an immutable
  export of a trained federation (from a live trainer, a finished AdaFGL
  run, or a checkpoint file) with transductive answers precomputed;
* :mod:`repro.serving.engine` — :class:`QueryEngine`, an admission queue
  with adaptive micro-batching over the snapshot (transductive table reads,
  fused batched inductive forwards, subgraph LRU, array-backend knob);
* :mod:`repro.serving.loadgen` — open-loop Poisson load generation and
  latency reporting shared by ``repro.cli serve`` and
  ``benchmarks/bench_serving.py``.
"""

from repro.serving.engine import (
    AdmissionRejected,
    InductiveQuery,
    QueryEngine,
    QueryResult,
    SubgraphLRU,
    TransductiveQuery,
)
from repro.serving.loadgen import LoadReport, build_query_mix, run_open_loop
from repro.serving.snapshot import ClientEntry, ServingSnapshot
from repro.serving.subgraph import (
    SubgraphBlock,
    extract_block,
    khop_nodes,
    receptive_depth,
)

__all__ = [
    "AdmissionRejected",
    "ClientEntry",
    "InductiveQuery",
    "LoadReport",
    "QueryEngine",
    "QueryResult",
    "ServingSnapshot",
    "SubgraphBlock",
    "SubgraphLRU",
    "TransductiveQuery",
    "build_query_mix",
    "extract_block",
    "khop_nodes",
    "receptive_depth",
    "run_open_loop",
]

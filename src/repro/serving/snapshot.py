"""Frozen serving snapshots: immutable model + prediction state for queries.

Training ends with state scattered across live objects (clients, server,
worker pools); serving wants the opposite — one immutable artifact that
answers queries without touching any of them.  :class:`ServingSnapshot`
freezes:

* the global model state and every client's personalized ``state_dict``;
* each client's graph and its CSR propagation blocks (a lazily-warmed
  :class:`~repro.core.propagation.PropagationCache` per client, the constant
  ``[P̃X, …, P̃ᵏX]`` stack any decoupled-model consumer needs);
* per-client **transductive probability tables**, precomputed once per
  snapshot via the fused eval sweep (:func:`~repro.federated.engine.batched.
  build_eval_plan`) so a steady-state transductive lookup is an O(1) array
  read;
* a deep-copied model per client for inductive (new-node) queries —
  ``None`` for families whose forward is not graph-model shaped (AdaFGL
  Step-2 entries are transductive-only).

Snapshots come from three places: a live :class:`~repro.federated.trainer.
FederatedTrainer` (:meth:`ServingSnapshot.from_trainer`), a finished
:class:`~repro.core.AdaFGL` run (:meth:`ServingSnapshot.from_adafgl`), or a
PR-6 checkpoint file on disk (:meth:`ServingSnapshot.from_checkpoint`, which
accepts ``"latest"`` through the same resolution helper trainer resume
uses).  ``save``/``load`` round-trip the whole artifact through an atomic
pickle, so an exported snapshot can be served by a process that never saw
training.
"""

from __future__ import annotations

import copy
import os
import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.propagation import PropagationCache
from repro.models.base import prepare_propagation

SNAPSHOT_FORMAT = 1


def _reset_model_caches(model) -> None:
    """Drop id-keyed operator caches on a copied or unpickled model.

    ``GraphModel._prop_cache`` and GAMLP's ``_hop_cache`` key on object
    ids from the process that built them; on a deep copy or a fresh
    unpickle those ids are meaningless and could collide with unrelated
    objects, so the caches restart empty (recomputation is deterministic —
    values are bitwise-unchanged).
    """
    for attribute in ("_prop_cache", "_hop_cache"):
        if hasattr(model, attribute):
            setattr(model, attribute, {})


@dataclass
class ClientEntry:
    """One client's frozen serving state.

    ``probs`` is the transductive answer table ``(num_nodes, num_classes)``;
    ``state`` the personalized weights actually broadcast to this client;
    ``model`` a deep-copied frozen model for inductive queries (``None``
    marks a transductive-only entry).  ``graph`` is shared by reference
    with the training-side object — graphs are immutable by repo
    convention.
    """

    client_id: int
    graph: object
    state: Dict[str, np.ndarray]
    probs: np.ndarray
    model: Optional[object] = None
    _prop: Optional[PropagationCache] = field(
        default=None, repr=False, compare=False)

    @property
    def propagation(self) -> PropagationCache:
        """Frozen CSR propagation blocks over this client's graph.

        Lazily builds a :class:`PropagationCache` on the symmetric-
        normalized operator, so constant k-hop feature blocks are computed
        at most once per snapshot however many consumers ask.
        """
        if self._prop is None:
            self._prop = PropagationCache(
                prepare_propagation(self.graph.adjacency),
                self.graph.features)
        return self._prop


class ServingSnapshot:
    """An immutable, queryable export of a federated training run."""

    def __init__(self, entries: Sequence[ClientEntry], *,
                 global_state: Optional[Dict[str, np.ndarray]] = None,
                 source: str = "trainer", round_index: int = 0,
                 model_family: Optional[str] = None,
                 array_backend: Optional[str] = None):
        self.format = SNAPSHOT_FORMAT
        self.entries: Dict[int, ClientEntry] = {
            entry.client_id: entry for entry in entries}
        self.global_state = global_state
        self.source = source
        self.round_index = int(round_index)
        self.model_family = model_family
        self.array_backend = array_backend

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def client_ids(self) -> List[int]:
        return sorted(self.entries)

    @property
    def num_clients(self) -> int:
        return len(self.entries)

    @property
    def inductive_capable(self) -> bool:
        """Whether every entry carries a model for new-node queries."""
        return bool(self.entries) and all(
            entry.model is not None for entry in self.entries.values())

    def entry(self, client_id: int) -> ClientEntry:
        try:
            return self.entries[client_id]
        except KeyError:
            raise KeyError(
                f"snapshot has no client {client_id} "
                f"(known: {self.client_ids})") from None

    # ------------------------------------------------------------------
    # Direct (engine-less) query helpers
    # ------------------------------------------------------------------
    def transductive(self, client_id: int, node_id: int) -> np.ndarray:
        """O(1) probability row for one seen node (treat as read-only)."""
        entry = self.entry(client_id)
        node = int(node_id)
        if not 0 <= node < entry.probs.shape[0]:
            raise IndexError(
                f"node {node} out of range for client {client_id} "
                f"({entry.probs.shape[0]} nodes)")
        return entry.probs[node]

    def hop_blocks(self, client_id: int, k: int) -> List[np.ndarray]:
        """Constant ``[P̃X, …, P̃ᵏX]`` blocks for one client (cached)."""
        return [block.numpy()
                for block in self.entry(client_id).propagation.blocks(k)]

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def from_clients(cls, clients: Sequence, *,
                     global_state: Optional[Dict[str, np.ndarray]] = None,
                     source: str = "trainer",
                     round_index: int = 0) -> "ServingSnapshot":
        """Freeze a set of live :class:`~repro.federated.client.Client`s.

        Transductive tables are filled by one fused eval sweep when the
        model family supports it (``build_eval_plan`` + ``refresh`` prime
        every client's prediction cache, so the per-client ``predict()``
        below is an array read); unsupported families fall back to one
        serial forward per client — bitwise the same numbers either way.
        """
        from repro.federated.engine.batched import build_eval_plan

        clients = list(clients)
        if not clients:
            raise ValueError("cannot snapshot an empty client set")
        states = [client.get_weights() for client in clients]
        plan = build_eval_plan(clients)
        if plan is not None:
            plan.refresh(states)
        entries = []
        for client, state in zip(clients, states):
            model = copy.deepcopy(client.model)
            _reset_model_caches(model)
            model.eval()
            entries.append(ClientEntry(
                client_id=client.client_id, graph=client.graph,
                state=state, probs=np.array(client.predict(), copy=True),
                model=model))
        return cls(entries,
                   global_state=copy.deepcopy(global_state),
                   source=source, round_index=round_index,
                   model_family=type(clients[0].model).__name__,
                   array_backend=clients[0].array_backend)

    @classmethod
    def from_trainer(cls, trainer) -> "ServingSnapshot":
        """Freeze a live (typically just-trained) federated trainer."""
        return cls.from_clients(
            trainer.clients,
            global_state=trainer.server.global_state,
            source="trainer",
            round_index=getattr(trainer.server, "round", 0))

    @classmethod
    def from_adafgl(cls, method) -> "ServingSnapshot":
        """Freeze a finished AdaFGL run.

        After Step 2 each :class:`~repro.core.adafgl.PersonalizedClient`
        holds the paper's final predictor (personalized propagation +
        Step-2 model combined in :meth:`predict`); those combined
        probabilities become the transductive tables.  The Step-2 forward
        is bound to the client's optimized propagation matrix, so AdaFGL
        entries are transductive-only (``model=None``).  Before Step 2 has
        run, the Step-1 knowledge extractor is snapshotted instead.
        """
        if getattr(method, "personalized", None):
            trainer = method.extractor.trainer
            entries = [
                ClientEntry(client_id=pc.client_id, graph=pc.graph,
                            state=pc.model.state_dict(),
                            probs=np.array(pc.predict(), copy=True))
                for pc in method.personalized]
            return cls(entries,
                       global_state=copy.deepcopy(
                           trainer.server.global_state),
                       source="adafgl",
                       round_index=getattr(trainer.server, "round", 0),
                       model_family="AdaFGL",
                       array_backend=getattr(method.config,
                                             "array_backend", None))
        return cls.from_trainer(method.extractor.trainer)

    @classmethod
    def from_checkpoint(cls, path: str, subgraphs: Sequence,
                        model_factory: Callable, *,
                        checkpoint_dir: str = "checkpoints",
                        array_backend: Optional[str] = None,
                        lr: float = 0.01,
                        weight_decay: float = 5e-4) -> "ServingSnapshot":
        """Freeze a PR-6 checkpoint file without replaying training.

        ``path`` may be ``"latest"`` (resolved in ``checkpoint_dir``
        through the same helper trainer resume uses), ``subgraphs`` the
        client graphs in client-id order and ``model_factory`` a
        ``graph -> Module`` callable matching the checkpointed
        architecture (e.g. :func:`repro.fgl.make_model_factory`).
        """
        from repro.autograd import use_backend
        from repro.federated.client import Client
        from repro.federated.trainer import resolve_checkpoint_path

        resolved = resolve_checkpoint_path(path, checkpoint_dir)
        with open(resolved, "rb") as handle:
            payload = pickle.load(handle)
        version = payload.get("format")
        if version != 1:
            raise ValueError(
                f"unsupported checkpoint format {version!r} in {resolved}")
        with use_backend(array_backend):
            clients = [Client(index, graph, model_factory(graph), lr=lr,
                              weight_decay=weight_decay,
                              array_backend=array_backend)
                       for index, graph in enumerate(subgraphs)]
        snapshots = payload["clients"]
        known = {client.client_id for client in clients}
        if set(snapshots) != known:
            raise ValueError(
                f"checkpoint {resolved} covers clients "
                f"{sorted(snapshots)}, caller supplied {sorted(known)}")
        for client in clients:
            client.load_state(snapshots[client.client_id])
        return cls.from_clients(
            clients,
            global_state=payload["server"]["global_state"],
            source="checkpoint", round_index=payload["round"])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Atomically pickle the snapshot; returns ``path``."""
        payload = {
            "format": self.format,
            "entries": [ClientEntry(client_id=entry.client_id,
                                    graph=entry.graph, state=entry.state,
                                    probs=entry.probs, model=entry.model)
                        for entry in self.entries.values()],
            "global_state": self.global_state,
            "source": self.source,
            "round": self.round_index,
            "model_family": self.model_family,
            "array_backend": self.array_backend,
        }
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        temp = f"{path}.tmp"
        with open(temp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp, path)
        return path

    @classmethod
    def load(cls, path: str) -> "ServingSnapshot":
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        version = payload.get("format")
        if version != SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported snapshot format {version!r} in {path}")
        for entry in payload["entries"]:
            if entry.model is not None:
                _reset_model_caches(entry.model)
        return cls(payload["entries"],
                   global_state=payload["global_state"],
                   source=payload["source"],
                   round_index=payload["round"],
                   model_family=payload["model_family"],
                   array_backend=payload["array_backend"])

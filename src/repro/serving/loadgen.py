"""Open-loop load generation and latency accounting for the query engine.

Serving systems are measured under *open-loop* load: arrivals follow a
Poisson process at a configured rate regardless of how fast the server
answers, so queueing delay shows up in the tail instead of being hidden by
a closed feedback loop.  :func:`run_open_loop` schedules seeded exponential
inter-arrivals, submits each query at its scheduled instant (catching up
without dropping when the generator itself falls behind), and measures
latency from the *scheduled* arrival to completion — backlog counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.serving.engine import (
    AdmissionRejected,
    InductiveQuery,
    Query,
    TransductiveQuery,
)


@dataclass
class LoadReport:
    """Aggregate latency/throughput statistics of one open-loop run."""

    queries: int
    offered_qps: float
    achieved_qps: float
    duration_s: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    batches: int
    mean_batch: float
    triggers: Dict[str, int] = field(default_factory=dict)
    paths: Dict[str, int] = field(default_factory=dict)
    #: queries the bounded admission queue fast-failed (overload shedding);
    #: they never entered the engine, so they carry no latency sample
    rejected: int = 0

    def as_dict(self) -> Dict:
        from dataclasses import asdict

        return asdict(self)


def build_query_mix(snapshot, count: int, *, inductive_fraction: float = 0.0,
                    seed: int = 0, anchors_per_query: int = 2,
                    feature_noise: float = 0.1) -> List[Query]:
    """A seeded query stream over the snapshot's clients.

    Transductive queries pick a uniform (client, node); inductive queries
    pick ``anchors_per_query`` distinct anchor nodes and perturb an
    existing node's features with Gaussian noise, approximating a new node
    of the same population.  ``inductive_fraction`` is clamped to zero for
    transductive-only snapshots.
    """
    rng = np.random.default_rng(seed)
    ids = snapshot.client_ids
    if not ids:
        raise ValueError("snapshot has no clients to query")
    if not snapshot.inductive_capable:
        inductive_fraction = 0.0
    queries: List[Query] = []
    for _ in range(int(count)):
        client_id = ids[int(rng.integers(len(ids)))]
        entry = snapshot.entry(client_id)
        nodes = entry.graph.num_nodes
        if rng.random() < inductive_fraction:
            anchors = rng.choice(nodes, size=min(anchors_per_query, nodes),
                                 replace=False)
            base = np.asarray(entry.graph.features)[int(anchors[0])]
            features = base + feature_noise * rng.standard_normal(base.shape)
            queries.append(InductiveQuery(client_id, features, anchors))
        else:
            queries.append(TransductiveQuery(client_id,
                                             int(rng.integers(nodes))))
    return queries


def run_open_loop(engine, queries: Sequence[Query], rate: float, *,
                  seed: int = 0, timeout: float = 120.0) -> LoadReport:
    """Drive ``queries`` through ``engine`` at ``rate`` Poisson arrivals/s."""
    if rate <= 0:
        raise ValueError("arrival rate must be > 0 queries/sec")
    queries = list(queries)
    if not queries:
        raise ValueError("nothing to submit")
    rng = np.random.default_rng(seed)
    offsets = np.cumsum(rng.exponential(1.0 / rate, size=len(queries)))
    log_start = len(engine.batch_log)
    start = time.perf_counter()
    pending = []
    rejected = 0
    for query, offset in zip(queries, offsets):
        target = start + float(offset)
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        try:
            pending.append((target, engine.submit(query)))
        except AdmissionRejected:
            rejected += 1
    if not pending:
        raise RuntimeError(
            f"the admission queue rejected all {rejected} submissions")
    results = [(target, future.result(timeout=timeout))
               for target, future in pending]
    end = max(result.completed for _, result in results)
    duration = max(end - start, 1e-9)
    latencies_ms = np.array([(result.completed - target) * 1000.0
                             for target, result in results])
    batches = engine.batch_log[log_start:]
    triggers: Dict[str, int] = {}
    for record in batches:
        triggers[record["trigger"]] = triggers.get(record["trigger"], 0) + 1
    paths: Dict[str, int] = {}
    for _, result in results:
        paths[result.path] = paths.get(result.path, 0) + 1
    return LoadReport(
        queries=len(results),
        offered_qps=float(rate),
        achieved_qps=len(results) / duration,
        duration_s=duration,
        p50_ms=float(np.percentile(latencies_ms, 50)),
        p99_ms=float(np.percentile(latencies_ms, 99)),
        mean_ms=float(latencies_ms.mean()),
        max_ms=float(latencies_ms.max()),
        batches=len(batches),
        mean_batch=(sum(r["size"] for r in batches) / len(batches)
                    if batches else 0.0),
        triggers=triggers,
        paths=paths,
        rejected=rejected)

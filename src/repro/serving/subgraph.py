"""k-hop receptive-field extraction for inductive serving queries.

An inductive query presents a node the snapshot has never seen: a feature
vector plus the ids of the existing local nodes it attaches to (its
*anchors*).  Answering it only needs the new node's receptive field — the
anchors and ``depth - 1`` hops around them, since the new node itself sits
one hop from its anchors — so the engine extracts that induced subgraph,
appends the new node last with symmetric unit edges to each anchor, and runs
the frozen model over the augmented block.  The model's own
``prepare_propagation`` then renormalizes the augmented adjacency, exactly
as it would for any client subgraph: an inductive answer is *defined* as
the model's forward over the extracted augmented subgraph, consistent with
the repo-wide convention that every client already computes on an induced
subgraph of some larger graph.

Extraction is structure-only (node set, augmented adjacency, base feature
slice); the query's feature vector is appended per query, so one extracted
block serves every query sharing ``(client, anchors)`` — that is what the
engine's LRU caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.models.gamlp import GAMLP
from repro.models.gcn import GCN, SGC
from repro.models.gcnii import GCNII
from repro.models.ggcn import GGCN
from repro.models.gprgnn import GPRGNN


def receptive_depth(model) -> Optional[int]:
    """How many hops of structure one node's prediction can see.

    ``None`` means unbounded/unknown (e.g. GloGNN's global low-rank
    aggregation attends over every node pair): callers must keep the whole
    client graph.
    """
    if isinstance(model, (SGC, GAMLP, GPRGNN)):
        return int(model.k)
    if isinstance(model, (GCN, GGCN)):
        return len(model._layer_names)
    if isinstance(model, GCNII):
        return int(model.num_layers)
    return None


def khop_nodes(adjacency, seeds: Sequence[int], depth: int) -> np.ndarray:
    """Sorted node ids within ``depth`` hops of ``seeds`` (seeds included)."""
    adjacency = sp.csr_matrix(adjacency)
    visited = np.unique(np.asarray(seeds, dtype=np.int64))
    frontier = visited
    for _ in range(int(depth)):
        if frontier.size == 0:
            break
        neighbours = adjacency[frontier].indices
        fresh = np.setdiff1d(neighbours, visited)
        if fresh.size == 0:
            break
        visited = np.union1d(visited, fresh)
        frontier = fresh
    return visited


@dataclass(frozen=True)
class SubgraphBlock:
    """Structure-only extraction for one ``(client, anchors)`` pair.

    ``nodes`` are the base-graph ids inside the receptive field (sorted
    ascending); ``adjacency`` is the augmented CSR over ``len(nodes) + 1``
    nodes with the new node appended at position ``new_index == len(nodes)``
    and linked to each anchor in both directions; ``features`` is the base
    feature slice for ``nodes`` (the new node's row is appended per query).
    """

    nodes: np.ndarray
    adjacency: sp.csr_matrix
    features: np.ndarray
    new_index: int


def extract_block(graph, anchors: Sequence[int],
                  depth: Optional[int]) -> SubgraphBlock:
    """Extract the augmented receptive-field block for one anchor set.

    ``depth`` is the model's receptive depth (``None`` keeps the whole
    graph); the block spans ``depth - 1`` hops around the anchors because
    the new node adds the remaining hop.
    """
    anchors = np.unique(np.asarray(anchors, dtype=np.int64))
    if anchors.size == 0:
        raise ValueError("an inductive query needs at least one anchor node")
    if anchors[0] < 0 or anchors[-1] >= graph.num_nodes:
        raise ValueError(
            f"anchor ids {anchors.tolist()} out of range for a graph of "
            f"{graph.num_nodes} nodes")
    if depth is None:
        nodes = np.arange(graph.num_nodes, dtype=np.int64)
    else:
        nodes = khop_nodes(graph.adjacency, anchors, max(int(depth) - 1, 0))
    base = sp.csr_matrix(graph.adjacency)[nodes][:, nodes].tocoo()
    size = int(nodes.size)
    anchor_positions = np.searchsorted(nodes, anchors)
    rows = np.concatenate([base.row, anchor_positions,
                           np.full(anchors.size, size, dtype=np.int64)])
    cols = np.concatenate([base.col,
                           np.full(anchors.size, size, dtype=np.int64),
                           anchor_positions])
    data = np.concatenate([base.data, np.ones(2 * anchors.size)])
    adjacency = sp.csr_matrix((data, (rows, cols)), shape=(size + 1, size + 1))
    features = np.asarray(graph.features)[nodes]
    return SubgraphBlock(nodes=nodes, adjacency=adjacency,
                         features=features, new_index=size)

"""Micro-batched query engine over a frozen :class:`ServingSnapshot`.

Queries enter an admission queue and a single worker thread drains it with
**adaptive micro-batching**: a batch flushes when it reaches ``max_batch``
queries or when ``max_delay_ms`` has elapsed since its first query was
admitted, whichever comes first (plus a final flush on ``close``).  Under
backlog the worker drains whatever is already queued without waiting, so
batches fill up exactly when batching pays.

Routing inside a flush:

* **transductive** queries read the snapshot's precomputed probability
  table — an O(1) array lookup, no model math on the hot path;
* **inductive** (new-node) queries extract the anchor set's receptive-field
  block (:mod:`repro.serving.subgraph`), append the query's feature row, and
  run the frozen client model over the augmented subgraph.  Two or more
  inductive queries in one flush ride the **fused batched plan path**
  (:func:`~repro.federated.engine.batched.build_eval_plan` over per-query
  pseudo-clients — one block-diagonal sparse propagation for the whole
  flush); a lone query runs the serial forward.  Both paths evaluate the
  same tensor expressions, so fused and serial answers are bitwise equal.

Extracted blocks are structure-only and cached in a deterministic LRU keyed
by ``(client_id, anchors)``; the ``array_backend`` knob (numpy / jit)
selects the kernel set every forward runs under.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd import Tensor, functional as F, no_grad, resolve_backend, use_backend
from repro.serving.snapshot import ServingSnapshot
from repro.serving.subgraph import SubgraphBlock, extract_block, receptive_depth


@dataclass(frozen=True)
class TransductiveQuery:
    """Predict a node the snapshot has already seen."""

    client_id: int
    node_id: int


@dataclass(frozen=True)
class InductiveQuery:
    """Predict a new node attaching to ``anchors`` of a client's graph."""

    client_id: int
    features: np.ndarray
    anchors: Tuple[int, ...]

    def __init__(self, client_id: int, features: np.ndarray,
                 anchors: Sequence[int]):
        object.__setattr__(self, "client_id", int(client_id))
        object.__setattr__(self, "features",
                           np.asarray(features, dtype=np.float64))
        object.__setattr__(self, "anchors",
                           tuple(int(a) for a in anchors))


Query = Union[TransductiveQuery, InductiveQuery]


@dataclass
class QueryResult:
    """One served prediction plus how it was produced."""

    probs: np.ndarray
    label: int
    #: "table" (transductive O(1) read), "fused" (batched inductive plan)
    #: or "serial" (single inductive forward).
    path: str
    batch_size: int
    trigger: str
    arrival: float
    completed: float

    @property
    def latency(self) -> float:
        """Seconds from admission to completion (queueing + compute)."""
        return self.completed - self.arrival


class SubgraphLRU:
    """Deterministic LRU over extracted subgraph blocks.

    Eviction order is pure access order (an :class:`OrderedDict`), so a
    replayed query sequence always evicts the same keys — asserted by the
    serving tests.  Hit/miss/eviction counters are exposed for the bench
    harness.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._blocks: "OrderedDict[Tuple, SubgraphBlock]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Tuple, build: Callable[[], SubgraphBlock]
            ) -> SubgraphBlock:
        block = self._blocks.get(key)
        if block is not None:
            self.hits += 1
            self._blocks.move_to_end(key)
            return block
        self.misses += 1
        block = build()
        self._blocks[key] = block
        if len(self._blocks) > self.capacity:
            self._blocks.popitem(last=False)
            self.evictions += 1
        return block

    def keys(self) -> List[Tuple]:
        """Current keys, least- to most-recently used."""
        return list(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)


@dataclass
class _Pending:
    query: Query
    future: Future = field(default_factory=Future)
    arrival: float = field(default_factory=time.perf_counter)


_CLOSE = object()


class AdmissionRejected(RuntimeError):
    """The engine's bounded admission queue is full (fast-fail shedding).

    Raised by :meth:`QueryEngine.submit` when ``max_queue`` queries are
    already waiting: under open-loop overload, rejecting at the door keeps
    the latency of admitted queries bounded instead of letting the queue —
    and every subsequent response time — grow without limit."""


class QueryEngine:
    """Admission queue + micro-batching worker over a frozen snapshot.

    ``max_queue`` bounds the admission queue: ``0`` (default) admits every
    query, a positive bound sheds overload by raising
    :class:`AdmissionRejected` from :meth:`submit` once that many queries
    are waiting (rejections are counted in :attr:`rejected`).
    """

    def __init__(self, snapshot: ServingSnapshot, *, max_batch: int = 32,
                 max_delay_ms: float = 2.0,
                 array_backend: Optional[str] = None,
                 cache_size: int = 128, max_queue: int = 0):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0 (0 = unbounded)")
        self.snapshot = snapshot
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay_ms) / 1000.0
        self.max_queue = int(max_queue)
        self._backend = resolve_backend(
            array_backend if array_backend is not None
            else snapshot.array_backend)
        self.cache = SubgraphLRU(cache_size)
        self.batch_log: List[Dict] = []
        self.served = 0
        #: queries fast-failed at the admission door (queue overflow)
        self.rejected = 0
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.max_queue)
        self._closed = False
        self._worker = threading.Thread(target=self._loop,
                                        name="repro-serving-worker",
                                        daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def array_backend(self) -> str:
        return self._backend.name

    def submit(self, query: Query) -> Future:
        """Admit one query; resolves to a :class:`QueryResult`."""
        if self._closed:
            raise RuntimeError("QueryEngine is closed")
        pending = _Pending(query)
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            self.rejected += 1
            raise AdmissionRejected(
                f"admission queue full ({self.max_queue} queries waiting); "
                "query rejected") from None
        return pending.future

    def query(self, query: Query, timeout: Optional[float] = 60.0
              ) -> QueryResult:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(query).result(timeout=timeout)

    def close(self) -> None:
        """Flush the queue and stop the worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_CLOSE)
        self._worker.join()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker loop: adaptive micro-batching
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            first = self._queue.get()
            if first is _CLOSE:
                return
            batch = [first]
            trigger = "size"
            deadline = first.arrival + self.max_delay
            closing = False
            while len(batch) < self.max_batch:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        trigger = "deadline"
                        break
                    try:
                        item = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        trigger = "deadline"
                        break
                if item is _CLOSE:
                    trigger = "close"
                    closing = True
                    break
                batch.append(item)
            self._execute(batch, trigger)
            if closing:
                return

    def _execute(self, batch: List[_Pending], trigger: str) -> None:
        self.batch_log.append({"size": len(batch), "trigger": trigger})
        try:
            self._answer(batch, trigger)
        except BaseException as error:   # defensive: never wedge callers
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(error)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def _answer(self, batch: List[_Pending], trigger: str) -> None:
        inductive = [item for item in batch
                     if isinstance(item.query, InductiveQuery)]
        for item in batch:
            if isinstance(item.query, TransductiveQuery):
                self._finish_transductive(item, len(batch), trigger)
        if not inductive:
            return
        with use_backend(self._backend):
            if len(inductive) >= 2:
                fused = self._fused_inductive(inductive)
                if fused is not None:
                    for item, probs in zip(inductive, fused):
                        self._finish(item, probs, "fused", len(batch),
                                     trigger)
                    return
            for item in inductive:
                try:
                    probs = self._serial_inductive(item.query)
                except Exception as error:
                    item.future.set_exception(error)
                else:
                    self._finish(item, probs, "serial", len(batch), trigger)

    def _finish_transductive(self, item: _Pending, batch_size: int,
                             trigger: str) -> None:
        try:
            probs = self.snapshot.transductive(item.query.client_id,
                                               item.query.node_id)
        except Exception as error:
            item.future.set_exception(error)
        else:
            self._finish(item, probs, "table", batch_size, trigger)

    def _finish(self, item: _Pending, probs: np.ndarray, path: str,
                batch_size: int, trigger: str) -> None:
        self.served += 1
        item.future.set_result(QueryResult(
            probs=probs, label=int(np.argmax(probs)), path=path,
            batch_size=batch_size, trigger=trigger, arrival=item.arrival,
            completed=time.perf_counter()))

    # ------------------------------------------------------------------
    # Inductive paths
    # ------------------------------------------------------------------
    def _entry_model(self, client_id: int):
        entry = self.snapshot.entry(client_id)
        if entry.model is None:
            raise ValueError(
                f"snapshot entry {client_id} is transductive-only "
                f"(family {self.snapshot.model_family}): inductive "
                f"queries are unsupported")
        return entry

    def _block(self, query: InductiveQuery) -> SubgraphBlock:
        entry = self._entry_model(query.client_id)
        depth = receptive_depth(entry.model)
        key = (query.client_id, tuple(sorted(set(query.anchors))))
        return self.cache.get(
            key, lambda: extract_block(entry.graph, query.anchors, depth))

    def _augmented_features(self, query: InductiveQuery,
                            block: SubgraphBlock) -> np.ndarray:
        features = query.features.reshape(1, -1)
        if features.shape[1] != block.features.shape[1]:
            raise ValueError(
                f"inductive query carries {features.shape[1]} features, "
                f"client graph has {block.features.shape[1]}")
        return np.concatenate([block.features, features], axis=0)

    def _fused_inductive(self, items: List[_Pending]
                         ) -> Optional[List[np.ndarray]]:
        """All inductive answers of one flush via a single fused plan.

        Every query becomes a pseudo-client whose "graph" is its augmented
        receptive-field block; :func:`build_eval_plan` stacks them into one
        block-diagonal propagation, exactly like federated evaluation
        stacks real clients.  Block rows are independent, so the fused
        answers are bitwise-equal to the per-query serial forward.
        Returns ``None`` (caller falls back to serial) when the family has
        no eval plan or any query is malformed.
        """
        from repro.federated.engine.batched import (
            _softmax_rows,
            build_eval_plan,
        )

        try:
            blocks = [self._block(item.query) for item in items]
            pseudo = []
            states = []
            for item, block in zip(items, blocks):
                entry = self.snapshot.entry(item.query.client_id)
                augmented = self._augmented_features(item.query, block)
                pseudo.append(SimpleNamespace(
                    graph=SimpleNamespace(
                        num_nodes=block.new_index + 1,
                        num_features=augmented.shape[1],
                        features=augmented,
                        adjacency=block.adjacency),
                    model=entry.model,
                    array_backend=self._backend.name))
                states.append(entry.state)
        except Exception:
            return None   # per-query validation errors surface serially
        plan = build_eval_plan(pseudo)
        if plan is None:
            return None
        probs = _softmax_rows(plan._logits(states))
        return [np.array(probs[index, block.new_index], copy=True)
                for index, block in enumerate(blocks)]

    def _serial_inductive(self, query: InductiveQuery) -> np.ndarray:
        """Reference single-query forward over the augmented block."""
        entry = self._entry_model(query.client_id)
        block = self._block(query)
        augmented = self._augmented_features(query, block)
        model = entry.model
        model.eval()
        with no_grad():
            logits = model(Tensor(augmented, backend=self._backend),
                           block.adjacency)
            probs = F.softmax(logits, axis=-1).numpy()
        return np.array(probs[block.new_index], copy=True)

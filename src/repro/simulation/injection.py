"""Edge information injection for the structure Non-iid split (Sec. IV-A).

Two injection techniques are provided:

* **random-injection** — generate ``sampling_ratio * |E|`` new edges by
  randomly selecting non-connected node pairs; either homophilous
  augmentation (same-label pairs) or heterophilous perturbation
  (different-label pairs).
* **meta-injection** — a surrogate-free stand-in for Metattack: adversarially
  insert heterophilous edges within a budget of ``budget * |E|``, scoring
  candidate pairs by label disagreement, feature dissimilarity and degree
  saliency (low-degree nodes are perturbed first, as meta-gradient attacks
  tend to do).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.graph import Graph
from repro.graph.utils import adjacency_from_edges, edges_from_adjacency


def _existing_edge_set(adjacency: sp.spmatrix) -> set:
    edges = edges_from_adjacency(adjacency)
    return {(int(u), int(v)) for u, v in edges}


def _sample_pairs(labels: np.ndarray, want_same_label: bool, count: int,
                  existing: set, rng: np.random.Generator,
                  max_tries_factor: int = 30) -> list:
    """Rejection-sample ``count`` new node pairs with the requested label parity."""
    n = labels.shape[0]
    pairs = []
    tries = 0
    max_tries = max_tries_factor * max(count, 1)
    while len(pairs) < count and tries < max_tries:
        tries += 1
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in existing:
            continue
        same = labels[u] == labels[v]
        if same != want_same_label:
            continue
        existing.add(key)
        pairs.append(key)
    return pairs


def _add_edges(graph: Graph, new_edges: list) -> Graph:
    if not new_edges:
        return graph.copy()
    base = edges_from_adjacency(graph.adjacency)
    combined = np.vstack([base, np.asarray(new_edges, dtype=np.int64)])
    adjacency = adjacency_from_edges(combined, graph.num_nodes)
    out = graph.with_adjacency(adjacency)
    out.metadata["injected_edges"] = len(new_edges)
    return out


def inject_homophilous_edges(graph: Graph, sampling_ratio: float = 0.5,
                             seed: int = 0) -> Graph:
    """Random-injection in augmentation mode: add same-label edges."""
    rng = np.random.default_rng(seed)
    count = int(round(sampling_ratio * graph.num_edges))
    existing = _existing_edge_set(graph.adjacency)
    pairs = _sample_pairs(graph.labels, True, count, existing, rng)
    out = _add_edges(graph, pairs)
    out.metadata["injection"] = "homophilous"
    return out


def inject_heterophilous_edges(graph: Graph, sampling_ratio: float = 0.5,
                               seed: int = 0) -> Graph:
    """Random-injection in perturbation mode: add different-label edges."""
    rng = np.random.default_rng(seed)
    count = int(round(sampling_ratio * graph.num_edges))
    existing = _existing_edge_set(graph.adjacency)
    pairs = _sample_pairs(graph.labels, False, count, existing, rng)
    out = _add_edges(graph, pairs)
    out.metadata["injection"] = "heterophilous"
    return out


def random_injection(graph: Graph, enhance_homophily: bool,
                     sampling_ratio: float = 0.5, seed: int = 0) -> Graph:
    """Binary random-injection used by the structure Non-iid split."""
    if enhance_homophily:
        return inject_homophilous_edges(graph, sampling_ratio, seed)
    return inject_heterophilous_edges(graph, sampling_ratio, seed)


def meta_injection(graph: Graph, budget: float = 0.2, seed: int = 0,
                   candidate_factor: int = 20) -> Graph:
    """Metattack-style adversarial heterophilous injection.

    The real Metattack uses meta-gradients of a surrogate GCN to pick edge
    flips.  Its observable effect — the one the paper relies on — is the
    insertion of cross-class edges that most damage propagation.  We score
    candidate non-edges by:

    * label disagreement (mandatory),
    * feature dissimilarity of the endpoints (cosine distance), and
    * inverse endpoint degree (attacking low-degree nodes changes their
      aggregated message the most),

    and greedily insert the top ``budget * |E|`` candidates.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    rng = np.random.default_rng(seed)
    count = int(round(budget * graph.num_edges))
    if count == 0:
        out = graph.copy()
        out.metadata["injection"] = "meta"
        out.metadata["injected_edges"] = 0
        return out

    n = graph.num_nodes
    existing = _existing_edge_set(graph.adjacency)
    degrees = graph.degrees + 1.0
    features = graph.features
    norms = np.linalg.norm(features, axis=1) + 1e-12

    num_candidates = min(candidate_factor * count, 200000)
    u = rng.integers(0, n, size=num_candidates)
    v = rng.integers(0, n, size=num_candidates)
    valid = (u != v) & (graph.labels[u] != graph.labels[v])
    u, v = u[valid], v[valid]

    cosine = np.sum(features[u] * features[v], axis=1) / (norms[u] * norms[v])
    dissimilarity = 1.0 - cosine
    saliency = 1.0 / np.sqrt(degrees[u] * degrees[v])
    score = dissimilarity * saliency

    order = np.argsort(-score)
    pairs = []
    for idx in order:
        key = (int(min(u[idx], v[idx])), int(max(u[idx], v[idx])))
        if key in existing:
            continue
        existing.add(key)
        pairs.append(key)
        if len(pairs) >= count:
            break

    out = _add_edges(graph, pairs)
    out.metadata["injection"] = "meta"
    return out

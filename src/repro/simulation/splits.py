"""The two distributed-subgraph simulation strategies of the paper.

* :func:`community_split` — Louvain communities assigned to clients by the
  node-average principle; subgraph topology stays consistent with the global
  graph (the idealised setting of prior FGL work).
* :func:`structure_noniid_split` — Metis partitioning followed by per-client
  binary edge injection (homophilous or heterophilous), producing the
  topology heterogeneity the paper studies (Definition 1).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graph import Graph
from repro.partition import (
    assign_communities_to_clients,
    louvain_communities,
    metis_partition,
)
from repro.simulation.injection import meta_injection, random_injection


def _client_subgraphs(graph: Graph, assignment: List[np.ndarray]) -> List[Graph]:
    clients = []
    for client_id, nodes in enumerate(assignment):
        if nodes.size == 0:
            continue
        sub = graph.node_subgraph(nodes, name=f"{graph.name}-client{client_id}")
        sub.metadata["client_id"] = client_id
        clients.append(sub)
    return clients


def community_split(graph: Graph, num_clients: int, seed: int = 0) -> List[Graph]:
    """Community split: Louvain clustering + node-average client assignment."""
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    community = louvain_communities(graph.adjacency, seed=seed)
    assignment = assign_communities_to_clients(community, num_clients, seed=seed)
    clients = _client_subgraphs(graph, assignment)
    for client in clients:
        client.metadata["split"] = "community"
    return clients


def structure_noniid_split(graph: Graph, num_clients: int, seed: int = 0,
                           injection: str = "random",
                           sampling_ratio: float = 0.5,
                           meta_budget: float = 0.2,
                           homophily_probability: float = 0.5) -> List[Graph]:
    """Structure Non-iid split (Definition 1 of the paper).

    1. Metis partitions the global graph into ``num_clients`` subgraphs that
       are topologically consistent with the global graph.
    2. For every subgraph an independent binary selection (probability
       ``homophily_probability``) decides whether to enhance homophily or
       heterophily.
    3. Edges are injected with the chosen technique:

       * ``injection="random"`` — random-injection for both directions;
       * ``injection="meta"`` — meta-injection (heterophily only, applied to
         subgraphs selected for heterophilous perturbation; homophilous
         augmentation still uses random-injection, matching Sec. IV-A).
    """
    if injection not in ("random", "meta"):
        raise ValueError("injection must be 'random' or 'meta'")
    part = metis_partition(graph.adjacency, num_clients, seed=seed)
    assignment = [np.nonzero(part == p)[0] for p in range(num_clients)]
    clients = _client_subgraphs(graph, assignment)

    rng = np.random.default_rng(seed + 1)
    out: List[Graph] = []
    for client in clients:
        enhance_homophily = bool(rng.random() < homophily_probability)
        if injection == "random":
            injected = random_injection(
                client, enhance_homophily, sampling_ratio,
                seed=seed + client.metadata["client_id"])
        else:
            if enhance_homophily:
                injected = random_injection(
                    client, True, sampling_ratio,
                    seed=seed + client.metadata["client_id"])
            else:
                injected = meta_injection(
                    client, budget=meta_budget,
                    seed=seed + client.metadata["client_id"])
        injected.metadata.update(client.metadata)
        injected.metadata["split"] = "structure-noniid"
        injected.metadata["enhance_homophily"] = enhance_homophily
        injected.metadata["injection_technique"] = injection
        out.append(injected)
    return out

"""Sparse-setting simulators for Sec. IV-E (Fig. 10).

* feature sparsity — zero out features of a fraction of unlabeled nodes;
* edge sparsity — randomly remove a fraction of edges;
* label sparsity — reduce the fraction of labelled (training) nodes.
"""

from __future__ import annotations

import numpy as np

from repro.graph import Graph
from repro.graph.utils import adjacency_from_edges, edges_from_adjacency


def feature_sparsity(graph: Graph, missing_ratio: float, seed: int = 0) -> Graph:
    """Zero the features of ``missing_ratio`` of the unlabeled nodes."""
    if not 0.0 <= missing_ratio <= 1.0:
        raise ValueError("missing_ratio must be in [0, 1]")
    rng = np.random.default_rng(seed)
    out = graph.copy()
    unlabeled = np.nonzero(~graph.train_mask)[0]
    count = int(round(missing_ratio * unlabeled.size))
    if count:
        victims = rng.choice(unlabeled, size=count, replace=False)
        out.features[victims] = 0.0
        out.metadata["missing_features"] = victims
    return out


def edge_sparsity(graph: Graph, drop_ratio: float, seed: int = 0) -> Graph:
    """Randomly remove ``drop_ratio`` of the undirected edges."""
    if not 0.0 <= drop_ratio <= 1.0:
        raise ValueError("drop_ratio must be in [0, 1]")
    rng = np.random.default_rng(seed)
    edges = edges_from_adjacency(graph.adjacency)
    keep = rng.random(edges.shape[0]) >= drop_ratio
    adjacency = adjacency_from_edges(edges[keep], graph.num_nodes)
    out = graph.with_adjacency(adjacency)
    out.metadata["dropped_edges"] = int((~keep).sum())
    return out


def label_sparsity(graph: Graph, train_ratio: float, seed: int = 0) -> Graph:
    """Reduce the labelled training set to ``train_ratio`` of all nodes.

    The remaining original training nodes are moved to the unlabeled pool but
    keep their membership in the test mask untouched.
    """
    if not 0.0 < train_ratio <= 1.0:
        raise ValueError("train_ratio must be in (0, 1]")
    rng = np.random.default_rng(seed)
    out = graph.copy()
    train_nodes = graph.train_indices()
    target = max(1, int(round(train_ratio * graph.num_nodes)))
    if target >= train_nodes.size:
        return out
    keep = rng.choice(train_nodes, size=target, replace=False)
    new_mask = np.zeros(graph.num_nodes, dtype=bool)
    new_mask[keep] = True
    out.train_mask = new_mask
    out.metadata["label_sparsity"] = train_ratio
    return out

"""Distributed-subgraph simulation strategies (Sec. II & IV of the paper)."""

from repro.simulation.splits import community_split, structure_noniid_split
from repro.simulation.injection import (
    random_injection,
    meta_injection,
    inject_homophilous_edges,
    inject_heterophilous_edges,
)
from repro.simulation.sparsity import (
    feature_sparsity,
    edge_sparsity,
    label_sparsity,
)

__all__ = [
    "community_split",
    "structure_noniid_split",
    "random_injection",
    "meta_injection",
    "inject_homophilous_edges",
    "inject_heterophilous_edges",
    "feature_sparsity",
    "edge_sparsity",
    "label_sparsity",
]

"""GAMLP (Zhang et al., 2022): attention over multi-hop propagated features."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd import Tensor, functional as F
from repro.models.base import GraphModel
from repro.nn import MLP
from repro.nn.module import Parameter


class GAMLP(GraphModel):
    """Decoupled GNN: hop-wise attention combination + MLP classifier.

    Features are propagated ``k`` hops without parameters; a learnable hop
    gate (softmax over hop logits, the "recursive attention" simplification)
    combines the propagated views, and an MLP produces logits.

    The hop chain is parameter-free — neither the operator nor the features
    change during training — so the propagated blocks are computed once per
    ``(operator, features)`` pair through a
    :class:`~repro.core.propagation.PropagationCache` and reused by every
    subsequent epoch and evaluation forward (bitwise-identical values, the
    spmm chain just stops being recomputed).
    """

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 k: int = 3, dropout: float = 0.5, seed: int = 0):
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.hop_logits = Parameter(np.zeros(k + 1), name="hop_logits")
        self.classifier = MLP(in_features, [hidden], out_features,
                              dropout=dropout, seed=seed)
        #: id(P̃) → (features array, PropagationCache) for the constant hops
        self._hop_cache: Dict[int, Tuple[np.ndarray, object]] = {}

    def _hop_stack(self, prop: sp.csr_matrix, x: Tensor) -> List[Tensor]:
        """``[P̃x, …, P̃ᵏx]``, cached when the inputs are graph constants."""
        if x.requires_grad:
            # Differentiable inputs cannot be treated as constants; fall
            # back to the uncached chain (not a path federated training
            # hits — client features never require grad).
            hops, current = [], x
            for _ in range(self.k):
                current = F.spmm(prop, current)
                hops.append(current)
            return hops
        from repro.core.propagation import PropagationCache

        entry = self._hop_cache.get(id(prop))
        if entry is None or entry[0] is not x.data:
            if len(self._hop_cache) > 8:
                self._hop_cache.clear()
            entry = (x.data, PropagationCache(prop, x.data))
            self._hop_cache[id(prop)] = entry
        return entry[1].blocks(self.k)

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        prop = self.propagation_matrix(adjacency)
        hops = [x] + self._hop_stack(prop, x)
        gates = F.softmax(self.hop_logits.reshape(1, -1), axis=-1)
        combined = None
        for index, hop in enumerate(hops):
            weighted = hop * gates[0, index]
            combined = weighted if combined is None else combined + weighted
        return self.classifier(combined)

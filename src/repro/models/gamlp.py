"""GAMLP (Zhang et al., 2022): attention over multi-hop propagated features."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import Tensor, functional as F
from repro.models.base import GraphModel
from repro.nn import MLP
from repro.nn.module import Parameter


class GAMLP(GraphModel):
    """Decoupled GNN: hop-wise attention combination + MLP classifier.

    Features are propagated ``k`` hops without parameters; a learnable hop
    gate (softmax over hop logits, the "recursive attention" simplification)
    combines the propagated views, and an MLP produces logits.
    """

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 k: int = 3, dropout: float = 0.5, seed: int = 0):
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.hop_logits = Parameter(np.zeros(k + 1), name="hop_logits")
        self.classifier = MLP(in_features, [hidden], out_features,
                              dropout=dropout, seed=seed)

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        prop = self.propagation_matrix(adjacency)
        hops = [x]
        current = x
        for _ in range(self.k):
            current = F.spmm(prop, current)
            hops.append(current)
        gates = F.softmax(self.hop_logits.reshape(1, -1), axis=-1)
        combined = None
        for index, hop in enumerate(hops):
            weighted = hop * gates[0, index]
            combined = weighted if combined is None else combined + weighted
        return self.classifier(combined)

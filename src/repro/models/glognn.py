"""GloGNN (Li et al., 2022): global homophily discovery via coefficient matrix."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import Tensor, functional as F
from repro.models.base import GraphModel
from repro.nn import Dropout, Linear
from repro.nn.module import Parameter


class GloGNN(GraphModel):
    """Global-aggregation GNN for heterophily.

    Node embeddings ``Z = MLP(X)`` are refined with a *global* transformation
    coefficient matrix built from embedding similarity plus the (normalised)
    local adjacency:

    ``T = softmax(Z Zᵀ / √d + λ Ã)``,  ``H^{(l)} = (1-γ) T H^{(l-1)} + γ Z``.

    Unlike first-order GNNs, ``T`` can route messages between *any* pair of
    nodes, which is what lets the model aggregate from same-class nodes that
    are not graph neighbours (the "global homophily" of the paper).  The dense
    ``n × n`` coefficient matrix is exact on client-scale subgraphs.
    """

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 num_hops: int = 2, gamma: float = 0.5, lam: float = 1.0,
                 dropout: float = 0.5, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_hops = num_hops
        self.gamma = gamma
        self.lam = lam
        self.hidden = hidden
        self.encoder = Linear(in_features, hidden, rng=rng)
        self.decoder = Linear(hidden, out_features, rng=rng)
        self.scale = Parameter(np.array([1.0]), name="similarity_scale")
        self.dropout = Dropout(dropout, seed=seed + 1)

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        prop = self.propagation_matrix(adjacency)
        z = F.relu(self.encoder(self.dropout(x)))
        similarity = z.matmul(z.T) * (self.scale[0] * (1.0 / np.sqrt(self.hidden)))
        dense_prior = Tensor(prop.toarray() * self.lam)
        coefficients = F.softmax(similarity + dense_prior, axis=-1)

        h = z
        for _ in range(self.num_hops):
            h = coefficients.matmul(h) * (1.0 - self.gamma) + z * self.gamma
        return self.decoder(h)

"""GCNII (Chen et al., 2020): deep GCN with initial residual and identity map."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import Tensor, functional as F
from repro.models.base import GraphModel
from repro.nn import Dropout, Linear


class GCNII(GraphModel):
    """GCNII layer stack.

    Each layer computes ``H = σ(((1-α) Ã H + α H⁰)((1-β_l) I + β_l W_l))``
    where ``H⁰`` is the input projection and ``β_l = λ / l``.
    """

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 num_layers: int = 4, alpha: float = 0.1, lam: float = 0.5,
                 dropout: float = 0.5, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.alpha = alpha
        self.lam = lam
        self.num_layers = num_layers
        self.input_proj = Linear(in_features, hidden, rng=rng)
        self._layer_names = []
        for index in range(num_layers):
            name = f"conv{index}"
            setattr(self, name, Linear(hidden, hidden, bias=False, rng=rng))
            self._layer_names.append(name)
        self.output_proj = Linear(hidden, out_features, rng=rng)
        self.dropout = Dropout(dropout, seed=seed + 1)

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        prop = self.propagation_matrix(adjacency)
        h0 = F.relu(self.input_proj(self.dropout(x)))
        h = h0
        for index, name in enumerate(self._layer_names):
            beta = self.lam / (index + 1)
            support = F.spmm(prop, h) * (1.0 - self.alpha) + h0 * self.alpha
            transformed = getattr(self, name)(support)
            h = F.relu(support * (1.0 - beta) + transformed * beta)
            h = self.dropout(h)
        return self.output_proj(h)

"""GGCN (Yan et al., 2022): signed message passing for heterophilous graphs."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import Tensor, functional as F
from repro.models.base import GraphModel
from repro.nn import Dropout, Linear
from repro.nn.module import Parameter


def _signed_edge_weights(embedding: np.ndarray,
                         adjacency: sp.csr_matrix) -> tuple:
    """Split edges into positive/negative parts by endpoint cosine similarity.

    Returns two row-normalised sparse matrices ``(S_pos, S_neg)`` whose
    sparsity pattern matches ``adjacency``.  Both are constants w.r.t. the
    autodiff graph (recomputed from the current embedding each layer), which
    keeps the layer cheap while preserving the signed-aggregation behaviour.
    """
    coo = sp.coo_matrix(adjacency)
    norms = np.linalg.norm(embedding, axis=1) + 1e-12
    cosine = (np.sum(embedding[coo.row] * embedding[coo.col], axis=1)
              / (norms[coo.row] * norms[coo.col]))
    positive = np.clip(cosine, 0.0, None)
    negative = np.clip(-cosine, 0.0, None)

    def _build(values):
        matrix = sp.coo_matrix((values, (coo.row, coo.col)),
                               shape=adjacency.shape).tocsr()
        row_sum = np.asarray(matrix.sum(axis=1)).ravel()
        row_sum[row_sum == 0] = 1.0
        return sp.diags(1.0 / row_sum) @ matrix

    return _build(positive), _build(negative)


class GGCN(GraphModel):
    """Signed-message GNN: separates similar and dissimilar neighbours.

    Each layer transforms node embeddings, aggregates similar neighbours with
    positive sign and dissimilar neighbours with negative sign, and mixes the
    two with the self embedding through learnable softmax gates.
    """

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 num_layers: int = 2, dropout: float = 0.5, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.input_proj = Linear(in_features, hidden, rng=rng)
        self._layer_names = []
        self._gate_names = []
        for index in range(num_layers):
            layer_name = f"transform{index}"
            gate_name = f"gate{index}"
            setattr(self, layer_name, Linear(hidden, hidden, rng=rng))
            # Initialise gates so the self-embedding path dominates early
            # training; the signed neighbour paths are learned on top of it.
            setattr(self, gate_name,
                    Parameter(np.array([0.0, 0.0, 1.0]), name=gate_name))
            self._layer_names.append(layer_name)
            self._gate_names.append(gate_name)
        self.output_proj = Linear(hidden, out_features, rng=rng)
        self.dropout = Dropout(dropout, seed=seed + 1)

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        adjacency = sp.csr_matrix(adjacency)
        h = F.relu(self.input_proj(self.dropout(x)))
        for layer_name, gate_name in zip(self._layer_names, self._gate_names):
            transformed = getattr(self, layer_name)(h)
            s_pos, s_neg = _signed_edge_weights(transformed.numpy(), adjacency)
            gates = F.softmax(getattr(self, gate_name).reshape(1, -1), axis=-1)
            aggregated = (F.spmm(s_pos, transformed) * gates[0, 0]
                          - F.spmm(s_neg, transformed) * gates[0, 1]
                          + transformed * gates[0, 2])
            # Residual connection keeps gradients healthy in deeper stacks.
            # (Dropout is applied only to the input features: the signed
            # aggregation is already a strong regulariser on small subgraphs.)
            h = F.relu(aggregated) + h
        return self.output_proj(h)

"""Common interface for graph models.

Every model implements ``forward(x, adjacency)`` where ``x`` is a feature
:class:`~repro.autograd.Tensor` and ``adjacency`` is the *raw* (unnormalised)
sparse adjacency of the local subgraph; each model applies its own propagation
operator internally and caches it keyed on the adjacency object's id, so
repeated epochs over the same subgraph do not re-normalise.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.autograd import Tensor
from repro.autograd.backend import cached_transpose
from repro.graph.normalize import normalize_adjacency
from repro.nn import Module


def prepare_propagation(adjacency: sp.spmatrix, r: float = 0.5,
                        self_loops: bool = True) -> sp.csr_matrix:
    """Symmetric-normalised propagation operator (Eq. 1 with r = 1/2)."""
    return normalize_adjacency(adjacency, r=r, self_loops=self_loops)


class GraphModel(Module):
    """Base class providing propagation-operator caching."""

    def __init__(self):
        super().__init__()
        self._prop_cache: Dict[int, sp.csr_matrix] = {}

    def propagation_matrix(self, adjacency: sp.spmatrix,
                           r: float = 0.5) -> sp.csr_matrix:
        key = id(adjacency)
        if key not in self._prop_cache:
            # Keep the cache tiny: one operator per adjacency object.
            if len(self._prop_cache) > 8:
                self._prop_cache.clear()
            self._prop_cache[key] = prepare_propagation(adjacency, r=r)
        return self._prop_cache[key]

    def propagation_matrix_t(self, adjacency: sp.spmatrix,
                             r: float = 0.5) -> sp.csr_matrix:
        """CSR transpose of :meth:`propagation_matrix`, cached alongside it.

        The hot operand of every ``spmm`` backward (``P̃ᵀ @ grad``): passing
        it as ``adjacency_t`` replaces the per-backward CSC product with a
        cached CSR one.  Both accumulate each output row's contributions in
        ascending source-row order, so results are bitwise-unchanged.

        Delegates to the dispatch layer's process-wide
        :func:`~repro.autograd.backend.cached_transpose`, the same cache the
        ``spmm`` backward consults when no ``adjacency_t`` is supplied — so
        serial, batched and personalized paths all share one transpose per
        operator object.
        """
        return cached_transpose(self.propagation_matrix(adjacency, r=r))

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        raise NotImplementedError

    def predict_probabilities(self, x, adjacency) -> np.ndarray:
        """Convenience inference helper returning softmax probabilities."""
        from repro.autograd import functional as F
        from repro.autograd import no_grad

        was_training = self.training
        self.eval()
        with no_grad():
            logits = self.forward(F.as_tensor(x), adjacency)
            probs = F.softmax(logits, axis=-1).numpy()
        if was_training:
            self.train()
        return probs

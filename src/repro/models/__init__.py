"""Centralised GNN models used as local learners inside the federated setting.

Homophilous models: :class:`GCN`, :class:`SGC`, :class:`GCNII`, :class:`GAMLP`.
Heterophilous models: :class:`GPRGNN`, :class:`GGCN`, :class:`GloGNN`.
Feature-only baseline: :class:`repro.nn.MLP` (re-exported here).
"""

from repro.nn import MLP
from repro.models.base import GraphModel, prepare_propagation
from repro.models.gcn import GCN, SGC
from repro.models.gcnii import GCNII
from repro.models.gamlp import GAMLP
from repro.models.gprgnn import GPRGNN
from repro.models.ggcn import GGCN
from repro.models.glognn import GloGNN

MODEL_REGISTRY = {
    "mlp": MLP,
    "gcn": GCN,
    "sgc": SGC,
    "gcnii": GCNII,
    "gamlp": GAMLP,
    "gprgnn": GPRGNN,
    "ggcn": GGCN,
    "glognn": GloGNN,
}

__all__ = [
    "GraphModel",
    "prepare_propagation",
    "MLP",
    "GCN",
    "SGC",
    "GCNII",
    "GAMLP",
    "GPRGNN",
    "GGCN",
    "GloGNN",
    "MODEL_REGISTRY",
]

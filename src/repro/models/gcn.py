"""GCN (Kipf & Welling, 2017) and SGC (Wu et al., 2019)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import Tensor, functional as F
from repro.models.base import GraphModel
from repro.nn import Dropout, Linear


class GCN(GraphModel):
    """Two-layer graph convolutional network with symmetric normalisation.

    ``X^{(l)} = σ(Ã X^{(l-1)} W^{(l)})`` with ``Ã = D^{-1/2} Â D^{-1/2}``.
    """

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 num_layers: int = 2, dropout: float = 0.5, seed: int = 0):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden] * (num_layers - 1) + [out_features]
        self._layer_names = []
        for index, (fan_in, fan_out) in enumerate(zip(dims[:-1], dims[1:])):
            name = f"conv{index}"
            setattr(self, name, Linear(fan_in, fan_out, rng=rng))
            self._layer_names.append(name)
        self.dropout = Dropout(dropout, seed=seed + 1)

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        prop = self.propagation_matrix(adjacency)
        last = len(self._layer_names) - 1
        for index, name in enumerate(self._layer_names):
            x = F.spmm(prop, x)
            x = getattr(self, name)(x)
            if index != last:
                x = F.relu(x)
                x = self.dropout(x)
        return x


class SGC(GraphModel):
    """Simplified GCN: a linear model on k-step propagated features."""

    def __init__(self, in_features: int, out_features: int, k: int = 2,
                 seed: int = 0, hidden: int = 0, dropout: float = 0.0):
        super().__init__()
        del hidden, dropout  # signature compatibility with other models
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.linear = Linear(in_features, out_features,
                             rng=np.random.default_rng(seed))

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        prop = self.propagation_matrix(adjacency)
        for _ in range(self.k):
            x = F.spmm(prop, x)
        return self.linear(x)

"""GPR-GNN (Chien et al., 2021): learnable generalized PageRank propagation."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import Tensor, functional as F
from repro.models.base import GraphModel
from repro.nn import MLP
from repro.nn.module import Parameter


class GPRGNN(GraphModel):
    """MLP feature transformation followed by learnable GPR weights.

    ``Z = Σ_k γ_k Ã^k H`` with ``H = MLP(X)``; the γ weights are initialised
    with personalised-PageRank decay ``α (1-α)^k`` and learned end-to-end,
    which lets the model put negative weight on hops under heterophily.
    """

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 k: int = 4, alpha: float = 0.1, dropout: float = 0.5,
                 seed: int = 0):
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        gamma = alpha * (1.0 - alpha) ** np.arange(k + 1)
        gamma[-1] = (1.0 - alpha) ** k
        self.gamma = Parameter(gamma, name="gpr_gamma")
        self.transform = MLP(in_features, [hidden], out_features,
                             dropout=dropout, seed=seed)

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        prop = self.propagation_matrix(adjacency)
        # Unlike GAMLP the hops act on the *learned* transform, so the chain
        # itself cannot be cached across epochs; the parameter-free constant
        # is the operator pair — cache P̃ᵀ in CSR form so every one of the
        # k spmm backwards reuses it instead of re-deriving a transpose.
        prop_t = self.propagation_matrix_t(adjacency)
        h = self.transform(x)
        out = h * self.gamma[0]
        current = h
        for step in range(1, self.k + 1):
            current = F.spmm(prop, current, adjacency_t=prop_t)
            out = out + current * self.gamma[step]
        return out

"""Core :class:`Tensor` type and reverse-mode differentiation machinery."""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.autograd.backend import ArrayBackend, resolve_backend

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether gradient recording is globally enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value: ArrayLike) -> np.ndarray:
    """Host float64 coercion (kept for callers outside the dispatch layer)."""
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            return value.astype(np.float64)
        return value
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with optional gradient tracking.

    Parameters
    ----------
    data:
        Array-like payload; always stored as ``float64``.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    backend:
        Array backend (name, instance, or ``None`` for the active
        :func:`~repro.autograd.backend.use_backend` scope / process
        default).  The payload is coerced through ``backend.asarray`` and
        every derived tensor inherits the backend of its first parent.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "name", "backend")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None,
                 backend: Union[None, str, ArrayBackend] = None):
        self.backend = resolve_backend(backend)
        self.data = self.backend.asarray(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    @property
    def device(self) -> str:
        """Name of the array backend holding this tensor's payload."""
        return self.backend.name

    def numpy(self) -> np.ndarray:
        """Return the underlying array as host numpy (no copy when host)."""
        return self.backend.to_host(self.data)

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False, backend=self.backend)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad,
                      backend=self.backend)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        parents = tuple(parents)
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        # Derived tensors live on the backend of their first parent; mixed
        # parents are the caller's coercion responsibility.
        out = Tensor(data, requires_grad=False,
                     backend=parents[0].backend if parents else None)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            # Backward closures hand over freshly-allocated arrays and no
            # caller mutates gradients in place (optimizers rebind), so the
            # array can be adopted without a defensive copy.
            self.grad = self.backend.asarray(grad)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1.0, which requires the tensor to
            be a scalar.
        """
        xp = self.backend.xp
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without a gradient argument requires a scalar "
                    f"tensor, got shape {self.data.shape}"
                )
            grad = xp.ones_like(self.data)
        # Copy the seed: _accumulate adopts arrays without copying, and the
        # caller may reuse the one it passed in.
        grad = self.backend.asarray(grad).copy()

        # Topologically order the graph reachable from ``self``.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic operators
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(other, backend=self.backend)

    def __add__(self, other):
        other = self._coerce(other)
        out_data = self.data + other.data

        # Guard every operand-gradient computation on requires_grad: hot
        # loops mix constants (propagation operators, hyperparameter
        # scalars) into the graph, and materialising their gradients would
        # allocate and reduce large arrays only to throw them away.
        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other):
        return self._coerce(other).__sub__(self)

    def __mul__(self, other):
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(grad * self.data, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2),
                                 other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float):
        exponent = float(exponent)
        out_data = self.data ** exponent

        def backward(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other):
        return self.matmul(other)

    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product; supports stacked (batched) operands of ndim > 2.

        Gradients transpose only the last two axes and are reduced over
        broadcast batch axes, so ``(B, n, f) @ (B, f, h)`` and the mixed
        ``(B, n, f) @ (f, h)`` both differentiate correctly.
        """
        other = self._coerce(other)
        xp = self.backend.xp
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(
                    grad @ xp.swapaxes(other.data, -1, -2), self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(
                    xp.swapaxes(self.data, -1, -2) @ grad, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    def transpose(self) -> "Tensor":
        def backward(grad):
            self._accumulate(grad.T)

        return Tensor._make(self.data.T, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions / shaping
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        xp = self.backend.xp
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = xp.asarray(grad)
            if axis is not None and not keepdims:
                g = xp.expand_dims(g, axis)
            self._accumulate(xp.broadcast_to(g, self.data.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad):
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        xp = self.backend.xp
        out_data = self.data[index]

        def backward(grad):
            # xp.add.at is a host-namespace scatter; a device backend whose
            # namespace lacks it (CuPy: cupyx.scatter_add) should override
            # via a fancy-index gather graph instead of this slow path.
            full = xp.zeros_like(self.data)
            xp.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise functions (also exposed in functional.py)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = self.backend.xp.exp(self.data)

        def backward(grad):
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = self.backend.xp.log(self.data)

        def backward(grad):
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + self.backend.xp.exp(-self.data))

        def backward(grad):
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = self.backend.xp.tanh(self.data)

        def backward(grad):
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        out_data = self.backend.xp.clip(self.data, low, high)

        def backward(grad):
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad: bool = False, backend=None) -> "Tensor":
        resolved = resolve_backend(backend)
        return Tensor(resolved.xp.zeros(shape), requires_grad=requires_grad,
                      backend=resolved)

    @staticmethod
    def ones(shape, requires_grad: bool = False, backend=None) -> "Tensor":
        resolved = resolve_backend(backend)
        return Tensor(resolved.xp.ones(shape), requires_grad=requires_grad,
                      backend=resolved)

    @staticmethod
    def eye(n: int, requires_grad: bool = False, backend=None) -> "Tensor":
        resolved = resolve_backend(backend)
        return Tensor(resolved.xp.eye(n), requires_grad=requires_grad,
                      backend=resolved)

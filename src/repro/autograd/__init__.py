"""Reverse-mode automatic differentiation on pluggable array backends.

The engine is intentionally small: a :class:`Tensor` wraps an array and
records the operations applied to it; calling :meth:`Tensor.backward` performs
a topological sweep and accumulates gradients into every tensor created with
``requires_grad=True``.  Sparse adjacency matrices enter the graph through
:func:`repro.autograd.functional.spmm`, which treats the sparse operand as a
constant (exactly how GNN propagation matrices are used in the paper).

Array math is routed through a backend dispatch layer
(:mod:`repro.autograd.backend`): dense elementwise ops go through the
backend's array-API namespace ``xp``, the sparse/fused hot paths through its
kernel registry.  ``numpy`` is the default backend and the bitwise parity
reference; ``jit`` swaps in numba-compiled CSR kernels where available.
Select a backend per scope with :func:`use_backend`, per process with
``REPRO_ARRAY_BACKEND``, or per tensor via ``Tensor(..., backend=...)``.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import functional
from repro.autograd.backend import (
    ArrayBackend,
    current_backend,
    default_backend,
    get_backend,
    list_array_backends,
    numba_available,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)

__all__ = [
    "ArrayBackend",
    "Tensor",
    "current_backend",
    "default_backend",
    "functional",
    "get_backend",
    "is_grad_enabled",
    "list_array_backends",
    "no_grad",
    "numba_available",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]

"""Reverse-mode automatic differentiation on numpy arrays.

The engine is intentionally small: a :class:`Tensor` wraps a numpy array and
records the operations applied to it; calling :meth:`Tensor.backward` performs
a topological sweep and accumulates gradients into every tensor created with
``requires_grad=True``.  Sparse adjacency matrices enter the graph through
:func:`repro.autograd.functional.spmm`, which treats the sparse operand as a
constant (exactly how GNN propagation matrices are used in the paper).
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import functional

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional"]

"""The numpy reference backend.

These kernels are the engine's original expressions, verbatim — the *bitwise
parity reference* every other backend is tested against.  This module is the
only place the hot-path primitives may touch ``np.`` directly
(``tools/check_backend_dispatch.py`` enforces the seam on
``functional.py``).

Accumulation-order contract (what "bitwise" rests on):

* ``spmm`` — scipy's CSR matmul accumulates each output row over the stored
  entries in order; the backward multiplies by the shared cached CSR
  transpose, which gathers contributions in ascending source-row order —
  the same order the historical per-call ``A.T @ grad`` CSC product used.
* ``sddmm`` backward — ``np.add.at`` applies updates in element order;
  rows/cols arrive in CSR order (rows ascending, cols ascending within a
  row) from the fixed-support message-passing path.
* ``dropout_mask`` — consumes ``rng.random(shape)`` exactly once, so every
  backend advances a module's generator identically.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd.backend import ArrayBackend, cached_transpose


def spmm(adjacency: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
    return adjacency @ dense


def spmm_backward(adjacency: sp.csr_matrix, adjacency_t, grad: np.ndarray
                  ) -> np.ndarray:
    transpose = cached_transpose(adjacency) if adjacency_t is None \
        else adjacency_t
    return transpose @ grad


def spmm_batched(adjacency: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
    batch, nodes, channels = dense.shape
    flat = dense.reshape(batch * nodes, channels)
    return (adjacency @ flat).reshape(batch, nodes, channels)


def sddmm(rows: np.ndarray, cols: np.ndarray, a: np.ndarray, b: np.ndarray
          ) -> np.ndarray:
    return np.einsum("ij,ij->i", a[rows], b[cols])


def sddmm_backward(rows, cols, a, b, grad, need_a, need_b):
    column = grad[:, None]
    grad_a = grad_b = None
    if need_a:
        grad_a = np.zeros_like(a)
        np.add.at(grad_a, rows, column * b[cols])
    if need_b:
        grad_b = np.zeros_like(b)
        np.add.at(grad_b, cols, column * a[rows])
    return grad_a, grad_b


def spmm_pattern(pattern: sp.csr_matrix, values: np.ndarray,
                 dense: np.ndarray):
    matrix = sp.csr_matrix((values, pattern.indices, pattern.indptr),
                           shape=pattern.shape)
    return matrix @ dense, matrix


def spmm_pattern_backward_values(pattern: sp.csr_matrix, grad: np.ndarray,
                                 dense: np.ndarray) -> np.ndarray:
    rows = np.repeat(np.arange(pattern.shape[0]), np.diff(pattern.indptr))
    return np.einsum("ij,ij->i", grad[rows], dense[pattern.indices])


def spmm_pattern_backward_dense(matrix: sp.csr_matrix, grad: np.ndarray
                                ) -> np.ndarray:
    return matrix.T @ grad


def dropout_mask(rng: np.random.Generator, shape, p: float) -> np.ndarray:
    return (rng.random(shape) >= p) / (1.0 - p)


def apply_mask(x: np.ndarray, mask: np.ndarray) -> np.ndarray:
    return x * mask


class NumpyBackend(ArrayBackend):
    """Default backend: numpy namespace, reference kernels."""

    name = "numpy"
    xp = np

    def __init__(self):
        super().__init__()
        self.register_kernel("spmm", spmm)
        self.register_kernel("spmm_backward", spmm_backward)
        self.register_kernel("spmm_batched", spmm_batched)
        self.register_kernel("sddmm", sddmm)
        self.register_kernel("sddmm_backward", sddmm_backward)
        self.register_kernel("spmm_pattern", spmm_pattern)
        self.register_kernel("spmm_pattern_backward_values",
                             spmm_pattern_backward_values)
        self.register_kernel("spmm_pattern_backward_dense",
                             spmm_pattern_backward_dense)
        self.register_kernel("dropout_mask", dropout_mask)
        self.register_kernel("apply_mask", apply_mask)

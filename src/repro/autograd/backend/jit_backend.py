"""The ``jit`` backend: numba CSR kernels with graceful per-kernel fallback.

When numba is importable the sparse hot paths compile to ``prange``-parallel
CSR loops; when it is absent each kernel independently degrades to the best
numpy/scipy implementation available — which for the sddmm backward is a
*scatter-free* formulation that is still ≳2× the reference ``np.add.at``
path, and for the remaining kernels is the reference expression itself.

Parity contract (what the backend-parity suite asserts):

* **Bitwise-safe kernels** — ``spmm`` / ``spmm_batched`` / ``spmm_pattern``
  forward, the spmm/pattern backwards and the sddmm backward.  The numba
  loops nest exactly like scipy's CSR matmul (per output row: stored entries
  in order, multiply then accumulate) and parallelise only over independent
  output rows, and numba compiles without fast-math so LLVM cannot contract
  the multiply-add into an FMA: results are bitwise-identical to the numpy
  reference, with or without numba.

  The scatter-free sddmm backward is bitwise because ``np.add.at`` applies
  updates in element order and the support arrives in CSR order: the CSR
  product ``S @ b`` accumulates each output row over exactly that order, and
  ``Sᵀ @ a`` (CSC traversal) hits every output row in ascending element
  order too.  Supports whose ``rows`` are *not* sorted fall back to
  ``np.add.at`` verbatim.

* **Reduction-order-sensitive kernels** — ``sddmm`` forward and the
  spmm_pattern values-backward are dot reductions that the numpy reference
  computes with ``np.einsum`` (SIMD partial sums).  A sequential numba dot
  reorders that reduction and can differ by a few ulps (observed ≤ 2 ulps on
  float64 at engine shapes), so the jit backend keeps the einsum reference
  for them by default — the sync training pipeline therefore always runs a
  bitwise-safe kernel set.  Set ``REPRO_JIT_FAST_DOT=1`` to opt into the
  numba dot variants where bitwise history parity is not required.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd.backend import ArrayBackend, cached_transpose
from repro.autograd.backend import numpy_backend as ref

try:  # pragma: no cover - exercised only where numba is installed (CI matrix)
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Decorator stub so kernel definitions parse without numba."""
        def wrap(fn):
            return fn

        if args and callable(args[0]):
            return args[0]
        return wrap

    prange = range


def numba_available() -> bool:
    """Whether the jit backend is actually numba-compiled in this process."""
    return NUMBA_AVAILABLE


_FAST_DOT = os.environ.get("REPRO_JIT_FAST_DOT", "0") == "1"


# ----------------------------------------------------------------------
# Support-structure caches
# ----------------------------------------------------------------------
# The sddmm support (rows, cols) and spmm_pattern structure are graph
# constants reused every epoch; derived structures (row pointers, the
# transposed-traversal permutation) are cached by object identity with a
# strong reference to the source array so the id key cannot be recycled.
_STRUCT_CACHE: Dict[Tuple[str, int], tuple] = {}
_STRUCT_CACHE_CAP = 64


def _cache_get(kind: str, owner) -> Optional[tuple]:
    hit = _STRUCT_CACHE.get((kind, id(owner)))
    if hit is not None and hit[0] is owner:
        return hit[1]
    return None


def _cache_put(kind: str, owner, value: tuple) -> tuple:
    if len(_STRUCT_CACHE) >= _STRUCT_CACHE_CAP:
        _STRUCT_CACHE.clear()
    _STRUCT_CACHE[(kind, id(owner))] = (owner, value)
    return value


def _rows_structure(rows: np.ndarray, n_rows: int) -> tuple:
    """``(is_sorted, indptr)`` for a CSR-ordered sddmm row support."""
    cached = _cache_get("rows", rows)
    if cached is not None:
        return cached
    is_sorted = bool(np.all(rows[:-1] <= rows[1:]))
    indptr = None
    if is_sorted:
        counts = np.bincount(rows, minlength=n_rows)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
    return _cache_put("rows", rows, (is_sorted, indptr))


def _cols_structure(cols: np.ndarray, n_cols: int) -> tuple:
    """``(indptr_t, perm)``: transposed traversal of the sddmm support.

    ``perm`` lists the support elements column-by-column in ascending
    element order within each column (a stable counting sort), so a walk in
    this order accumulates each output row of the column gradient in the
    exact order ``np.add.at`` would.
    """
    cached = _cache_get("cols", cols)
    if cached is not None:
        return cached
    counts = np.bincount(cols, minlength=n_cols)
    indptr_t = np.zeros(n_cols + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr_t[1:])
    perm = np.argsort(cols, kind="stable").astype(np.int64)
    return _cache_put("cols", cols, (indptr_t, perm))


def _pattern_transpose_structure(pattern: sp.csr_matrix) -> tuple:
    """``(indptr_t, indices_t, perm)`` of a fixed CSR pattern's transpose."""
    cached = _cache_get("pattern_t", pattern)
    if cached is not None:
        return cached
    rows = np.repeat(np.arange(pattern.shape[0], dtype=np.int64),
                     np.diff(pattern.indptr))
    indptr_t, perm = _cols_structure(pattern.indices, pattern.shape[1])
    return _cache_put("pattern_t", pattern,
                      (indptr_t, rows[perm].copy(), perm))


# ----------------------------------------------------------------------
# numba kernels (compiled lazily on first call when numba is present)
# ----------------------------------------------------------------------
@njit(parallel=True, cache=True)
def _spmm_csr(indptr, indices, data, dense, out):  # pragma: no cover - numba
    # One independent output row per parallel iteration; within a row the
    # stored entries accumulate in order — scipy's exact loop nest.
    for i in prange(indptr.shape[0] - 1):
        for e in range(indptr[i], indptr[i + 1]):
            v = data[e]
            c = indices[e]
            for j in range(dense.shape[1]):
                out[i, j] += v * dense[c, j]


@njit(parallel=True, cache=True)
def _sddmm_grad_rows(indptr, cols, grad, b, out):  # pragma: no cover - numba
    for r in prange(indptr.shape[0] - 1):
        for e in range(indptr[r], indptr[r + 1]):
            g = grad[e]
            c = cols[e]
            for j in range(b.shape[1]):
                out[r, j] += g * b[c, j]


@njit(parallel=True, cache=True)
def _sddmm_grad_cols(indptr_t, perm, rows, grad, a, out):  # pragma: no cover
    for c in prange(indptr_t.shape[0] - 1):
        for k in range(indptr_t[c], indptr_t[c + 1]):
            e = perm[k]
            g = grad[e]
            r = rows[e]
            for j in range(a.shape[1]):
                out[c, j] += g * a[r, j]


@njit(parallel=True, cache=True)
def _sddmm_dot(rows, cols, a, b, out):  # pragma: no cover - numba, opt-in
    # Sequential dot per edge: reduction order differs from np.einsum's SIMD
    # partial sums by a few ulps — REPRO_JIT_FAST_DOT=1 territory only.
    for e in prange(rows.shape[0]):
        r = rows[e]
        c = cols[e]
        acc = 0.0
        for j in range(a.shape[1]):
            acc += a[r, j] * b[c, j]
        out[e] = acc


# ----------------------------------------------------------------------
# Kernel implementations
# ----------------------------------------------------------------------
def spmm(adjacency: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
    if not NUMBA_AVAILABLE:
        return ref.spmm(adjacency, dense)
    out = np.zeros((adjacency.shape[0], dense.shape[1]), dtype=np.float64)
    _spmm_csr(adjacency.indptr, adjacency.indices, adjacency.data, dense, out)
    return out


def spmm_backward(adjacency, adjacency_t, grad):
    transpose = cached_transpose(adjacency) if adjacency_t is None \
        else adjacency_t
    return spmm(transpose, grad)


def spmm_batched(adjacency, dense):
    batch, nodes, channels = dense.shape
    flat = dense.reshape(batch * nodes, channels)
    return spmm(adjacency, flat).reshape(batch, nodes, channels)


def sddmm(rows, cols, a, b):
    if NUMBA_AVAILABLE and _FAST_DOT:
        out = np.empty(rows.shape[0], dtype=np.float64)
        _sddmm_dot(rows, cols, a, b, out)
        return out
    return ref.sddmm(rows, cols, a, b)


def sddmm_backward(rows, cols, a, b, grad, need_a, need_b):
    """Scatter-free sddmm backward on a CSR-ordered support.

    ``grad_a = S @ b`` and ``grad_b = Sᵀ @ a`` where ``S`` carries ``grad``
    on the support — no ``np.add.at`` scatter and no ``(nnz, f)``
    intermediate product.  Unsorted supports keep the reference scatter.
    """
    is_sorted, indptr = _rows_structure(rows, a.shape[0])
    if not is_sorted:
        return ref.sddmm_backward(rows, cols, a, b, grad, need_a, need_b)
    grad_a = grad_b = None
    if NUMBA_AVAILABLE:
        if need_a:
            grad_a = np.zeros_like(a)
            _sddmm_grad_rows(indptr, cols.astype(np.int64, copy=False),
                             grad, b, grad_a)
        if need_b:
            indptr_t, perm = _cols_structure(cols, b.shape[0])
            grad_b = np.zeros_like(b)
            _sddmm_grad_cols(indptr_t, perm,
                             rows.astype(np.int64, copy=False),
                             grad, a, grad_b)
        return grad_a, grad_b
    matrix = sp.csr_matrix((grad, cols, indptr),
                           shape=(a.shape[0], b.shape[0]))
    if need_a:
        grad_a = matrix @ b
    if need_b:
        grad_b = matrix.T @ a
    return grad_a, grad_b


def spmm_pattern(pattern, values, dense):
    matrix = sp.csr_matrix((values, pattern.indices, pattern.indptr),
                           shape=pattern.shape)
    if not NUMBA_AVAILABLE:
        return matrix @ dense, matrix
    out = np.zeros((pattern.shape[0], dense.shape[1]), dtype=np.float64)
    _spmm_csr(pattern.indptr, pattern.indices, values, dense, out)
    return out, matrix


def spmm_pattern_backward_values(pattern, grad, dense):
    if NUMBA_AVAILABLE and _FAST_DOT:
        rows = np.repeat(np.arange(pattern.shape[0], dtype=np.int64),
                         np.diff(pattern.indptr))
        out = np.empty(pattern.nnz, dtype=np.float64)
        _sddmm_dot(rows, pattern.indices.astype(np.int64, copy=False),
                   grad, dense, out)
        return out
    return ref.spmm_pattern_backward_values(pattern, grad, dense)


def spmm_pattern_backward_dense(matrix, grad):
    if not NUMBA_AVAILABLE:
        return ref.spmm_pattern_backward_dense(matrix, grad)
    indptr_t, indices_t, perm = _pattern_transpose_structure(matrix)
    out = np.zeros((matrix.shape[1], grad.shape[1]), dtype=np.float64)
    _spmm_csr(indptr_t, indices_t, matrix.data[perm], grad, out)
    return out


class JitBackend(ArrayBackend):
    """JIT backend: numba CSR kernels, per-kernel numpy/scipy fallback."""

    name = "jit"
    xp = np

    def __init__(self):
        super().__init__()
        self.register_kernel("spmm", spmm)
        self.register_kernel("spmm_backward", spmm_backward)
        self.register_kernel("spmm_batched", spmm_batched)
        self.register_kernel("sddmm", sddmm)
        self.register_kernel("sddmm_backward", sddmm_backward)
        self.register_kernel("spmm_pattern", spmm_pattern)
        self.register_kernel("spmm_pattern_backward_values",
                             spmm_pattern_backward_values)
        self.register_kernel("spmm_pattern_backward_dense",
                             spmm_pattern_backward_dense)
        # Mask generation/application are memory-bound elementwise numpy ops;
        # the fused numba variant measured within noise, so the reference
        # expressions stay (and keep RNG consumption identical by contract).
        self.register_kernel("dropout_mask", ref.dropout_mask)
        self.register_kernel("apply_mask", ref.apply_mask)

"""Pluggable array-backend dispatch for the autograd engine.

Every array operation in :mod:`repro.autograd.tensor` routes through a
namespace object ``xp`` (the Python array-API standard: numpy fulfils it
directly), and every sparse/fused hot-path primitive in
:mod:`repro.autograd.functional` routes through a per-backend *kernel
registry*.  Two backends ship:

* ``numpy`` — the default and the bitwise parity reference.  Its kernels are
  the exact expressions the engine has always computed; every existing test
  runs against it unchanged.
* ``jit`` — numba-compiled CSR kernels (``prange`` over independent output
  rows, scatter-free sddmm backward) that degrade gracefully *per kernel* to
  optimized scipy fallbacks when numba is absent.  See
  :mod:`repro.autograd.backend.jit_backend` for the kernel-by-kernel parity
  contract.

Registering a GPU backend (the CuPy seam)
-----------------------------------------
A CuPy backend is a registration away and needs no dispatch changes::

    import cupy
    import cupyx.scipy.sparse as cusparse
    from repro.autograd import backend as B

    class CupyBackend(B.ArrayBackend):
        name = "cupy"
        xp = cupy                                   # array-API namespace

        def asarray(self, value, dtype=None):
            return cupy.asarray(value, dtype=dtype or cupy.float64)

        def to_host(self, array):
            return cupy.asnumpy(array)

        def prepare_sparse(self, matrix):           # host CSR -> device CSR
            return cusparse.csr_matrix(matrix.tocsr())

    backend = CupyBackend()
    backend.register_kernel("spmm", lambda adj, x: adj @ x)
    ...                                             # remaining KERNEL_NAMES
    B.register_backend(backend)

``prepare_sparse`` is the device boundary: propagation operators stay host
CSR in the model caches and are converted (and cached by the caller) on
first use.  Dense tensors pick the device up at construction because
:class:`~repro.autograd.tensor.Tensor` coerces through
``backend.asarray``.  Host-side glue (metrics, aggregation) reads arrays
back through ``to_host``.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Callable, Dict, Iterator, List, Optional, Union

import numpy as np
import scipy.sparse as sp

#: every kernel a concrete backend must provide.  The five hot-path
#: primitives of the engine (spmm, spmm_batched, spmm_pattern, sddmm and the
#: dropout-mask apply) plus their backward companions.
KERNEL_NAMES = (
    "spmm",
    "spmm_backward",
    "spmm_batched",
    "sddmm",
    "sddmm_backward",
    "spmm_pattern",
    "spmm_pattern_backward_values",
    "spmm_pattern_backward_dense",
    "dropout_mask",
    "apply_mask",
)


class ArrayBackend:
    """One array device/runtime: an ``xp`` namespace plus a kernel registry.

    Subclasses set :attr:`name`, :attr:`xp` and register a callable for every
    entry of :data:`KERNEL_NAMES`.  Instances are process-wide singletons
    resolved by name (pickling — e.g. shipping a client to a persistent pool
    worker — reduces to the name and re-resolves on the other side).
    """

    name: str = "abstract"
    #: the array-API namespace dense elementwise math routes through
    xp = np

    def __init__(self):
        self._kernels: Dict[str, Callable] = {}

    # ------------------------------------------------------------------
    # Array plumbing (the CuPy seam)
    # ------------------------------------------------------------------
    def asarray(self, value, dtype=None) -> np.ndarray:
        """Coerce ``value`` onto this backend's device as float64."""
        dtype = dtype or np.float64
        if isinstance(value, np.ndarray):
            if value.dtype != dtype:
                return value.astype(dtype)
            return value
        return np.asarray(value, dtype=dtype)

    def to_host(self, array) -> np.ndarray:
        """Device array → host numpy array (no copy when already host)."""
        return np.asarray(array)

    def prepare_sparse(self, matrix):
        """Host scipy sparse matrix → the CSR form this backend consumes."""
        if not sp.issparse(matrix):
            raise TypeError(
                f"{self.name} backend expects a scipy sparse operand, "
                f"got {type(matrix).__name__}")
        return matrix.tocsr()

    # ------------------------------------------------------------------
    # Kernel registry
    # ------------------------------------------------------------------
    def register_kernel(self, name: str, fn: Callable) -> None:
        if name not in KERNEL_NAMES:
            raise KeyError(f"unknown kernel '{name}' "
                           f"(expected one of {KERNEL_NAMES})")
        self._kernels[name] = fn

    def kernel(self, name: str) -> Callable:
        try:
            return self._kernels[name]
        except KeyError:
            raise NotImplementedError(
                f"backend '{self.name}' has no kernel '{name}'") from None

    def missing_kernels(self) -> List[str]:
        return [name for name in KERNEL_NAMES if name not in self._kernels]

    # Attribute-style dispatch for the hot call sites.
    def spmm(self, adjacency, dense):
        return self._kernels["spmm"](adjacency, dense)

    def spmm_backward(self, adjacency, adjacency_t, grad):
        return self._kernels["spmm_backward"](adjacency, adjacency_t, grad)

    def spmm_batched(self, adjacency, dense):
        return self._kernels["spmm_batched"](adjacency, dense)

    def sddmm(self, rows, cols, a, b):
        return self._kernels["sddmm"](rows, cols, a, b)

    def sddmm_backward(self, rows, cols, a, b, grad, need_a, need_b):
        return self._kernels["sddmm_backward"](rows, cols, a, b, grad,
                                               need_a, need_b)

    def spmm_pattern(self, pattern, values, dense):
        return self._kernels["spmm_pattern"](pattern, values, dense)

    def spmm_pattern_backward_values(self, pattern, grad, dense):
        return self._kernels["spmm_pattern_backward_values"](pattern, grad,
                                                             dense)

    def spmm_pattern_backward_dense(self, matrix, grad):
        return self._kernels["spmm_pattern_backward_dense"](matrix, grad)

    def dropout_mask(self, rng, shape, p):
        return self._kernels["dropout_mask"](rng, shape, p)

    def apply_mask(self, x, mask):
        return self._kernels["apply_mask"](x, mask)

    # ------------------------------------------------------------------
    def __reduce__(self):
        # Backends are singletons: pickling (worker bootstrap, checkpoints)
        # re-resolves by name instead of shipping kernel closures.
        return (get_backend, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayBackend({self.name!r})"


# ----------------------------------------------------------------------
# Registry and resolution
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ArrayBackend] = {}

BackendSpec = Union[None, str, ArrayBackend]


def register_backend(backend: ArrayBackend) -> ArrayBackend:
    """Register (or replace) a backend under its :attr:`~ArrayBackend.name`."""
    missing = backend.missing_kernels()
    if missing:
        raise ValueError(
            f"backend '{backend.name}' is missing kernels: {missing}")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> ArrayBackend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown array backend '{name}' "
            f"(registered: {sorted(_REGISTRY)})") from None


def list_array_backends() -> List[str]:
    """Names of every registered array backend (CLI choices)."""
    return sorted(_REGISTRY)


# Thread-local active-backend stack over a process-wide default, so worker
# threads (the pipelined pool's collector) never see another thread's
# temporarily-pushed backend.
_DEFAULT_NAME = os.environ.get("REPRO_ARRAY_BACKEND", "numpy")
_STATE = threading.local()


def _stack() -> list:
    stack = getattr(_STATE, "stack", None)
    if stack is None:
        stack = _STATE.stack = []
    return stack


def default_backend() -> ArrayBackend:
    """The process-wide default backend (``REPRO_ARRAY_BACKEND`` or numpy)."""
    return get_backend(_DEFAULT_NAME)


def set_default_backend(spec: BackendSpec) -> str:
    """Set the process-wide default; returns the previous default's name."""
    global _DEFAULT_NAME
    previous = _DEFAULT_NAME
    _DEFAULT_NAME = resolve_backend(spec).name
    return previous


def current_backend() -> ArrayBackend:
    """The innermost :func:`use_backend` scope, else the process default."""
    stack = getattr(_STATE, "stack", None)
    if stack:
        return stack[-1]
    return default_backend()


def resolve_backend(spec: BackendSpec) -> ArrayBackend:
    """``None`` → current scope; a name → registry; an instance → itself."""
    if spec is None:
        return current_backend()
    if isinstance(spec, ArrayBackend):
        return spec
    return get_backend(spec)


@contextlib.contextmanager
def use_backend(spec: BackendSpec) -> Iterator[ArrayBackend]:
    """Scope every tensor/kernel created inside to the given backend."""
    backend = resolve_backend(spec)
    stack = _stack()
    stack.append(backend)
    try:
        yield backend
    finally:
        stack.pop()


# ----------------------------------------------------------------------
# Shared transposed-CSR cache
# ----------------------------------------------------------------------
# Every ``spmm`` backward multiplies by the transposed operator.  The
# operators are long-lived graph constants (propagation matrices, block
# diagonals), so the transpose is computed once per matrix object and shared
# across serial and batched paths.  Entries hold a strong reference to the
# source matrix: while an entry exists its id cannot be recycled, which makes
# the id key safe.  Accumulation order: a cached ``A.T.tocsr()`` product
# gathers each output row's contributions in ascending source-row order —
# exactly the order the previous per-call ``A.T @ grad`` (CSC matvec)
# accumulated in — so swapping it in is bitwise-neutral.
_TRANSPOSE_CACHE: Dict[int, tuple] = {}
_TRANSPOSE_CACHE_CAP = 64


def cached_transpose(matrix: sp.spmatrix) -> sp.csr_matrix:
    """The CSR transpose of ``matrix``, cached by object identity."""
    key = id(matrix)
    hit = _TRANSPOSE_CACHE.get(key)
    if hit is not None and hit[0] is matrix:
        return hit[1]
    if len(_TRANSPOSE_CACHE) >= _TRANSPOSE_CACHE_CAP:
        _TRANSPOSE_CACHE.clear()
    transpose = matrix.T.tocsr()
    _TRANSPOSE_CACHE[key] = (matrix, transpose)
    return transpose


def transpose_cache_size() -> int:
    """Number of cached transposes (test hook)."""
    return len(_TRANSPOSE_CACHE)


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------
from repro.autograd.backend.numpy_backend import NumpyBackend  # noqa: E402
from repro.autograd.backend.jit_backend import (  # noqa: E402
    JitBackend,
    numba_available,
)

register_backend(NumpyBackend())
register_backend(JitBackend())

if _DEFAULT_NAME not in _REGISTRY:  # pragma: no cover - env misuse guard
    raise KeyError(
        f"REPRO_ARRAY_BACKEND={_DEFAULT_NAME!r} is not a registered backend "
        f"(registered: {sorted(_REGISTRY)})")

__all__ = [
    "ArrayBackend",
    "KERNEL_NAMES",
    "cached_transpose",
    "current_backend",
    "default_backend",
    "get_backend",
    "list_array_backends",
    "numba_available",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "transpose_cache_size",
    "use_backend",
]

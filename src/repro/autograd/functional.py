"""Functional operations used by the GNN layers.

Everything here returns a :class:`~repro.autograd.tensor.Tensor` that is wired
into the autodiff graph.  Sparse propagation matrices (scipy CSR) enter the
graph as constants through :func:`spmm`.

The sparse/fused hot-path primitives (``spmm``, ``spmm_batched``, ``sddmm``,
``spmm_pattern``, ``dropout``) contain **no array math of their own**: they
dispatch to the kernel registry of the operand tensor's
:class:`~repro.autograd.backend.ArrayBackend` (``tools/check_backend_dispatch.py``
rejects bare ``np.`` calls inside them).  Activations and losses below route
through :class:`~repro.autograd.tensor.Tensor`'s backend namespace.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor, _unbroadcast, is_grad_enabled

ArrayOrTensor = Union[np.ndarray, Tensor]


def as_tensor(value: ArrayOrTensor, requires_grad: bool = False) -> Tensor:
    """Coerce a numpy array (or tensor) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


# ----------------------------------------------------------------------
# Sparse propagation
# ----------------------------------------------------------------------
def spmm(adjacency: sp.spmatrix, dense: Tensor,
         adjacency_t: Optional[sp.spmatrix] = None) -> Tensor:
    """Multiply a constant sparse matrix by a dense tensor: ``A @ X``.

    The sparse operand is treated as a constant (no gradient flows into the
    adjacency), matching how propagation matrices are used in GNNs.  Callers
    on a hot path may pass ``adjacency_t`` (a precomputed ``A.T`` in CSR
    form); otherwise the backward reuses the dispatch layer's shared
    transposed-CSR cache, so no path re-transposes per call.
    """
    if not sp.issparse(adjacency):
        raise TypeError("spmm expects a scipy sparse matrix as first operand")
    backend = dense.backend
    adjacency = backend.prepare_sparse(adjacency)
    out_data = backend.spmm(adjacency, dense.data)

    def backward(grad):
        dense._accumulate(backend.spmm_backward(adjacency, adjacency_t, grad))

    return Tensor._make(out_data, (dense,), backward)


def propagate(adjacency: Union[sp.spmatrix, np.ndarray], features: Tensor) -> Tensor:
    """Propagate ``features`` with either a sparse or dense operator."""
    if sp.issparse(adjacency):
        return spmm(adjacency, features)
    return as_tensor(adjacency).matmul(features)


def spmm_batched(adjacency: sp.spmatrix, dense: Tensor,
                 adjacency_t: Optional[sp.spmatrix] = None) -> Tensor:
    """``A @ X`` for a stacked dense tensor ``X`` of shape ``(B, n, f)``.

    ``adjacency`` is the ``(B·n, B·n)`` block-diagonal operator whose ``i``-th
    block acts on batch entry ``i`` (rows of absent nodes are all-zero).  The
    stacked tensor is routed through the 2-D :func:`spmm` kernel via
    differentiable reshapes, so one sparse product propagates every batch
    entry — the propagation step of the batched execution backend.
    """
    if dense.ndim != 3:
        raise ValueError(
            f"spmm_batched expects a (B, n, f) tensor, got shape {dense.shape}")
    batch, nodes, channels = dense.shape
    if adjacency.shape[0] != batch * nodes:
        raise ValueError(
            f"block-diagonal operator has {adjacency.shape[0]} rows, "
            f"expected {batch * nodes}")
    backend = dense.backend
    adjacency = backend.prepare_sparse(adjacency)
    out_data = backend.spmm_batched(adjacency, dense.data)

    def backward(grad):
        flat = grad.reshape(batch * nodes, channels)
        dense._accumulate(
            backend.spmm_backward(adjacency, adjacency_t,
                                  flat).reshape(batch, nodes, channels))

    return Tensor._make(out_data, (dense,), backward)


def sddmm(rows: np.ndarray, cols: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Sampled dense-dense matmul: ``out[e] = a[rows[e]] · b[cols[e]]``.

    Computes the entries of ``A Bᵀ`` only at the sampled ``(rows, cols)``
    positions — ``O(nnz · c)`` instead of ``O(n² · c)`` — and is
    differentiable in both dense operands.  This is the similarity kernel of
    the sparse-first message passing: restricted to a fixed support, the
    ``H Hᵀ`` update never materialises an ``(n, n)`` matrix.
    """
    backend = a.backend
    rows = backend.xp.asarray(rows)
    cols = backend.xp.asarray(cols)
    out_data = backend.sddmm(rows, cols, a.data, b.data)

    def backward(grad):
        grad_a, grad_b = backend.sddmm_backward(
            rows, cols, a.data, b.data, grad,
            a.requires_grad, b.requires_grad)
        if grad_a is not None:
            a._accumulate(grad_a)
        if grad_b is not None:
            b._accumulate(grad_b)

    return Tensor._make(out_data, (a, b), backward)


def spmm_pattern(pattern: sp.csr_matrix, values: Tensor,
                 dense: Tensor) -> Tensor:
    """``S(values) @ dense`` where ``S`` has the fixed CSR ``pattern``.

    Unlike :func:`spmm`, the nonzero *values* are a differentiable tensor
    (one entry per stored position of ``pattern``, in CSR order); only the
    sparsity structure is constant.  Gradients: ``d values = sddmm(grad,
    dense)`` on the pattern and ``d dense = Sᵀ grad``.
    """
    if not sp.issparse(pattern):
        raise TypeError("spmm_pattern expects a scipy sparse pattern")
    backend = dense.backend
    pattern = backend.prepare_sparse(pattern)
    if values.data.shape != (pattern.nnz,):
        raise ValueError(
            f"values must have one entry per stored element "
            f"({pattern.nnz}), got shape {values.data.shape}")
    out_data, matrix = backend.spmm_pattern(pattern, values.data, dense.data)

    def backward(grad):
        if values.requires_grad:
            values._accumulate(
                backend.spmm_pattern_backward_values(pattern, grad,
                                                     dense.data))
        if dense.requires_grad:
            dense._accumulate(backend.spmm_pattern_backward_dense(matrix,
                                                                  grad))

    return Tensor._make(out_data, (values, dense), backward)


# ----------------------------------------------------------------------
# Activations / normalisations
# ----------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    mask = x.data > 0
    scale = mask + (~mask) * negative_slope
    out_data = x.data * scale

    def backward(grad):
        x._accumulate(grad * scale)

    return Tensor._make(out_data, (x,), backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    mask = x.data > 0
    exp_part = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    out_data = np.where(mask, x.data, exp_part)

    def backward(grad):
        local = np.where(mask, 1.0, exp_part + alpha)
        x._accumulate(grad * local)

    return Tensor._make(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad):
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp
    probs = np.exp(out_data)

    def backward(grad):
        x._accumulate(grad - probs * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool = True,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout.  A no-op when ``training`` is False or ``p == 0``.

    An *active* dropout (training, ``0 < p < 1``) requires an explicit
    seeded generator: the old ``rng=None`` fallback silently drew from an
    unseeded ``np.random.default_rng()``, making runs unreproducible.
    Layers thread their own seeded generator
    (:class:`repro.nn.layers.Dropout` owns one per module).
    """
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    if rng is None:
        raise ValueError(
            "active dropout requires an explicit random generator; pass "
            "rng= (e.g. the owning module's seeded generator) instead of "
            "relying on the removed unseeded default_rng() fallback")
    backend = x.backend
    mask = backend.dropout_mask(rng, x.data.shape, p)
    out_data = backend.apply_mask(x.data, mask)

    def backward(grad):
        x._accumulate(backend.apply_mask(grad, mask))

    return Tensor._make(out_data, (x,), backward)


# ----------------------------------------------------------------------
# Combination helpers
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack_mean(tensors: Sequence[Tensor]) -> Tensor:
    """Average a list of equally-shaped tensors."""
    total = tensors[0]
    for tensor in tensors[1:]:
        total = total + tensor
    return total * (1.0 / len(tensors))


# ----------------------------------------------------------------------
# Losses
# ----------------------------------------------------------------------
def cross_entropy(logits: Tensor, labels: np.ndarray,
                  mask: Optional[np.ndarray] = None) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer ``labels``.

    Parameters
    ----------
    logits:
        Shape ``(n, num_classes)``.
    labels:
        Integer class ids of shape ``(n,)``.
    mask:
        Optional boolean or index mask selecting the supervised rows.
    """
    labels = np.asarray(labels)
    if mask is not None:
        mask = np.asarray(mask)
        if mask.dtype == bool:
            idx = np.nonzero(mask)[0]
        else:
            idx = mask
    else:
        idx = np.arange(logits.data.shape[0])
    if idx.size == 0:
        raise ValueError("cross_entropy received an empty supervision mask")

    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[idx, labels[idx]]
    return -picked.mean()


def nll_loss(log_probs: Tensor, labels: np.ndarray,
             mask: Optional[np.ndarray] = None) -> Tensor:
    """Negative log-likelihood given already log-softmaxed inputs."""
    labels = np.asarray(labels)
    if mask is not None:
        mask = np.asarray(mask)
        idx = np.nonzero(mask)[0] if mask.dtype == bool else mask
    else:
        idx = np.arange(log_probs.data.shape[0])
    picked = log_probs[idx, labels[idx]]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: ArrayOrTensor) -> Tensor:
    target = as_tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def frobenius_loss(prediction: Tensor, target: ArrayOrTensor) -> Tensor:
    """Frobenius-norm discrepancy ``||A - B||_F`` used as knowledge loss."""
    target = as_tensor(target)
    diff = prediction - target.detach()
    return ((diff * diff).sum() + 1e-12) ** 0.5


def l2_regularisation(tensors: Sequence[Tensor]) -> Tensor:
    """Sum of squared entries of every tensor (weight decay term)."""
    total = None
    for tensor in tensors:
        term = (tensor * tensor).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total

"""Generic federated training loop with pluggable execution and aggregation.

The trainer owns a list of :class:`~repro.federated.client.Client` objects and
a :class:`~repro.federated.server.Server`, and composes two engine plug-ins
(:mod:`repro.federated.engine`):

* an :class:`~repro.federated.engine.ExecutionBackend` that runs the local
  epochs of every selected participant (``serial`` / ``process_pool`` /
  ``batched``, selected via :attr:`FederatedConfig.backend`);
* an :class:`~repro.federated.engine.AggregationStrategy` that combines the
  uploaded states and decides what each client receives back (``fedavg`` /
  ``topology_weighted`` / ``trimmed_mean`` / method-specific, selected via
  :attr:`FederatedConfig.aggregation`).

Subclasses customise behaviour by declaring a strategy (FED-PUB and GCFL+
are single strategy declarations now) or overriding the hooks:

* :meth:`aggregate` / :meth:`personalize` — thin delegations to the strategy;
* :meth:`before_round` / :meth:`after_round` — cross-client interactions
  (pseudo-label sharing, neighbour generation, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.autograd import use_backend
from repro.federated.client import Client
from repro.federated.communication import CommunicationTracker
from repro.federated.engine import (
    AggregationContext,
    AggregationStrategy,
    ExecutionBackend,
    make_aggregation,
    make_backend,
)
from repro.federated.server import Server
from repro.graph import Graph
from repro.metrics import TrainingHistory
from repro.nn import Module

#: stream key that separates participant selection from every other use of
#: the run seed, so changing ``participation`` can never perturb training
#: RNG parity (model init, dropout, ...).
_PARTICIPATION_STREAM = 0x9E3779B9


def participation_rng(seed: int) -> np.random.Generator:
    """The dedicated seeded stream participant subsampling draws from."""
    return np.random.default_rng(
        np.random.SeedSequence([int(seed), _PARTICIPATION_STREAM]))


def select_participant_ids(rng: np.random.Generator, total: int,
                           fraction: float) -> List[int]:
    """Pick this round's participant ids (sorted) out of ``range(total)``.

    ``fraction < 1.0`` floors the count and caps it at ``total - 1``, so a
    partial-participation request can never silently select 100% of the
    clients however small ``total`` is; the floor is clamped up to one
    participant.  ``fraction >= 1.0`` selects everyone without consuming
    randomness.
    """
    if total <= 0:
        raise ValueError("participant selection needs at least one client")
    if fraction >= 1.0:
        return list(range(total))
    count = max(1, min(int(fraction * total), total - 1)) if total > 1 else 1
    chosen = rng.choice(total, size=count, replace=False)
    return sorted(int(index) for index in chosen)


def resolve_checkpoint_path(spec: str,
                            checkpoint_dir: str = "checkpoints") -> str:
    """Resolve a checkpoint spec to a concrete file path.

    ``"latest"`` names the ``latest.ckpt`` pointer :meth:`FederatedTrainer.
    save_checkpoint` refreshes on every write, resolved inside
    ``checkpoint_dir``; anything else is returned verbatim.  Trainer resume
    (``resume_from="latest"``) and serving-snapshot export
    (:meth:`repro.serving.ServingSnapshot.from_checkpoint`) share this one
    helper so their notion of "the newest checkpoint" can never drift.
    """
    import os

    if spec == "latest":
        path = os.path.join(checkpoint_dir, "latest.ckpt")
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"resume_from='latest' but '{checkpoint_dir}' has no "
                f"latest.ckpt — no checkpoint was ever written there")
        return path
    return spec


@dataclass
class FederatedConfig:
    """Hyperparameters of federated collaborative training.

    ``backend`` selects the execution backend for local training (``serial``,
    ``process_pool`` — sized by ``num_workers`` — or ``batched``) and
    ``aggregation`` the server-side combination strategy; both accept either
    a registry name or a ready-made instance.  ``intra_worker`` controls how
    a persistent process-pool worker trains its resident client shard:
    ``"auto"``/``"batched"`` fuse the shard through the batched engine when
    possible, ``"serial"`` pins the per-client loop.

    ``round_mode`` selects the round discipline on the process pool:
    ``"sync"`` (default) runs pipelined-but-exact rounds — streaming
    aggregation and evaluation overlapped with worker training, histories
    bitwise-identical to serial; ``"async"`` runs bounded-staleness
    asynchronous rounds sealed after ``async_buffer`` shard reports, with
    staleness-discounted merging and reports older than ``staleness_cap``
    server rounds dropped (see :mod:`repro.federated.engine.pipeline`).
    ``delta_codec`` picks the upload transport of the persistent pool:
    ``"bitdelta"`` (lossless IEEE-754 bit deltas), ``"topk"`` (only the
    ``delta_top_k`` largest-magnitude delta entries per parameter, with
    worker-side error feedback) or ``"qtopk"`` (top-k entries additionally
    quantised to ``delta_bits`` bits per value on a uniform grid, the
    quantisation error joining the error feedback).  ``worker_speeds``
    assigns simulated relative speeds to the pool's workers (straggler
    experiments and deterministic async runs).

    Fault tolerance (see the README's fault-tolerance section):
    ``on_worker_failure`` sets the pool's crash policy — ``"fail"``
    (default: a dead worker aborts the run), ``"restart"`` (respawn the
    worker in place) or ``"redistribute"`` (retire it and spread its
    resident clients over the survivors); either recovery re-bootstraps the
    lost clients from coordinator-side snapshots.  ``round_timeout``
    (seconds) drops shards that miss the round deadline — the aggregate
    reweights over the actual reporters, drops are counted in
    ``TrainingHistory.client_drops``.  ``checkpoint_every`` > 0 writes a
    resumable checkpoint to ``checkpoint_dir`` every that many rounds;
    ``resume_from`` restores one before training continues (bitwise on the
    serial and sync-pipeline paths).  ``fault_plan`` injects a seeded
    :class:`~repro.federated.engine.faults.FaultPlan` for chaos testing.
    """

    rounds: int = 20
    local_epochs: int = 3
    lr: float = 0.01
    weight_decay: float = 5e-4
    participation: float = 1.0
    seed: int = 0
    eval_every: int = 1
    backend: Union[str, ExecutionBackend] = "serial"
    #: array backend every client's local math runs under (``numpy`` — the
    #: bitwise reference — or ``jit``); orthogonal to the execution
    #: ``backend`` above, and applied uniformly across serial, batched,
    #: persistent-pool and hierarchical paths.  ``None`` inherits the
    #: process default (``REPRO_ARRAY_BACKEND``, else ``numpy``).
    array_backend: Optional[str] = None
    num_workers: int = 0
    intra_worker: str = "auto"
    #: process-pool workers act as edge aggregators: each folds its shard's
    #: trained states locally and ships one pre-aggregated fixed-point
    #: partial up per round, so coordinator fold work and traffic are
    #: O(workers) instead of O(clients).  Bitwise-equal to flat FedAvg
    #: (sync rounds, streaming-capable strategies, lossless transport).
    hierarchical: bool = False
    aggregation: Union[str, AggregationStrategy] = "fedavg"
    round_mode: str = "sync"
    async_buffer: int = 1
    staleness_cap: int = 3
    delta_codec: str = "bitdelta"
    delta_top_k: int = 32
    delta_bits: int = 8
    worker_speeds: Optional[Sequence[float]] = None
    #: coordinator↔worker channel of the process pool: ``"pipe"`` (default,
    #: the bitwise parity reference) or ``"tcp"`` (framed sockets with CRC,
    #: heartbeats and reconnect — workers may live in other processes or on
    #: other hosts).  Sync-path histories are bitwise-equal across the two.
    transport: str = "pipe"
    #: keyword options for the transport factory (TCP knobs such as
    #: ``heartbeat_timeout``, ``mode="external"``, or a ``wan`` link spec)
    transport_options: Optional[Dict] = None
    on_worker_failure: str = "fail"
    round_timeout: Optional[float] = None
    checkpoint_every: int = 0
    checkpoint_dir: str = "checkpoints"
    resume_from: Optional[str] = None
    fault_plan: Optional[object] = None


class FederatedTrainer:
    """Standard federated collaborative training over client subgraphs."""

    #: label used in communication accounting and Table VIII
    name = "FedAvg"

    def __init__(self, subgraphs: Sequence[Graph],
                 model_factory: Callable[[Graph], Module],
                 config: Optional[FederatedConfig] = None):
        self.config = config or FederatedConfig()
        self.server = Server()
        self.tracker = CommunicationTracker()
        self.history = TrainingHistory()
        self._rng = np.random.default_rng(self.config.seed)
        self._participation_rng = participation_rng(self.config.seed)
        self.clients: List[Client] = []
        # Client construction runs under the configured array backend so
        # factory-built parameters and feature tensors land on it, whatever
        # the factory (generic factories need no backend awareness).
        with use_backend(self.config.array_backend):
            for index, graph in enumerate(subgraphs):
                model = model_factory(graph)
                client = Client(
                    client_id=index, graph=graph, model=model,
                    lr=self.config.lr, weight_decay=self.config.weight_decay,
                    local_epochs=self.config.local_epochs,
                    array_backend=self.config.array_backend)
                self.clients.append(client)
        if not self.clients:
            raise ValueError("federated training requires at least one client")
        # All clients start from identical weights (the usual FL convention).
        initial = self.clients[0].get_weights()
        for client in self.clients[1:]:
            client.set_weights(initial)
        # Engine plug-ins.  Subclasses may replace ``strategy`` after
        # ``super().__init__`` to declare a method-specific aggregation.
        self.strategy: AggregationStrategy = make_aggregation(
            self.config.aggregation)
        self.backend: ExecutionBackend = make_backend(
            self.config.backend, num_workers=self.config.num_workers,
            intra_worker=self.config.intra_worker,
            hierarchical=self.config.hierarchical,
            delta_codec=self.config.delta_codec,
            delta_top_k=self.config.delta_top_k,
            delta_bits=self.config.delta_bits,
            worker_speeds=self.config.worker_speeds,
            transport=self.config.transport,
            transport_options=self.config.transport_options,
            on_worker_failure=self.config.on_worker_failure,
            round_timeout=self.config.round_timeout,
            fault_plan=self.config.fault_plan)
        if self.config.hierarchical \
                and not getattr(self.backend, "hierarchical", False):
            # make_backend filters kwargs by signature, so an incapable
            # backend silently ignores the flag — fail loudly instead.
            raise ValueError(
                "hierarchical=True requires the process_pool backend "
                f"(got '{self.backend.name}')")
        self.backend.bind(self)
        self._context: Optional[AggregationContext] = None
        #: rounds already in the history (non-zero after a checkpoint resume)
        self._completed_rounds = 0
        self._resume_applied = False
        #: when True (the default) :meth:`run` releases the backend's
        #: resources as soon as it returns — the legacy standalone behaviour.
        #: Entering the trainer as a context manager defers the release to
        #: ``__exit__`` so persistent worker pools survive across phases
        #: (e.g. AdaFGL Step 1 → Step 2) and repeated ``run`` calls.
        self.close_backend_after_run = True

    # ------------------------------------------------------------------
    # Resource management
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down backend resources (worker pools, plans); idempotent."""
        self.backend.close()

    def __enter__(self) -> "FederatedTrainer":
        self.close_backend_after_run = False
        return self

    def __exit__(self, exc_type, exc_value, exc_traceback) -> None:
        # Restore standalone semantics: a run() issued after the block ends
        # must release whatever pool it respawns.
        self.close_backend_after_run = True
        self.close()

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def before_round(self, round_index: int,
                     participants: List[Client]) -> None:
        """Cross-client interaction hook executed before local training."""

    def after_round(self, round_index: int,
                    participants: List[Client]) -> None:
        """Hook executed after aggregation and broadcasting."""

    def aggregate(self, states: List[Dict[str, np.ndarray]],
                  weights: List[float],
                  participants: List[Client]) -> Dict[str, np.ndarray]:
        """Combine uploaded client states (delegates to the strategy)."""
        global_state = self.strategy.aggregate(states, weights, self._context)
        self.server.commit(global_state)
        return global_state

    def personalize(self, client: Client,
                    global_state: Dict[str, np.ndarray]
                    ) -> Dict[str, np.ndarray]:
        """Return the state this client should load (strategy-decided)."""
        return self.strategy.personalize(client, global_state, self._context)

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def _select_participant_ids(self) -> List[int]:
        """This round's participant ids, drawn from the dedicated stream.

        Id-based so callers scaling past resident ``Client`` objects (the
        lazy client store) share the exact selection sequence.
        """
        return select_participant_ids(self._participation_rng,
                                      len(self.clients),
                                      self.config.participation)

    def _select_participants(self) -> List[Client]:
        return [self.clients[i] for i in self._select_participant_ids()]

    def run(self, rounds: Optional[int] = None) -> TrainingHistory:
        """Execute federated collaborative training and return the history."""
        rounds = rounds if rounds is not None else self.config.rounds
        if self.config.resume_from and not self._resume_applied:
            self.load_checkpoint(self.config.resume_from)
        else:
            # A fresh (non-resume) run always starts from round 1 — a
            # trainer re-run keeps its pre-checkpoint semantics of training
            # the full schedule again.
            self._completed_rounds = 0
        try:
            self._run_rounds(rounds)
        except BaseException:
            # Never leak worker pools when a run dies mid-round, even when
            # the trainer is used without a ``with`` block.
            self.close()
            raise
        if self.close_backend_after_run:
            self.close()
        return self.history

    def _run_rounds(self, rounds: int) -> None:
        from repro.federated.engine.pipeline import resolve_round_loop

        # The process pool gets a pipelined loop (streaming aggregation and
        # eval overlapped with worker training; async when configured);
        # everything else — and trainers overriding the round hooks — keeps
        # the reference lockstep loop below.  Sync pipelining is an
        # execution detail: histories are bitwise-identical either way.
        loop = resolve_round_loop(self)
        if loop is not None:
            loop.run(rounds)
            return
        self._run_rounds_lockstep(rounds)

    def _run_rounds_lockstep(self, rounds: int) -> None:
        for round_index in range(self._completed_rounds + 1, rounds + 1):
            participants = self._select_participants()
            self.history.record_participants(
                round_index, [client.client_id for client in participants])
            self._context = AggregationContext(
                round_index=round_index, participants=participants,
                trainer=self)
            self.before_round(round_index, participants)

            losses = self.backend.run_local_training(participants)

            states, weights = [], []
            for client in participants:
                state = client.get_weights()
                states.append(state)
                weights.append(client.num_samples)
                self.tracker.record_upload(
                    "model_parameters", sum(v.size for v in state.values()))

            global_state = self.aggregate(states, weights, participants)

            for client in self.clients:
                personalized = self.personalize(client, global_state)
                client.set_weights(personalized)
                self.tracker.record_download(
                    "model_parameters",
                    sum(v.size for v in personalized.values()))
            self.tracker.next_round()

            self.after_round(round_index, participants)

            if round_index % self.config.eval_every == 0 \
                    or round_index == rounds:
                # Shared with the pipelined loops: one recording path keeps
                # the bitwise-parity guarantee a single point of truth.
                from repro.federated.engine.pipeline import _record_eval

                _record_eval(self, round_index, losses)
            self._completed_rounds = round_index
            self._maybe_checkpoint(round_index)

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def _maybe_checkpoint(self, round_index: int) -> None:
        """Write a checkpoint when the round hits the configured cadence."""
        every = self.config.checkpoint_every
        if every and round_index % every == 0:
            self.save_checkpoint(round_index)

    def checkpoint_path(self, round_index: int) -> str:
        """Default on-disk location of a given round's checkpoint."""
        import os

        return os.path.join(self.config.checkpoint_dir,
                            f"round_{round_index:04d}.ckpt")

    def save_checkpoint(self, round_index: Optional[int] = None,
                        path: Optional[str] = None) -> str:
        """Persist the full mid-run training state; returns the file path.

        The checkpoint carries everything a bitwise-identical resume needs:
        every client's weights, optimizer moments and RNG streams (pulled
        back from the worker pool first), the server's global state and
        round counter, the aggregation strategy's cross-round state (e.g.
        FedOpt moments), the participant-selection RNG, the recorded
        history and the communication tracker.  Format: a pickled dict with
        a ``format`` version field, written atomically (temp file +
        ``os.replace``); ``latest.ckpt`` in ``checkpoint_dir`` always names
        the newest one.
        """
        import os
        import pickle

        from repro.federated.engine.backends import snapshot_client_state

        round_index = self._completed_rounds if round_index is None \
            else int(round_index)
        self.backend.sync_for_checkpoint()
        history = self.history
        payload = {
            "format": 1,
            "trainer": self.name,
            "round": round_index,
            "clients": {
                client.client_id: snapshot_client_state(
                    client, include_weights=True)
                for client in self.clients},
            "server": {"global_state": self.server.global_state,
                       "round": self.server.round},
            "strategy": self.strategy.state_dict(),
            "trainer_rng": self._rng.bit_generator.state,
            "participation_rng": self._participation_rng.bit_generator.state,
            "history": {
                "rounds": list(history.rounds),
                "train_accuracy": list(history.train_accuracy),
                "test_accuracy": list(history.test_accuracy),
                "loss": list(history.loss),
                "client_accuracy": [dict(d) for d in
                                    history.client_accuracy],
                "client_lag": [dict(d) for d in history.client_lag],
                "client_round_sec": [dict(d) for d in
                                     history.client_round_sec],
                "client_drops": dict(history.client_drops),
                "participants": {int(r): list(ids) for r, ids in
                                 history.participants.items()},
            },
            "tracker": {"uploaded": dict(self.tracker.uploaded),
                        "downloaded": dict(self.tracker.downloaded),
                        "rounds": self.tracker.rounds},
        }
        if path is None:
            os.makedirs(self.config.checkpoint_dir, exist_ok=True)
            path = self.checkpoint_path(round_index)
        temp = f"{path}.tmp"
        with open(temp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp, path)
        latest = os.path.join(os.path.dirname(path) or ".", "latest.ckpt")
        with open(f"{latest}.tmp", "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(f"{latest}.tmp", latest)
        return path

    def load_checkpoint(self, path: str) -> int:
        """Restore a :meth:`save_checkpoint` file; returns its round index.

        ``path="latest"`` resolves to ``latest.ckpt`` in the configured
        ``checkpoint_dir`` (see :func:`resolve_checkpoint_path`).  The next
        :meth:`run` continues from the checkpointed round — on the serial
        and sync-pipeline paths bitwise-identically to the run that was
        interrupted.
        """
        import pickle

        from repro.federated.engine.backends import restore_client_state

        path = resolve_checkpoint_path(path, self.config.checkpoint_dir)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        version = payload.get("format")
        if version != 1:
            raise ValueError(
                f"unsupported checkpoint format {version!r} in {path}")
        snapshots = payload["clients"]
        known = {client.client_id for client in self.clients}
        if set(snapshots) != known:
            raise ValueError(
                f"checkpoint {path} covers clients "
                f"{sorted(snapshots)}, trainer has {sorted(known)}")
        # Drop any pool-resident state from a previous run segment: clients
        # are re-bootstrapped from the restored mirrors on the next round.
        self.backend.close()
        for client in self.clients:
            restore_client_state(client, snapshots[client.client_id],
                                 include_weights=True)
        self.server.global_state = payload["server"]["global_state"]
        self.server.round = payload["server"]["round"]
        self.strategy.load_state_dict(payload["strategy"])
        self._rng.bit_generator.state = payload["trainer_rng"]
        if "participation_rng" in payload:
            self._participation_rng.bit_generator.state = \
                payload["participation_rng"]
        saved = payload["history"]
        history = self.history
        history.rounds[:] = saved["rounds"]
        history.train_accuracy[:] = saved["train_accuracy"]
        history.test_accuracy[:] = saved["test_accuracy"]
        history.loss[:] = saved["loss"]
        history.client_accuracy[:] = [dict(d) for d in
                                      saved["client_accuracy"]]
        history.client_lag[:] = [dict(d) for d in saved["client_lag"]]
        history.client_round_sec[:] = [dict(d) for d in
                                       saved["client_round_sec"]]
        history.client_drops.clear()
        history.client_drops.update(saved["client_drops"])
        history.participants.clear()
        history.participants.update(
            {int(r): list(ids) for r, ids in
             saved.get("participants", {}).items()})
        self.tracker.uploaded.clear()
        self.tracker.uploaded.update(payload["tracker"]["uploaded"])
        self.tracker.downloaded.clear()
        self.tracker.downloaded.update(payload["tracker"]["downloaded"])
        self.tracker.rounds = payload["tracker"]["rounds"]
        self._completed_rounds = payload["round"]
        self._resume_applied = True
        return self._completed_rounds

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, split: str = "test") -> float:
        """Test-node-weighted average accuracy across all clients."""
        total_correct_weight = 0.0
        total_nodes = 0
        for client in self.clients:
            mask = getattr(client.graph, f"{split}_mask")
            count = int(mask.sum())
            if count == 0:
                continue
            total_correct_weight += client.evaluate(split) * count
            total_nodes += count
        if total_nodes == 0:
            return 0.0
        return total_correct_weight / total_nodes

    def client_reports(self, split: str = "test"):
        """Per-client accuracy breakdown (Fig. 2(d))."""
        from repro.graph import edge_homophily
        from repro.metrics import ClientReport

        reports = []
        for client in self.clients:
            mask = getattr(client.graph, f"{split}_mask")
            reports.append(ClientReport(
                client_id=client.client_id,
                num_nodes=client.graph.num_nodes,
                num_test_nodes=int(mask.sum()),
                accuracy=client.evaluate(split),
                homophily=edge_homophily(client.graph.adjacency,
                                         client.graph.labels),
            ))
        return reports

    @property
    def global_state(self) -> Dict[str, np.ndarray]:
        """The latest aggregated global model (the federated knowledge)."""
        return self.server.broadcast()

"""Federated client: a private subgraph plus a local model and optimizer."""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.autograd import Tensor, functional as F, no_grad, resolve_backend, use_backend
from repro.graph import Graph
from repro.metrics import masked_accuracy
from repro.nn import Module
from repro.optim import Adam, clip_grad_norm


class Client:
    """One participant of federated training.

    Parameters
    ----------
    client_id:
        Integer identifier.
    graph:
        The locally-held private subgraph (never leaves the client).
    model:
        Local model instance; its architecture must match every other client
        so that FedAvg can average parameters.
    lr / weight_decay / local_epochs:
        Local optimisation hyperparameters.
    extra_loss:
        Optional callable ``(client, logits) -> Tensor`` adding a method
        specific regulariser (used by FedGL pseudo-labels, FedSage+ NeighGen
        losses, AdaFGL knowledge preservation, ...).
    array_backend:
        Array backend every local forward/backward runs under (name,
        instance, or ``None`` for the process default).  Stored as a name so
        clients pickle cleanly to pool workers.
    """

    def __init__(self, client_id: int, graph: Graph, model: Module,
                 lr: float = 0.01, weight_decay: float = 5e-4,
                 local_epochs: int = 5,
                 extra_loss: Optional[Callable] = None,
                 array_backend=None):
        self.client_id = client_id
        self.graph = graph
        self.model = model
        self.lr = lr
        self.weight_decay = weight_decay
        self.local_epochs = local_epochs
        self.extra_loss = extra_loss
        self.array_backend = resolve_backend(array_backend).name
        self.optimizer = Adam(model.parameters(), lr=lr,
                              weight_decay=weight_decay)
        self._features = Tensor(graph.features, backend=self.array_backend)
        # Probability cache: predict() is deterministic given the weights, so
        # one eval tick (global train/test accuracy + per-client breakdown)
        # costs a single forward pass.  ``_weights_version`` is bumped by
        # anything that mutates the model through the client API.
        self._weights_version = 0
        self._prob_cache: Optional[tuple] = None

    def __getstate__(self):
        # Never ship the prediction cache across process boundaries (the
        # process-pool backend pickles whole clients).
        state = self.__dict__.copy()
        state["_prob_cache"] = None
        return state

    # ------------------------------------------------------------------
    # Weights exchange
    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        """FedAvg weighting: number of labelled training nodes."""
        return max(1, int(self.graph.train_mask.sum()))

    def get_weights(self) -> Dict[str, np.ndarray]:
        return self.model.state_dict()

    def set_weights(self, state: Dict[str, np.ndarray]) -> None:
        self.model.load_state_dict(state)
        self._weights_version += 1

    def load_state(self, snapshot: Dict) -> None:
        """Restore a :func:`~repro.federated.engine.backends.
        snapshot_client_state` payload (weights, optimizer moments, RNG
        streams) through the client API.

        This is the supported way to rehydrate a client from a checkpoint
        or serving snapshot outside a trainer: unlike poking
        ``model.load_state_dict`` directly, it also drops the prediction
        cache, so a stale pre-restore :meth:`predict` result can never be
        served against the restored weights.
        """
        from repro.federated.engine.backends import restore_client_state

        restore_client_state(self, snapshot, include_weights=True)

    # ------------------------------------------------------------------
    # Local training / inference
    # ------------------------------------------------------------------
    def forward(self) -> Tensor:
        return self.model(self._features, self.graph.adjacency)

    def local_train(self, epochs: Optional[int] = None) -> float:
        """Run local supervised epochs; returns the mean training loss."""
        epochs = epochs if epochs is not None else self.local_epochs
        self.model.train()
        losses = []
        labels = self.graph.labels
        mask = self.graph.train_mask
        with use_backend(self.array_backend):
            for _ in range(epochs):
                self.optimizer.zero_grad()
                logits = self.forward()
                loss = F.cross_entropy(logits, labels, mask=mask)
                if self.extra_loss is not None:
                    extra = self.extra_loss(self, logits)
                    if extra is not None:
                        loss = loss + extra
                loss.backward()
                clip_grad_norm(self.model.parameters(), 5.0)
                self.optimizer.step()
                losses.append(loss.item())
        if epochs:
            self._weights_version += 1
        return float(np.mean(losses)) if losses else 0.0

    def predict(self) -> np.ndarray:
        """Class-probability predictions for every local node.

        Deterministic given the current weights (eval mode, no dropout), so
        the result is cached until :meth:`set_weights` / :meth:`local_train`
        mutate the model; callers must treat the array as read-only.
        """
        if self._prob_cache is not None \
                and self._prob_cache[0] == self._weights_version:
            return self._prob_cache[1]
        self.model.eval()
        with no_grad(), use_backend(self.array_backend):
            logits = self.forward()
            probs = F.softmax(logits, axis=-1).numpy()
        self.model.train()
        self._prob_cache = (self._weights_version, probs)
        return probs

    def predict_labels(self) -> np.ndarray:
        """Argmax class ids of :meth:`predict`, cached with the same key.

        One evaluation tick asks for accuracies on several splits; caching
        the argmax alongside the probabilities keeps that a single pass.
        """
        probs = self.predict()
        cached = self._prob_cache
        if len(cached) < 3:
            self._prob_cache = cached = (*cached, probs.argmax(axis=1))
        return cached[2]

    def evaluate(self, split: str = "test") -> float:
        """Accuracy on the requested split (``train``/``val``/``test``)."""
        mask = getattr(self.graph, f"{split}_mask")
        if mask.sum() == 0:
            return 0.0
        return masked_accuracy(self.predict_labels(), self.graph.labels,
                               mask)

    def invalidate_cache(self) -> None:
        """Drop cached predictions (after out-of-band weight mutation)."""
        self._prob_cache = None
        self._weights_version += 1

    def reset_optimizer(self) -> None:
        """Re-create optimizer state (after receiving fresh global weights)."""
        self.optimizer = Adam(self.model.parameters(), lr=self.lr,
                              weight_decay=self.weight_decay)

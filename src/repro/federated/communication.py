"""Communication-volume accounting used for the Table VIII comparison.

Every federated method exchanges model parameters; some additionally ship
node embeddings, predictions, gradients or masks.  The tracker records the
number of float values uploaded/downloaded per round so that the paradigm
comparison (Table VIII) can be backed by measured numbers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CommunicationTracker:
    """Counts float values exchanged between clients and the server."""

    uploaded: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    downloaded: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    rounds: int = 0

    def record_upload(self, kind: str, num_values: float) -> None:
        self.uploaded[kind] += float(num_values)

    def record_download(self, kind: str, num_values: float) -> None:
        self.downloaded[kind] += float(num_values)

    def next_round(self) -> None:
        self.rounds += 1

    @property
    def total_uploaded(self) -> float:
        return float(sum(self.uploaded.values()))

    @property
    def total_downloaded(self) -> float:
        return float(sum(self.downloaded.values()))

    @property
    def total(self) -> float:
        return self.total_uploaded + self.total_downloaded

    def per_round(self) -> float:
        return self.total / max(1, self.rounds)

    def summary(self) -> Dict[str, float]:
        return {
            "rounds": self.rounds,
            "uploaded": self.total_uploaded,
            "downloaded": self.total_downloaded,
            "total": self.total,
            "per_round": self.per_round(),
            "kinds": sorted(set(self.uploaded) | set(self.downloaded)),
        }

"""Deterministic fault injection for the persistent-worker federation engine.

Production federations fail in a handful of canonical ways — a worker
process dies mid-round, a straggler blows through the round deadline, a
payload arrives corrupted or not at all — and every recovery path the
engine grows for them must be *testable*.  This module provides the
reproducible chaos source:

* :class:`FaultEvent` — one scheduled failure, addressed by ``(worker,
  dispatch)`` where ``dispatch`` is the 1-based count of ``train`` commands
  the coordinator has sent to that worker.  Counting dispatches (not wall
  time) makes the schedule exact under both the sync pipeline and the
  virtual-clock async loop.
* :class:`FaultPlan` — a one-shot schedule of events.  Build it explicitly
  for targeted tests or via :meth:`FaultPlan.seeded` for rate-based chaos
  sweeps; either way two plans built from the same inputs fire identically.
* :func:`payload_checksum` — a deterministic CRC over the delta payload
  structures the pool ships (bit-delta dicts, stacked shard deltas, top-k
  tuples), used by the coordinator to detect corrupted uploads and request
  a single resend.

Fault kinds
-----------
``"crash"``
    The worker process exits (``os._exit``) instead of answering — the
    coordinator sees a dead pipe and runs the ``on_worker_failure`` policy.
``"stall"``
    The worker sleeps ``duration`` seconds before replying — the straggler
    that a ``round_timeout`` drops from the round.
``"corrupt"``
    The reply's delta payload is mutated in transit (coordinator side) so
    the checksum verification fails and the retry path runs.
``"drop"``
    The reply's payload is discarded in transit; the coordinator requests
    the worker's cached reply once.
``"corrupt_down"``
    The *downlink* train broadcast is mutated before it leaves the
    coordinator; the worker's checksum verification fails and it asks for
    one clean resend (the mirror image of ``"corrupt"``).
``"delay"`` / ``"partition"`` / ``"reorder"`` / ``"drop_msg"``
    Network events applied at the transport channel (TCP only): hold the
    next frame for ``duration`` seconds, sever the link for ``duration``
    seconds (reconnect + session resume must recover), swap the next two
    frames, or lose the next frame's first transmission (retransmit
    recovers).  The ``pipe`` transport has no wire to disturb, so backends
    reject plans carrying network kinds unless ``transport="tcp"``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: the failure modes a plan may schedule
FAULT_KINDS = ("crash", "stall", "corrupt", "drop", "corrupt_down",
               "delay", "partition", "reorder", "drop_msg")

#: fault kinds executed inside the worker process (shipped with the payload)
WORKER_KINDS = ("crash", "stall")

#: fault kinds applied at the coordinator's transport seam (reply path)
TRANSPORT_KINDS = ("corrupt", "drop")

#: fault kinds applied to the coordinator's outgoing train broadcast
DOWNLINK_KINDS = ("corrupt_down",)

#: fault kinds injected into the transport channel itself (TCP links only)
NETWORK_KINDS = ("delay", "partition", "reorder", "drop_msg")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure: fires when ``worker`` receives its
    ``dispatch``-th ``train`` command (1-based)."""

    worker: int
    dispatch: int
    kind: str
    duration: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}")
        if self.worker < 0:
            raise ValueError("worker index must be >= 0")
        if self.dispatch < 1:
            raise ValueError("dispatch index is 1-based (must be >= 1)")
        if self.kind == "stall" and self.duration <= 0:
            raise ValueError("stall events need a positive duration")
        if self.kind in ("delay", "partition") and self.duration <= 0:
            raise ValueError(
                f"{self.kind} events need a positive duration")


class FaultPlan:
    """A one-shot, reproducible schedule of :class:`FaultEvent`.

    Events are keyed by ``(worker, dispatch)`` and **fire at most once**:
    :meth:`take` removes them from the schedule and appends them to
    :attr:`fired`, so a recovered worker's re-dispatch of the same shard is
    not re-killed by the same event (a seeded plan may of course schedule a
    *later* event for it — cascading failures are legitimate chaos).
    """

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self._events: Dict[Tuple[int, int], List[FaultEvent]] = {}
        for event in events:
            self._events.setdefault((event.worker, event.dispatch),
                                    []).append(event)
        #: events that have fired, in firing order (for stats/debugging)
        self.fired: List[FaultEvent] = []

    # ------------------------------------------------------------------
    @classmethod
    def seeded(cls, seed: int, num_workers: int, dispatches: int,
               crash_rate: float = 0.0, stall_rate: float = 0.0,
               corrupt_rate: float = 0.0, drop_rate: float = 0.0,
               stall_duration: float = 1.0,
               first_dispatch: int = 2) -> "FaultPlan":
        """Rate-based chaos: at most one event per ``(worker, dispatch)``.

        For every worker × dispatch cell (``dispatch`` starting at
        ``first_dispatch`` so the bootstrap round establishes a baseline),
        one uniform draw decides which fault — if any — fires there, with
        the four rates partitioning the unit interval.  Identical inputs
        produce identical plans.
        """
        total = crash_rate + stall_rate + corrupt_rate + drop_rate
        if total > 1.0:
            raise ValueError("fault rates must sum to <= 1.0")
        rng = np.random.default_rng(seed)
        events = []
        for worker in range(num_workers):
            for dispatch in range(first_dispatch, dispatches + 1):
                draw = rng.random()
                if draw < crash_rate:
                    events.append(FaultEvent(worker, dispatch, "crash"))
                elif draw < crash_rate + stall_rate:
                    events.append(FaultEvent(worker, dispatch, "stall",
                                             duration=stall_duration))
                elif draw < crash_rate + stall_rate + corrupt_rate:
                    events.append(FaultEvent(worker, dispatch, "corrupt"))
                elif draw < total:
                    events.append(FaultEvent(worker, dispatch, "drop"))
        return cls(events)

    # ------------------------------------------------------------------
    @property
    def remaining(self) -> int:
        """Events that have not fired yet."""
        return sum(len(batch) for batch in self._events.values())

    def scheduled_kinds(self) -> set:
        """Kinds of the events that have not fired yet (capability checks:
        backends refuse network kinds on transports without a wire)."""
        return {event.kind for batch in self._events.values()
                for event in batch}

    def take(self, worker: int, dispatch: int,
             kinds: Optional[Sequence[str]] = None) -> List[FaultEvent]:
        """Fire (and remove) the events scheduled for this dispatch.

        ``kinds`` restricts which event families fire (the coordinator takes
        worker-side kinds at dispatch time and transport kinds for the reply
        path separately); unrestricted by default.
        """
        batch = self._events.get((worker, dispatch))
        if not batch:
            return []
        if kinds is None:
            taken, kept = list(batch), []
        else:
            taken = [event for event in batch if event.kind in kinds]
            kept = [event for event in batch if event.kind not in kinds]
        if kept:
            self._events[(worker, dispatch)] = kept
        else:
            del self._events[(worker, dispatch)]
        self.fired.extend(taken)
        return taken

    def fired_counts(self) -> Dict[str, int]:
        """Fired events per kind (benchmark/report bookkeeping)."""
        counts: Dict[str, int] = {}
        for event in self.fired:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


# ----------------------------------------------------------------------
# Delta-payload checksums
# ----------------------------------------------------------------------
def _crc_update(crc: int, data: bytes) -> int:
    return zlib.crc32(data, crc)


def _checksum_walk(crc: int, obj) -> int:
    """Deterministic walk over the delta payload structures the pool ships.

    Dict keys are visited in sorted order; arrays contribute dtype, shape
    and raw bytes; tuples/lists recurse positionally.  Covers per-client
    bit-delta dicts, stacked shard deltas and top-k ``(indices, values,
    shape)`` payloads alike.
    """
    if isinstance(obj, dict):
        for key in sorted(obj, key=repr):
            crc = _crc_update(crc, repr(key).encode())
            crc = _checksum_walk(crc, obj[key])
        return crc
    if isinstance(obj, np.ndarray):
        array = np.ascontiguousarray(obj)
        crc = _crc_update(crc, array.dtype.str.encode())
        crc = _crc_update(crc, repr(array.shape).encode())
        return _crc_update(crc, array.tobytes())
    if isinstance(obj, (tuple, list)):
        crc = _crc_update(crc, b"(")
        for item in obj:
            crc = _checksum_walk(crc, item)
        return _crc_update(crc, b")")
    return _crc_update(crc, repr(obj).encode())


def payload_checksum(payload) -> int:
    """CRC32 of a (nested) delta payload; equal structures ⇒ equal sums."""
    return _checksum_walk(0, payload)

"""Aggregation strategies: how uploaded client states become a global model.

Aggregation is one of the two orthogonal axes of the federation engine (the
other being :mod:`~repro.federated.engine.backends`).  A strategy answers two
questions every round:

* :meth:`AggregationStrategy.aggregate` — how the uploaded state dicts are
  combined into the server-side global state (FedAvg, Eq. 4, by default);
* :meth:`AggregationStrategy.personalize` — what each client receives back
  (the global state for FedAvg; per-client mixtures for personalized methods
  such as FED-PUB or GCFL+, whose trainers now reduce to strategy
  declarations).

Strategies are plain objects registered by name in
:data:`AGGREGATION_REGISTRY`, so ``FederatedConfig(aggregation="...")`` — and
therefore the CLI ``--aggregation`` flag — can select them without touching
trainer code.

Streaming aggregation
---------------------
The pipelined round loop (:mod:`~repro.federated.engine.pipeline`) does not
wait for every participant before aggregating: shard uploads are folded into
a running weighted merge the moment they arrive, so the merge cost overlaps
straggler compute.  A strategy opts in by returning a
:class:`StreamingAggregate` from :meth:`AggregationStrategy.begin_stream`;
strategies that need every state at once (e.g. the coordinate-wise trimmed
mean) return ``None`` and the loop falls back to gather-then-aggregate —
still pipelined across rounds, just not within the merge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.federated.server import DeterministicSum, fedavg_aggregate
from repro.graph import edge_homophily

StateDict = Dict[str, np.ndarray]


@dataclass
class AggregationContext:
    """Round-level information handed to strategies.

    ``trainer`` gives access to the full client list, the communication
    tracker and the server; ``participants`` is the subset selected this
    round (in client-id order).
    """

    round_index: int
    participants: List
    trainer: object


class StreamingAggregate:
    """Incremental weighted merge, bitwise-equal to :func:`fedavg_aggregate`.

    Contributions fold the moment they arrive, in any order: the sum runs on
    :class:`~repro.federated.server.DeterministicSum` fixed-point limbs, so
    the result is bitwise identical to the barrier-style
    ``sum(ŵ_i · state_i)`` no matter which worker finishes first — and
    identical to a two-tier merge of per-worker partials
    (:meth:`add_partial`), which is what hierarchical edge aggregation ships.

    ``finalize`` post-processes the sealed average (e.g. the FedOpt server
    update); the full participant ``weights`` must be known at construction
    time, exactly as they are at dispatch time (``client.num_samples`` is
    static).
    """

    def __init__(self, weights: Sequence[float],
                 finalize: Optional[Callable[[StateDict], StateDict]] = None):
        base = np.asarray(weights, dtype=np.float64)
        if base.size == 0:
            raise ValueError("streaming aggregation needs at least one weight")
        if base.sum() <= 0:
            raise ValueError("aggregation weights must sum to a positive value")
        self._weights = base / base.sum()
        self._finalize = finalize
        self._expected = int(base.size)
        self._folded: set = set()
        self._dropped: set = set()
        self._dropped_weight = 0.0
        self._acc = DeterministicSum()
        self._keys: Optional[frozenset] = None

    @property
    def pending(self) -> int:
        """Participants whose contribution has not been folded yet."""
        return self._expected - len(self._folded) - len(self._dropped)

    @property
    def dropped(self) -> int:
        """Participants excluded from the merge via :meth:`drop`."""
        return len(self._dropped)

    @property
    def normalized_weights(self) -> np.ndarray:
        """The globally normalised participant weights ŵ (sum to 1).

        Hierarchical dispatch ships each edge aggregator its shard's slice of
        these, so worker-side folds use the exact coefficients a flat
        coordinator fold would.
        """
        return self._weights.copy()

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._expected:
            raise IndexError(f"participant index {index} out of range")
        if index in self._folded:
            raise ValueError(f"participant {index} already folded")

    def _check_keys(self, state) -> None:
        # Same loud failure as the barrier fedavg_aggregate: a key-set
        # mismatch would otherwise skew the effective weights silently.
        if self._keys is None:
            self._keys = frozenset(state)
        elif frozenset(state) != self._keys:
            raise KeyError(
                "client state dicts have mismatching parameter names")

    def add(self, index: int, state: StateDict) -> None:
        """Fold participant ``index``'s upload into the running merge."""
        self._check_index(index)
        if index in self._dropped:
            raise ValueError(f"participant {index} was dropped")
        self._check_keys(state)
        self._acc.fold(state, float(self._weights[index]))
        self._folded.add(index)

    def add_partial(self, indices: Sequence[int], partial) -> None:
        """Merge a pre-aggregated shard: ``Σ ŵ_i·state_i`` over ``indices``.

        ``partial`` is a :meth:`DeterministicSum.partial` export built by an
        edge aggregator that folded every listed participant with its
        normalised weight.  Integer limb addition makes the merged result
        bitwise equal to folding those participants here one by one.
        """
        for index in indices:
            self._check_index(index)
            if index in self._dropped:
                raise ValueError(f"participant {index} was dropped")
        self._check_keys(partial)
        self._acc.merge(partial)
        self._folded.update(int(index) for index in indices)

    def drop(self, index: int) -> None:
        """Exclude participant ``index`` from the merge (fault degradation).

        Its weight mass is removed and :meth:`seal` renormalises over the
        actual reporters, so the sealed result is the weighted average of
        the surviving contributions — the statistically principled
        partial-participation FedAvg.  A round with no drops is bitwise
        untouched (no renormalisation runs).
        """
        self._check_index(index)
        if index in self._dropped:
            return
        self._dropped.add(index)
        self._dropped_weight += float(self._weights[index])

    def seal(self) -> StateDict:
        """Finish the merge; every participant must be folded or dropped."""
        if self.pending:
            raise RuntimeError(
                f"cannot seal: {self.pending} contribution(s) still pending")
        if self._acc.empty:
            raise RuntimeError(
                "cannot seal: every contribution was dropped")
        merged = self._acc.value()
        if self._dropped:
            kept = 1.0 - self._dropped_weight
            if kept <= 0:
                raise RuntimeError(
                    "cannot seal: dropped participants held all the weight")
            merged = {key: value / kept for key, value in merged.items()}
        if self._finalize is not None:
            return self._finalize(merged)
        return merged


class AggregationStrategy:
    """Base strategy: subclass and override :meth:`aggregate`."""

    name = "base"

    def aggregate(self, states: Sequence[StateDict],
                  weights: Sequence[float],
                  context: Optional[AggregationContext] = None) -> StateDict:
        raise NotImplementedError

    def begin_stream(self, weights: Sequence[float],
                     context: Optional[AggregationContext] = None
                     ) -> Optional[StreamingAggregate]:
        """Start an incremental merge for one round (or ``None``).

        Returning a :class:`StreamingAggregate` promises that folding every
        participant's state into it and sealing produces the same result as
        :meth:`aggregate` over the gathered states.  The default ``None``
        makes the pipelined loop gather every upload first.
        """
        del weights, context
        return None

    def personalize(self, client, global_state: StateDict,
                    context: Optional[AggregationContext] = None) -> StateDict:
        """State the given client should load (default: the global one)."""
        del client, context
        return global_state

    def state_dict(self) -> Dict:
        """Round-persistent strategy state for checkpointing (default none).

        Strategies carrying cross-round state (e.g. the FedOpt server
        moments) override this pair so :meth:`load_state_dict` restores the
        exact mid-run state and a resumed run continues bitwise.
        """
        return {}

    def load_state_dict(self, state: Dict) -> None:
        """Restore :meth:`state_dict` output (default: nothing to restore)."""
        del state


class FedAvgAggregation(AggregationStrategy):
    """Sample-count weighted averaging (FedAvg, Eq. 4)."""

    name = "fedavg"

    def aggregate(self, states, weights, context=None):
        del context
        return fedavg_aggregate(states, weights)

    def begin_stream(self, weights, context=None):
        del context
        return StreamingAggregate(weights)


class TopologyWeightedAggregation(AggregationStrategy):
    """Topology-aware weighting in the spirit of FedGTA (Li et al., 2023).

    Each client is summarised by a static statistic vector — its normalised
    training-label histogram concatenated with its edge homophily.  Clients
    whose statistics align with the participation-weighted mean statistic are
    up-weighted (they carry signal representative of the federation), clients
    with strongly divergent local topology are down-weighted:

    ``w_i ∝ n_i · exp(τ · cos(s_i, s̄))``

    With ``temperature=0`` this reduces exactly to FedAvg.  Statistics are
    cached per client id — they depend only on the private subgraph.
    """

    name = "topology_weighted"

    def __init__(self, temperature: float = 2.0):
        if temperature < 0:
            raise ValueError("temperature must be >= 0")
        self.temperature = temperature
        self._stats: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _client_statistic(self, client) -> np.ndarray:
        cached = self._stats.get(client.client_id)
        if cached is not None:
            return cached
        graph = client.graph
        labels = graph.labels[graph.train_mask]
        if labels.size == 0:
            labels = graph.labels
        histogram = np.bincount(labels, minlength=graph.num_classes)
        histogram = histogram / max(1, histogram.sum())
        stat = np.concatenate([
            histogram,
            [edge_homophily(graph.adjacency, graph.labels)],
        ])
        self._stats[client.client_id] = stat
        return stat

    @staticmethod
    def _cosine(a: np.ndarray, b: np.ndarray) -> float:
        denom = (np.linalg.norm(a) * np.linalg.norm(b)) + 1e-12
        return float(np.dot(a, b) / denom)

    def participant_weights(self, weights: Sequence[float],
                            context: AggregationContext) -> List[float]:
        """Topology-adjusted aggregation weights (exposed for inspection)."""
        stats = [self._client_statistic(c) for c in context.participants]
        base = np.asarray(weights, dtype=np.float64)
        reference = np.average(np.stack(stats), axis=0,
                               weights=base / base.sum())
        similarity = np.array([self._cosine(s, reference) for s in stats])
        # Shift before exponentiating for numerical stability; the constant
        # factor cancels in the normalisation inside fedavg_aggregate.
        scaled = np.exp(self.temperature * (similarity - similarity.max()))
        return (base * scaled).tolist()

    def aggregate(self, states, weights, context=None):
        if context is None or len(states) != len(context.participants):
            return fedavg_aggregate(states, weights)
        return fedavg_aggregate(
            states, self.participant_weights(weights, context))

    def begin_stream(self, weights, context=None):
        # The topology statistics are static per client, so the adjusted
        # weights are fully known before any upload arrives.
        if context is None or len(weights) != len(context.participants):
            return StreamingAggregate(weights)
        return StreamingAggregate(self.participant_weights(weights, context))


class TrimmedMeanAggregation(AggregationStrategy):
    """Coordinate-wise trimmed mean (robust aggregation).

    Sorts every parameter coordinate across clients and discards the
    ``trim_ratio`` fraction of the smallest and largest values before
    averaging, which bounds the influence of any single outlier/poisoned
    client.  Sample weights are intentionally ignored — robust estimators
    treat every client vote equally.
    """

    name = "trimmed_mean"

    def __init__(self, trim_ratio: float = 0.2):
        if not 0.0 <= trim_ratio < 0.5:
            raise ValueError("trim_ratio must be in [0, 0.5)")
        self.trim_ratio = trim_ratio

    def aggregate(self, states, weights, context=None):
        del weights, context
        if not states:
            raise ValueError("trimmed_mean needs at least one state dict")
        keys = set(states[0])
        for state in states[1:]:
            if set(state) != keys:
                raise KeyError(
                    "client state dicts have mismatching parameter names")
        count = len(states)
        trim = int(self.trim_ratio * count)
        aggregated: StateDict = {}
        for key in states[0]:
            stacked = np.stack([state[key] for state in states])
            if trim and count - 2 * trim >= 1:
                stacked = np.sort(stacked, axis=0)[trim:count - trim]
            aggregated[key] = stacked.mean(axis=0)
        return aggregated


class ServerOptAggregation(AggregationStrategy):
    """Server-side adaptive optimisation over the FedAvg pseudo-gradient.

    Adaptive federated optimisation (FedOpt, Reddi et al., 2021): the server
    keeps its own model ``x`` and first/second moment estimates.  Every round
    the participants' uploads are FedAvg-combined and their offset from the
    server model is treated as a pseudo-gradient

    ``Δ_t = avg(states) - x_t``,
    ``m_t = β₁ m_{t-1} + (1 - β₁) Δ_t``,
    ``x_{t+1} = x_t + η · m_t / (√v_t + τ)``

    (no bias correction, matching the paper).  Subclasses differ only in the
    second-moment recursion ``v_t`` (:meth:`_second_moment`): FedAdam uses an
    exponential moving average, FedYogi the sign-controlled additive update,
    FedAdagrad the plain running sum.  The very first aggregate call has no
    server model yet, so it adopts the FedAvg result as ``x₁`` with zero
    moments — identical to FedAvg for that round.
    """

    name = "serveropt"

    def __init__(self, server_lr: float = 0.1, beta1: float = 0.9,
                 beta2: float = 0.99, tau: float = 1e-3):
        if server_lr <= 0:
            raise ValueError("server_lr must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("beta1/beta2 must be in [0, 1)")
        if tau <= 0:
            # tau=0 turns a zero pseudo-gradient into 0/0 = NaN.
            raise ValueError("tau must be positive")
        self.server_lr = server_lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.tau = tau
        self._model: Optional[StateDict] = None
        self._m: Optional[StateDict] = None
        self._v: Optional[StateDict] = None

    def _second_moment(self, v: np.ndarray, squared: np.ndarray) -> np.ndarray:
        """Next second-moment estimate given ``Δ²`` (subclass-specific)."""
        raise NotImplementedError

    def _server_update(self, average: StateDict) -> StateDict:
        """Fold one round's FedAvg result into the server model."""
        if self._model is None:
            self._model = {key: value.copy()
                           for key, value in average.items()}
            self._m = {key: np.zeros_like(value)
                       for key, value in average.items()}
            self._v = {key: np.zeros_like(value)
                       for key, value in average.items()}
            return average
        updated: StateDict = {}
        for key, x in self._model.items():
            delta = average[key] - x
            self._m[key] = self.beta1 * self._m[key] \
                + (1.0 - self.beta1) * delta
            self._v[key] = self._second_moment(self._v[key], delta * delta)
            updated[key] = x + self.server_lr * self._m[key] / (
                np.sqrt(self._v[key]) + self.tau)
        self._model = updated
        return {key: value.copy() for key, value in updated.items()}

    def aggregate(self, states, weights, context=None):
        del context
        return self._server_update(fedavg_aggregate(states, weights))

    def begin_stream(self, weights, context=None):
        # The pseudo-gradient step is a pure function of the FedAvg result,
        # so the average streams and the server update runs at seal time.
        del context
        return StreamingAggregate(weights, finalize=self._server_update)

    def state_dict(self):
        def _copy(states):
            if states is None:
                return None
            return {key: value.copy() for key, value in states.items()}
        return {"model": _copy(self._model), "m": _copy(self._m),
                "v": _copy(self._v)}

    def load_state_dict(self, state):
        self._model = state.get("model")
        self._m = state.get("m")
        self._v = state.get("v")


class FedAdamAggregation(ServerOptAggregation):
    """FedAdam: exponential-moving-average second moment."""

    name = "fedadam"

    def _second_moment(self, v, squared):
        return self.beta2 * v + (1.0 - self.beta2) * squared


class FedYogiAggregation(ServerOptAggregation):
    """FedYogi: additive second moment controlled by ``sign(v - Δ²)``.

    ``v_t = v_{t-1} - (1 - β₂) Δ_t² · sign(v_{t-1} - Δ_t²)`` grows ``v``
    at most additively, making the effective server step shrink more slowly
    than Adam's when pseudo-gradients suddenly spike.
    """

    name = "fedyogi"

    def _second_moment(self, v, squared):
        return v - (1.0 - self.beta2) * squared * np.sign(v - squared)


class FedAdagradAggregation(ServerOptAggregation):
    """FedAdagrad: monotone running-sum second moment ``v_t = v_{t-1} + Δ_t²``."""

    name = "fedadagrad"

    def _second_moment(self, v, squared):
        return v + squared


#: name → zero-argument factory for every built-in strategy.
AGGREGATION_REGISTRY: Dict[str, Callable[[], AggregationStrategy]] = {
    FedAvgAggregation.name: FedAvgAggregation,
    TopologyWeightedAggregation.name: TopologyWeightedAggregation,
    TrimmedMeanAggregation.name: TrimmedMeanAggregation,
    FedAdamAggregation.name: FedAdamAggregation,
    FedYogiAggregation.name: FedYogiAggregation,
    FedAdagradAggregation.name: FedAdagradAggregation,
}


def list_aggregations() -> List[str]:
    """Names of every registered aggregation strategy."""
    return sorted(AGGREGATION_REGISTRY)


def register_aggregation(name: str,
                         factory: Callable[[], AggregationStrategy]) -> None:
    """Register a custom strategy factory under ``name``."""
    AGGREGATION_REGISTRY[name.lower()] = factory


def make_aggregation(spec: Union[str, AggregationStrategy, None]
                     ) -> AggregationStrategy:
    """Resolve a strategy from a registry name or pass an instance through."""
    if spec is None:
        return FedAvgAggregation()
    if isinstance(spec, AggregationStrategy):
        return spec
    key = str(spec).lower()
    if key not in AGGREGATION_REGISTRY:
        raise KeyError(
            f"unknown aggregation strategy '{spec}'; "
            f"available: {', '.join(list_aggregations())}")
    return AGGREGATION_REGISTRY[key]()

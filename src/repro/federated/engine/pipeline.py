"""Pipelined round execution: streaming sync rounds and bounded-staleness async.

The classic federated round is a lockstep barrier: every worker trains, the
coordinator idles until the *slowest* shard returns, then the workers idle
while the coordinator aggregates, evaluates and re-broadcasts.  This module
replaces that barrier with two round loops built on the persistent pool's
dispatch/collect protocol (:class:`~repro.federated.engine.backends
.ProcessPoolBackend`):

* :class:`SyncPipelinedLoop` (``round_mode="sync"``, the default for the
  process pool) — shard uploads are folded into the running aggregate the
  moment they arrive (:class:`~repro.federated.engine.aggregation
  .StreamingAggregate`, so merge cost overlaps straggler compute), and the
  next round's deduplicated broadcast is dispatched **before** the previous
  round's evaluation runs, so the coordinator's eval/bookkeeping overlaps
  worker training.  The fold is order-buffered, which keeps the training
  history **bitwise-identical to serial execution** — pipelining changes
  when work happens, never what is computed.

* :class:`AsyncRoundLoop` (``round_mode="async"``) — bounded-staleness
  asynchronous federated rounds: a worker is re-dispatched with the current
  global model the moment its shard report lands, the server seals an
  aggregate after any ``async_buffer`` shard reports, stale reports are
  merged with the staleness-discounted weight ``w_i / (1 + lag_i)`` (reports
  older than ``staleness_cap`` server rounds are dropped), and the global
  model moves by

  ``x_{s+1} = (1 - η_s) · x_s + η_s · Agg(window)``  with
  ``η_s = Σ_{i ∈ window} w_i/(1+lag_i) / Σ_{all clients} w_j``.

  Worker completion order is driven by a **virtual clock** (shard work units
  divided by the simulated :attr:`worker_speeds`), so an async run is exactly
  reproducible: fixed seed + fixed speeds ⇒ identical histories, per-client
  round lags included (recorded in :attr:`TrainingHistory.client_lag`).

:func:`resolve_round_loop` decides which loop a trainer uses.  Trainers that
override the round hooks (``before_round`` / ``after_round`` / ``aggregate``)
keep the lockstep loop — their hooks assume barrier semantics — as do
backends without the dispatch/collect protocol.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.federated.engine.aggregation import AggregationContext


def _uses_default(trainer, name: str) -> bool:
    """True when the trainer neither overrides nor monkeypatches a hook."""
    from repro.federated.trainer import FederatedTrainer

    if name in trainer.__dict__:  # instance-level monkeypatch (tests do this)
        return False
    return getattr(type(trainer), name) is getattr(FederatedTrainer, name)


def resolve_round_loop(trainer):
    """Pick the round loop for a trainer (``None`` = classic lockstep).

    ``round_mode="async"`` *requires* a pipelining-capable backend and raises
    otherwise; ``round_mode="sync"`` silently keeps lockstep semantics for
    backends and trainers the pipeline cannot serve (serial/batched backends,
    hook-overriding trainers) — the sync pipeline is an execution detail, not
    an algorithm change.
    """
    mode = getattr(trainer.config, "round_mode", "sync")
    if mode not in ("sync", "async"):
        raise ValueError(
            f"round_mode must be 'sync' or 'async', got {mode!r}")
    backend = trainer.backend
    hierarchical = getattr(trainer.config, "hierarchical", False)
    if mode == "async":
        if hierarchical:
            raise ValueError(
                "hierarchical=True requires round_mode='sync' (async seals "
                "merge per-report, not per-shard partials)")
        if not getattr(backend, "supports_pipelining", False):
            raise ValueError(
                "round_mode='async' requires the process_pool backend "
                f"(got '{backend.name}')")
        return AsyncRoundLoop(trainer)
    if not getattr(backend, "supports_pipelining", False):
        if hierarchical:
            raise ValueError(
                "hierarchical=True requires the process_pool backend "
                f"(got '{backend.name}')")
        return None
    if not all(_uses_default(trainer, hook)
               for hook in ("before_round", "after_round", "aggregate")):
        if hierarchical:
            raise ValueError(
                "hierarchical=True does not support trainers overriding the "
                "barrier-round hooks (edge aggregators never ship per-client "
                "states up)")
        return None
    return SyncPipelinedLoop(trainer)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _transport_summary(backend) -> Dict:
    """Channel-level wire statistics of the backend's worker transport.

    TCP pools report frames/bytes/retransmits/CRC failures/reconnects; pipe
    pools (and closed ones) contribute the transport name alone.
    """
    pool = getattr(backend, "_pool", None)
    if pool is not None and not pool.closed:
        try:
            return pool.network_stats()
        except (OSError, ValueError, AttributeError):
            pass
    return {"transport": getattr(backend, "transport_name", "pipe")}


def _state_size(state: Dict[str, np.ndarray]) -> int:
    return sum(value.size for value in state.values())


def _broadcast(trainer, global_state) -> Dict[int, Dict[str, np.ndarray]]:
    """Personalize + download-account the new global state to every mirror.

    Returns the per-client personalized states so the next round's dispatch
    can reuse them (skipping a full-parameter read-back per client, and —
    when ``personalize`` hands every client the same dict, as plain FedAvg
    does — letting the broadcast dedup work by object identity).
    """
    states: Dict[int, Dict[str, np.ndarray]] = {}
    for client in trainer.clients:
        personalized = trainer.personalize(client, global_state)
        client.set_weights(personalized)
        states[client.client_id] = personalized
        trainer.tracker.record_download("model_parameters",
                                        _state_size(personalized))
    trainer.tracker.next_round()
    return states


def _record_eval(trainer, round_index: int, losses: Sequence[float],
                 per_client_lag: Optional[Dict[int, int]] = None,
                 fused_eval=None,
                 broadcast_states: Optional[Dict[int, Dict[str, np.ndarray]]]
                 = None,
                 per_client_round_sec: Optional[Dict[int, float]] = None
                 ) -> None:
    if fused_eval is not None and broadcast_states is not None:
        # One fused sweep fills every prediction cache; works for uniform
        # and personalized (per-cluster / per-client) broadcasts alike.
        fused_eval.refresh([broadcast_states[client.client_id]
                            for client in fused_eval.clients])
    train_acc = trainer.evaluate("train")
    test_acc = trainer.evaluate("test")
    per_client = {c.client_id: c.evaluate("test") for c in trainer.clients}
    # A fully-degraded round (every shard dropped) has no losses to average.
    loss = float(np.mean(losses)) if len(losses) else float("nan")
    trainer.history.record(round_index, train_acc, test_acc,
                           loss, per_client,
                           per_client_lag=per_client_lag,
                           per_client_round_sec=per_client_round_sec)


def _fused_eval_for(trainer):
    """Build a fused evaluation plan when every client supports it.

    Delegates to the batched engine's eval-plan families
    (:func:`repro.federated.engine.batched.build_eval_plan`): GCN, SGC,
    GAMLP and GPR-GNN all evaluate through one fused no-grad sweep whose
    probabilities are bitwise-identical to the per-client forwards.
    Returns ``None`` (→ per-client fallback) for other model families or
    heterogeneous shapes.
    """
    from repro.federated.engine.batched import build_eval_plan

    return build_eval_plan(trainer.clients)


class _UtilizationMeter:
    """Worker-busy vs wall-clock accounting for one loop run."""

    def __init__(self, backend):
        self.backend = backend
        self.start = time.perf_counter()
        self._busy_at_start = dict(backend.busy_sec)

    def summary(self) -> Dict:
        wall = time.perf_counter() - self.start
        busy = {worker: total - self._busy_at_start.get(worker, 0.0)
                for worker, total in self.backend.busy_sec.items()}
        workers = len(busy)
        utilization = (sum(busy.values()) / (workers * wall)
                       if workers and wall > 0 else 0.0)
        return {
            "wall_sec": wall,
            "busy_sec": busy,
            "num_workers": workers,
            "worker_utilization": utilization,
        }


# ----------------------------------------------------------------------
# Synchronous streaming pipeline
# ----------------------------------------------------------------------
class SyncPipelinedLoop:
    """Streaming-aggregation round loop, bitwise-identical to lockstep.

    Per round: dispatch the (deduplicated) broadcast to the workers, run the
    *previous* round's evaluation while they train, train coordinator-side
    clients, fold shard uploads into the streaming aggregate as they arrive,
    seal, broadcast — and only then stop to evaluate (one round later, again
    overlapped).  The only barrier left is the data dependency itself: a
    round's broadcast cannot leave before its aggregate is sealed.
    """

    def __init__(self, trainer):
        self.trainer = trainer
        self.backend = trainer.backend
        #: built on first use; None until then, False when unsupported
        self._fused_eval = None

    def _eval(self, round_index: int, losses: Sequence[float],
              round_sec: Optional[Dict[int, float]],
              broadcast_states) -> None:
        """Record one round's evaluation, fusing the forwards if possible.

        The fused sweep needs one broadcast state per client; uniform
        FedAvg broadcasts and personalized per-cluster states (FED-PUB,
        GCFL+) both qualify — states are handled group-wise inside the
        plan, so personalized runs no longer fall back to per-client
        evaluation forwards.
        """
        states = broadcast_states
        if states is not None and any(
                client.client_id not in states
                for client in self.trainer.clients):
            states = None
        fused = None
        if states is not None:
            if self._fused_eval is None:
                self._fused_eval = _fused_eval_for(self.trainer) or False
            fused = self._fused_eval or None
        _record_eval(self.trainer, round_index, losses,
                     fused_eval=fused, broadcast_states=states,
                     per_client_round_sec=round_sec)

    def run(self, rounds: int) -> None:
        trainer = self.trainer
        backend = self.backend
        config = trainer.config
        meter = _UtilizationMeter(backend)
        straggler_wait = 0.0
        deferred_eval: Optional[Tuple[int, List[float],
                                      Dict[int, float]]] = None
        broadcast_states: Optional[Dict[int, Dict[str, np.ndarray]]] = None
        #: static per-client parameter counts for the logical accounting
        #: (reading them through ``get_weights`` would copy every array)
        sizes: Dict[int, int] = {}

        hierarchical = getattr(backend, "hierarchical", False)
        for round_index in range(trainer._completed_rounds + 1, rounds + 1):
            participants = trainer._select_participants()
            trainer.history.record_participants(
                round_index, [client.client_id for client in participants])
            context = AggregationContext(
                round_index=round_index, participants=participants,
                trainer=trainer)
            trainer._context = context
            trainer.before_round(round_index, participants)

            # The stream opens before dispatch so hierarchical dispatch can
            # ship each edge aggregator its shard's globally normalised fold
            # weights; begin_stream is effect-free, so flat rounds are
            # untouched by the hoist.
            weights = [client.num_samples for client in participants]
            fold = trainer.strategy.begin_stream(weights, context)
            index_of = {client.client_id: position
                        for position, client in enumerate(participants)}
            fold_weights = None
            if hierarchical:
                if fold is None:
                    raise ValueError(
                        f"hierarchical=True requires a streaming-capable "
                        f"aggregation (got '{trainer.strategy.name}', which "
                        "gathers every state)")
                normalized = fold.normalized_weights
                fold_weights = {
                    client.client_id: float(normalized[position])
                    for position, client in enumerate(participants)}

            pending = backend.dispatch_round(participants,
                                             states=broadcast_states,
                                             fold_weights=fold_weights)
            deadline = None if config.round_timeout is None \
                else time.monotonic() + config.round_timeout

            # The previous round's evaluation overlaps this round's worker
            # training.  Preferred slot: after the fastest shard lands, when
            # only the stragglers are still computing/sleeping — collection
            # defers the mirror update to finish_round, so the eval still
            # reads the broadcast-state mirrors lockstep would see.
            # Coordinator-resident clients train in place, so with a local
            # side (or nothing dispatched) the eval must run right now.
            if deferred_eval is not None and (
                    pending.local_side or not pending.outstanding):
                self._eval(*deferred_eval, broadcast_states)
                deferred_eval = None

            backend.run_local_side(pending)

            if fold is not None:
                for client in pending.local_side:
                    fold.add(index_of[client.client_id], client.get_weights())
            first_wave = True
            while pending.outstanding:
                wait_start = time.perf_counter()
                timeout = None if deadline is None \
                    else max(0.0, deadline - time.monotonic())
                collected = backend.collect_next(pending, timeout=timeout)
                if not first_wave:
                    # Coordinator time spent blocked on stragglers after
                    # the streaming fold and the eval ran out of work.
                    straggler_wait += time.perf_counter() - wait_start
                if not collected and deadline is not None \
                        and time.monotonic() >= deadline \
                        and pending.outstanding:
                    # Deadline hit: the late shards are dropped from the
                    # round and their workers drain in the background.
                    backend.timeout_outstanding(pending)
                if fold is not None:
                    # Edge-aggregated shards land as fixed-point partials
                    # covering the whole shard at once; flat shards land as
                    # per-client states.
                    for ids, partial in pending.take_partials():
                        fold.add_partial([index_of[cid] for cid in ids],
                                         partial)
                        trainer.tracker.record_upload(
                            "edge_aggregate",
                            sum(hi.size + lo.size
                                for hi, lo in partial.values()))
                    for cid in collected:
                        if cid in pending.states:
                            fold.add(index_of[cid], pending.states[cid])
                if first_wave and collected:
                    first_wave = False
                    if deferred_eval is not None:
                        self._eval(*deferred_eval, broadcast_states)
                        deferred_eval = None
            for cid in sorted(pending.dropped):
                trainer.history.record_drop(cid)
                if fold is not None:
                    fold.drop(index_of[cid])
            losses = backend.finish_round(pending)
            reported = [client for client in participants
                        if client.client_id not in pending.dropped]

            # Logical upload accounting, identical to the lockstep loop
            # (dropped clients never delivered an upload).  Hierarchical
            # rounds already accounted one pre-aggregated partial per edge
            # aggregator — O(workers) uplink instead of O(clients).
            if not hierarchical:
                for client in reported:
                    size = sizes.get(client.client_id)
                    if size is None:
                        size = sizes[client.client_id] = _state_size(
                            client.get_weights())
                    trainer.tracker.record_upload("model_parameters", size)

            if not reported:
                # Fully-degraded round: nothing to aggregate; the global
                # model — and the previous broadcast — stand unchanged.
                trainer.tracker.next_round()
            elif fold is not None:
                global_state = fold.seal()
                trainer.server.commit(global_state)
                broadcast_states = _broadcast(trainer, global_state)
            else:
                states = [client.get_weights() for client in reported]
                global_state = trainer.aggregate(
                    states, [client.num_samples for client in reported],
                    reported)
                broadcast_states = _broadcast(trainer, global_state)
            trainer.after_round(round_index, participants)

            if round_index % config.eval_every == 0 or round_index == rounds:
                # Defer: the eval runs inside the *next* round's straggler
                # window.
                deferred_eval = (round_index, losses,
                                 dict(pending.round_sec))
            trainer._completed_rounds = round_index
            if config.checkpoint_every \
                    and round_index % config.checkpoint_every == 0:
                # The checkpoint must hold the history the uninterrupted
                # run would have at this round, so the deferred evaluation
                # is flushed first (value-identical: the mirrors it reads
                # are at broadcast state either way).
                if deferred_eval is not None:
                    self._eval(*deferred_eval, broadcast_states)
                    deferred_eval = None
                trainer.save_checkpoint(round_index)

        if deferred_eval is not None:  # final round has nothing to overlap
            self._eval(*deferred_eval, broadcast_states)
        if getattr(backend, "flush_lagging", None) is not None \
                and backend._lagging:
            backend.flush_lagging()

        stats = meter.summary()
        stats.update({
            "round_mode": "sync",
            "hierarchical": hierarchical,
            "rounds": rounds,
            "straggler_wait_sec": straggler_wait,
            "fused_eval": type(self._fused_eval).__name__
            if self._fused_eval else None,
            "fault_stats": dict(backend.fault_stats),
            "transport": _transport_summary(backend),
        })
        backend.last_pipeline_stats = stats


# ----------------------------------------------------------------------
# Bounded-staleness asynchronous rounds
# ----------------------------------------------------------------------
class _AsyncJob:
    """One in-flight shard training job of the async loop."""

    __slots__ = ("pending", "version", "finish_vt")

    def __init__(self, pending, version: int, finish_vt: float):
        self.pending = pending
        self.version = version       # server round the broadcast came from
        self.finish_vt = finish_vt   # virtual completion time


class AsyncRoundLoop:
    """Bounded-staleness asynchronous federated training on the pool.

    A "round" is a server *seal*: the moment ``async_buffer`` shard reports
    have been merged since the last seal, the window is aggregated with the
    configured strategy under staleness-discounted weights and mixed into the
    global model (formula in the module docstring).  Workers never wait for
    each other — each is re-dispatched with the freshest global model as soon
    as its report lands — so fast workers contribute more, slightly stale
    updates count less, and reports older than ``staleness_cap`` seals are
    dropped entirely.  Completion order follows the simulated worker speeds'
    virtual clock, making runs exactly reproducible.
    """

    def __init__(self, trainer):
        self.trainer = trainer
        self.backend = trainer.backend
        config = trainer.config
        self.buffer_size = int(getattr(config, "async_buffer", 1))
        self.staleness_cap = int(getattr(config, "staleness_cap", 3))
        if self.buffer_size < 1:
            raise ValueError("async_buffer must be >= 1")
        if self.staleness_cap < 0:
            raise ValueError("staleness_cap must be >= 0")
        if getattr(config, "checkpoint_every", 0) \
                or getattr(config, "resume_from", None):
            # A seal is not a barrier: worker-side state is mid-shard at
            # any checkpointable moment, so a resumed async run could not
            # reproduce the interrupted one.  Refuse instead of writing
            # checkpoints that silently do not round-trip.
            raise ValueError(
                "round_mode='async' does not support checkpoint/resume; "
                "use round_mode='sync'")
        if not 0.0 < config.participation <= 1.0:
            raise ValueError(
                "participation must be in (0, 1]")
        # The async loop re-dispatches each shard with the raw sealed
        # global model and never runs the barrier-round hooks — both
        # assume lockstep semantics.  Refuse loudly instead of silently
        # degenerating personalized methods (FED-PUB, GCFL+) or
        # hook-overriding trainers to plain async FedAvg.
        from repro.federated.engine.aggregation import AggregationStrategy

        if type(trainer.strategy).personalize \
                is not AggregationStrategy.personalize:
            raise ValueError(
                "round_mode='async' does not support personalized "
                f"aggregation ('{trainer.strategy.name}' overrides "
                "personalize); use round_mode='sync'")
        if not all(_uses_default(trainer, hook)
                   for hook in ("before_round", "after_round", "aggregate",
                                "personalize")):
            raise ValueError(
                "round_mode='async' does not support trainers overriding "
                "the barrier-round hooks; use round_mode='sync'")

    # ------------------------------------------------------------------
    def run(self, rounds: int) -> None:
        trainer = self.trainer
        backend = self.backend
        config = trainer.config
        clients = trainer.clients
        if len(clients) < 2:
            raise ValueError("round_mode='async' needs at least two clients")
        if any(client.extra_loss is not None for client in clients):
            raise ValueError(
                "round_mode='async' requires every client to be picklable "
                "(no coordinator-resident extra_loss hooks)")

        meter = _UtilizationMeter(backend)
        backend.ensure_pool()
        pooled = backend._bootstrap(clients)
        if len(pooled) != len(clients):
            raise ValueError(
                "round_mode='async' requires every client to be picklable")
        shards: Dict[int, List] = {}

        def rebuild_shards() -> None:
            # Crash recovery can move residents to new owners (redistribute)
            # — regroup the per-worker shards from the live ownership map.
            shards.clear()
            for client in clients:
                owner = backend.owner_of(client.client_id)
                if owner is not None:
                    shards.setdefault(owner, []).append(client)

        rebuild_shards()

        global_state = {key: value.copy()
                        for key, value in clients[0].get_weights().items()}
        total_weight = float(sum(client.num_samples for client in clients))
        virtual_now: Dict[int, float] = {worker: 0.0 for worker in shards}
        jobs: Dict[int, _AsyncJob] = {}
        seals = 0
        window_reports = 0   # merged since the last seal (fills the buffer)
        total_merged = 0
        total_dropped = 0
        window_states: List[Dict[str, np.ndarray]] = []
        window_weights: List[float] = []
        window_clients: List = []
        window_losses: List[float] = []
        lag_by_client: Dict[int, int] = {}
        lag_sum = 0
        lag_max = 0

        def dispatch(worker: int) -> None:
            # Every dispatched client trains from the freshest sealed model;
            # handing dispatch the shared state dict keeps the broadcast
            # dedup an identity check.  ``participation < 1.0`` subsamples
            # the shard per dispatch from the trainer's dedicated selection
            # stream — dispatch order follows the virtual clock, so the
            # sampled sets are deterministic for a fixed seed and speeds.
            shard = shards[worker]
            if config.participation < 1.0:
                from repro.federated.trainer import select_participant_ids

                picked = select_participant_ids(
                    trainer._participation_rng, len(shard),
                    config.participation)
                shard = [shard[position] for position in picked]
            for client in shard:
                client.set_weights(global_state)
            pending = backend.dispatch_round(
                shard,
                states={client.client_id: global_state
                        for client in shard})
            duration = len(shard) / backend.worker_speed(worker)
            virtual_now.setdefault(worker, 0.0)
            jobs[worker] = _AsyncJob(pending, seals,
                                     virtual_now[worker] + duration)

        for worker in sorted(shards):
            dispatch(worker)

        while seals < rounds:
            # Fault degradation left workers idle?  Lagging workers rejoin
            # once their stale replies drain; recovered/respawned owners
            # just need a fresh job.
            if backend._lagging:
                backend.poll_lagging()
            for idle in sorted(shards):
                if idle not in jobs and not backend._lagging.get(idle):
                    dispatch(idle)
            if not jobs:
                # Every owner is lagging — block for a stale reply.
                backend.wait_lagging(timeout=1.0)
                continue
            # Virtual-time event queue: the next report to land is the one
            # with the earliest simulated completion (ties break on worker
            # index), independent of real OS scheduling — this is what makes
            # async runs reproducible.
            worker = min(jobs, key=lambda w: (jobs[w].finish_vt, w))
            job = jobs.pop(worker)
            if config.round_timeout is not None \
                    and not backend.worker_ready(worker,
                                                 config.round_timeout):
                # The shard blew the deadline: discard the job, let the
                # worker drain in the background (staleness-cap analogue
                # of the sync drop).
                for cid in backend.abandon_job(job.pending, worker):
                    trainer.history.record_drop(cid)
                continue
            collected = backend.collect_worker(job.pending, worker,
                                               redispatch=False)
            if not collected:
                # The worker died mid-shard: the report is lost (recovery
                # already re-bootstrapped its residents).  Re-shard over
                # the recovered ownership; the idle-owner sweep at the top
                # of the loop puts everyone back to work.
                for cid in sorted(job.pending.dropped):
                    trainer.history.record_drop(cid)
                rebuild_shards()
                continue
            backend.finish_round(job.pending, advance_round=False)
            virtual_now[worker] = job.finish_vt

            shard_clients = [client for client in job.pending.participants
                             if client.client_id in job.pending.losses]
            lag = seals - job.version
            lag_sum += lag
            lag_max = max(lag_max, lag)
            for client in shard_clients:
                lag_by_client[client.client_id] = lag
            if lag <= self.staleness_cap:
                discount = 1.0 / (1.0 + lag)
                for client in shard_clients:
                    window_states.append(
                        job.pending.states[client.client_id])
                    window_weights.append(client.num_samples * discount)
                    window_clients.append(client)
                    window_losses.append(
                        job.pending.losses[client.client_id])
                window_reports += 1
                total_merged += 1
            else:
                total_dropped += 1

            if worker in shards and not backend._lagging.get(worker):
                dispatch(worker)  # worker never idles waiting for a seal

            if window_reports >= self.buffer_size:
                seals += 1
                global_state = self._seal(
                    global_state, window_states, window_weights,
                    window_clients, total_weight, seals)
                trainer.history.record_participants(
                    seals, {client.client_id for client in window_clients})
                for state in window_states:
                    trainer.tracker.record_upload(
                        "model_parameters", _state_size(state))
                _broadcast(trainer, global_state)
                backend.transport.next_round()
                if seals % config.eval_every == 0 or seals == rounds:
                    _record_eval(trainer, seals, window_losses,
                                 per_client_lag=dict(lag_by_client))
                window_states, window_weights = [], []
                window_clients, window_losses = [], []
                window_reports = 0

        # Drain in-flight jobs so the pool ends the run reply-balanced (the
        # close-time optimizer/RNG sync needs strict request→reply pairing);
        # the drained reports arrived after the last seal and are discarded.
        for worker in sorted(jobs):
            job = jobs.pop(worker)
            backend.collect_worker(job.pending, worker, redispatch=False)
            backend.finish_round(job.pending, advance_round=False)
        backend.flush_lagging()
        # Mirrors must end the run at the sealed model, not at whichever
        # half-stale shard states the drain reconstructed.
        for client in clients:
            client.set_weights(global_state)

        stats = meter.summary()
        stats.update({
            "round_mode": "async",
            "seals": seals,
            "async_buffer": self.buffer_size,
            "staleness_cap": self.staleness_cap,
            "reports_merged": total_merged,
            "reports_dropped": total_dropped,
            "mean_report_lag": lag_sum / max(1, total_merged + total_dropped),
            "max_report_lag": lag_max,
            "client_lag": dict(lag_by_client),
            "fault_stats": dict(backend.fault_stats),
            "transport": _transport_summary(backend),
        })
        backend.last_pipeline_stats = stats

    # ------------------------------------------------------------------
    def _seal(self, global_state, states, weights, participants,
              total_weight: float, seal_index: int):
        """Mix the staleness-discounted window into the global model."""
        trainer = self.trainer
        context = AggregationContext(round_index=seal_index,
                                     participants=list(participants),
                                     trainer=trainer)
        trainer._context = context
        aggregate = trainer.strategy.aggregate(states, weights, context)
        eta = min(1.0, float(sum(weights)) / total_weight)
        mixed = {key: (1.0 - eta) * value + eta * aggregate[key]
                 for key, value in global_state.items()}
        trainer.server.commit({key: value.copy()
                               for key, value in mixed.items()})
        return mixed

"""The unified federation engine: execution backends × aggregation strategies.

Two orthogonal plug-in axes shared by Step-1 collaborative training, the
five FGL baselines and AdaFGL:

* **Execution backends** (:mod:`~repro.federated.engine.backends`) decide
  *how* the selected participants run their local epochs each round —
  serially, in a process pool, or fused into one batched autograd graph
  (:mod:`~repro.federated.engine.batched`).  All backends reconstruct the
  serial training state (weights, optimizer moments, RNG streams) exactly.
* **Aggregation strategies** (:mod:`~repro.federated.engine.aggregation`)
  decide *what* the server does with the uploaded states — FedAvg,
  topology-aware weighting à la FedGTA, robust trimmed-mean, or the
  personalized schemes the FED-PUB / GCFL+ baselines declare.

Select both through :class:`~repro.federated.FederatedConfig`
(``backend=``/``aggregation=``) or the CLI (``--backend``/``--aggregation``).
"""

from repro.federated.engine.aggregation import (
    AGGREGATION_REGISTRY,
    AggregationContext,
    AggregationStrategy,
    FedAdagradAggregation,
    FedAdamAggregation,
    FedAvgAggregation,
    FedYogiAggregation,
    ServerOptAggregation,
    StreamingAggregate,
    TopologyWeightedAggregation,
    TrimmedMeanAggregation,
    list_aggregations,
    make_aggregation,
    register_aggregation,
)
from repro.federated.engine.backends import (
    BACKEND_REGISTRY,
    ExecutionBackend,
    PendingRound,
    ProcessPoolBackend,
    SerialBackend,
    list_backends,
    make_backend,
    register_backend,
    restore_client_state,
    snapshot_client_state,
)
from repro.federated.engine.batched import (
    BatchedBackend,
    build_eval_plan,
    group_states_by_identity,
)
from repro.federated.engine.clientstore import (
    ClientStore,
    ModelSpec,
    StoreFederatedTrainer,
)
from repro.federated.engine.faults import (
    DOWNLINK_KINDS,
    NETWORK_KINDS,
    FaultEvent,
    FaultPlan,
    payload_checksum,
)
from repro.federated.engine.persistent import (
    BroadcastCorrupted,
    PersistentWorkerPool,
    WorkerCrash,
    WorkerError,
    apply_state_delta,
    apply_topk_delta,
    encode_state_delta,
    encode_topk_delta,
    pack_indices,
    quantise_uniform,
    unpack_indices,
)
from repro.federated.engine.pipeline import (
    AsyncRoundLoop,
    SyncPipelinedLoop,
    resolve_round_loop,
)
from repro.federated.engine.transport import (
    TRANSPORTS,
    PipeTransport,
    TcpTransport,
    TransportKnobs,
    WanLink,
    WanModel,
    WorkerTransport,
    make_transport,
    run_tcp_worker,
)

__all__ = [
    "AGGREGATION_REGISTRY",
    "AggregationContext",
    "AggregationStrategy",
    "FedAdagradAggregation",
    "FedAdamAggregation",
    "FedAvgAggregation",
    "FedYogiAggregation",
    "ServerOptAggregation",
    "StreamingAggregate",
    "TopologyWeightedAggregation",
    "TrimmedMeanAggregation",
    "list_aggregations",
    "make_aggregation",
    "register_aggregation",
    "BACKEND_REGISTRY",
    "ExecutionBackend",
    "PendingRound",
    "SerialBackend",
    "ProcessPoolBackend",
    "BatchedBackend",
    "build_eval_plan",
    "group_states_by_identity",
    "quantise_uniform",
    "list_backends",
    "make_backend",
    "register_backend",
    "snapshot_client_state",
    "restore_client_state",
    "DOWNLINK_KINDS",
    "NETWORK_KINDS",
    "FaultEvent",
    "FaultPlan",
    "payload_checksum",
    "BroadcastCorrupted",
    "PersistentWorkerPool",
    "WorkerCrash",
    "WorkerError",
    "encode_state_delta",
    "apply_state_delta",
    "encode_topk_delta",
    "apply_topk_delta",
    "pack_indices",
    "unpack_indices",
    "ClientStore",
    "ModelSpec",
    "StoreFederatedTrainer",
    "AsyncRoundLoop",
    "SyncPipelinedLoop",
    "resolve_round_loop",
    "TRANSPORTS",
    "PipeTransport",
    "TcpTransport",
    "TransportKnobs",
    "WanLink",
    "WanModel",
    "WorkerTransport",
    "make_transport",
    "run_tcp_worker",
]

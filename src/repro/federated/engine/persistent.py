"""Persistent worker processes with resident clients and delta-only IPC.

The first-generation process pool shipped *whole clients* — graph, features,
CSR P̃, optimizer state — across the process boundary every round, which made
it slower than serial training.  Real FGL systems never do that: client state
stays where it lives and only model parameters move.  This module implements
that communication model for the simulator:

* :class:`PersistentWorkerPool` — a fixed set of worker processes, each
  driven through its own duplex pipe by a tiny command loop.  Workers are
  daemonic (they can never outlive the coordinator) and the pool registers a
  ``weakref.finalize`` hook so abandoned pools are reclaimed at GC time.
* **Worker-resident clients** — a client is pickled to its owning worker
  exactly once (the bootstrap round).  From then on the worker keeps the
  authoritative optimizer moments and RNG streams; the coordinator keeps a
  weight-only mirror for aggregation and evaluation.
* **Delta-only rounds** — each round the coordinator sends the participant's
  current (post-broadcast) weights down and receives ``(loss,
  parameter-delta, message-stats)`` back.  Deltas are taken on the raw
  IEEE-754 bit patterns (wrap-around ``uint64`` differences), so the
  coordinator-side reconstruction ``received ⊕ delta`` is *lossless*: the
  mirror ends the round bitwise-identical to the worker copy, and therefore
  to serial training.  A float delta (``trained - received``) would lose low
  bits to rounding and break the bitwise-parity contract.
* **Worker-side fusion** — a worker may train its resident shard through the
  :class:`~repro.federated.engine.batched.BatchedBackend` (one autograd graph
  per shard), so the pool speeds training up even on machines where true
  process parallelism is unavailable.

The pool is generic: besides the built-in Step-1 ``train`` command it can
``call`` any module-level function against the worker's resident-client
registry, which is how AdaFGL Step 2 reuses the same workers (and their
already-resident subgraphs) for personalized training.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
import weakref
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.federated.engine.faults import payload_checksum

StateDict = Dict[str, np.ndarray]

#: sentinel distinguishing lossy top-k payloads from bit-pattern deltas
TOPK_MARKER = "__topk__"

#: sentinel marking a whole-shard stacked bit-delta reply: one ``(B, ...)``
#: uint64 array per parameter instead of ``B`` per-client dicts (fewer
#: numpy calls and far fewer pickled objects per round)
STACK_MARKER = "__stacked__"

#: sentinel marking a hierarchical (edge-aggregated) reply: the worker folded
#: its whole shard with coordinator-supplied weights and ships one
#: ``(client_ids, fixed-point partial)`` instead of per-client deltas
FOLD_MARKER = "__fold__"


# ----------------------------------------------------------------------
# Lossless bit-pattern weight deltas
# ----------------------------------------------------------------------
def encode_state_delta(trained: StateDict, received: StateDict
                       ) -> Dict[str, np.ndarray]:
    """Per-parameter wrap-around difference of the IEEE-754 bit patterns.

    ``apply_state_delta(received, delta)`` reconstructs ``trained`` exactly
    (bit for bit); a plain float difference would not, because
    ``a + (b - a)`` rounds.  The payload is one 8-byte word per parameter —
    the same volume as shipping the weights, but in a form that the
    communication accounting can attribute to *updates* rather than state.
    """
    delta = {}
    for key, new in trained.items():
        old = np.ascontiguousarray(received[key], dtype=np.float64)
        new = np.ascontiguousarray(new, dtype=np.float64)
        delta[key] = new.view(np.uint64) - old.view(np.uint64)
    return delta


def apply_state_delta(received: StateDict, delta: Dict[str, np.ndarray]
                      ) -> StateDict:
    """Invert :func:`encode_state_delta`: lossless weight reconstruction."""
    state = {}
    for key, bits in delta.items():
        old = np.ascontiguousarray(received[key], dtype=np.float64)
        state[key] = (old.view(np.uint64) + bits).view(np.float64).copy()
    return state


def encode_stacked_delta(stacks: Dict[str, np.ndarray],
                         received: Sequence[StateDict]
                         ) -> Dict[str, np.ndarray]:
    """Whole-shard bit delta: one vectorised wrap-around diff per parameter.

    ``stacks[name]`` is the trained ``(B, ...)`` parameter stack (a
    resident batched plan's hot tensors); ``received`` lists each shard
    client's broadcast state in stack order.  Bit-for-bit equivalent to
    ``B`` :func:`encode_state_delta` calls, in ``len(stacks)`` numpy ops
    when the broadcast was uniform (the common FedAvg case).
    """
    first = received[0]
    uniform = all(state is first for state in received)
    delta = {}
    for name, stack in stacks.items():
        if uniform:
            old = np.ascontiguousarray(first[name], dtype=np.float64)[None]
        else:
            old = np.stack([np.asarray(state[name], dtype=np.float64)
                            for state in received])
        delta[name] = stack.view(np.uint64) - old.view(np.uint64)
    return delta


def apply_stacked_delta(received: Sequence[StateDict],
                        delta: Dict[str, np.ndarray]) -> List[StateDict]:
    """Invert :func:`encode_stacked_delta`; per-client states are views."""
    first = received[0]
    uniform = all(state is first for state in received)
    stacks = {}
    for name, bits in delta.items():
        if uniform:
            old = np.ascontiguousarray(first[name], dtype=np.float64)[None]
        else:
            old = np.stack([np.asarray(state[name], dtype=np.float64)
                            for state in received])
        stacks[name] = (old.view(np.uint64) + bits).view(np.float64)
    return [{name: stack[index] for name, stack in stacks.items()}
            for index in range(len(received))]


# ----------------------------------------------------------------------
# Varint index coding (entropy-coded qtopk index vectors)
# ----------------------------------------------------------------------
def pack_indices(indices: np.ndarray) -> np.ndarray:
    """Delta + LEB128 encode a **sorted** index vector into a uint8 stream.

    Sorted top-k indices are dominated by small gaps, so storing the first
    index followed by successive gaps as LEB128 varints (7 payload bits per
    byte, high bit = continuation) compresses the classic 8-byte-per-index
    vector by ~4-8x at benchmark tensor sizes.  Exact round-trip via
    :func:`unpack_indices`.
    """
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return np.empty(0, dtype=np.uint8)
    gaps = np.empty(idx.size, dtype=np.uint64)
    gaps[0] = np.uint64(int(idx[0]))
    gaps[1:] = np.diff(idx).astype(np.uint64)
    out = bytearray()
    for gap in gaps.tolist():
        while gap > 0x7F:
            out.append((gap & 0x7F) | 0x80)
            gap >>= 7
        out.append(gap)
    return np.frombuffer(bytes(out), dtype=np.uint8)


def unpack_indices(packed: np.ndarray, count: int) -> np.ndarray:
    """Invert :func:`pack_indices`: recover ``count`` sorted int64 indices."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    data = packed.tobytes()
    gaps = np.empty(count, dtype=np.int64)
    pos = 0
    for i in range(count):
        shift = 0
        value = 0
        while True:
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        gaps[i] = value
    return np.cumsum(gaps)


# ----------------------------------------------------------------------
# Lossy top-k float deltas (compressed transport, optionally quantised)
# ----------------------------------------------------------------------
def quantise_uniform(values: np.ndarray, bits: int) -> np.ndarray:
    """Symmetric uniform quantiser: snap to ``2^(bits-1) - 1`` signed levels.

    Per call the scale is the largest magnitude present, so the payload is
    ``bits`` per value plus one float scale — the classic QSGD-style uniform
    grid.  Dequantised values are returned (the float each side reconstructs
    from the wire integers), keeping sender and receiver in lockstep.
    """
    if bits < 2 or bits > 32:
        raise ValueError("delta_bits must be in [2, 32]")
    if values.size == 0:
        return values
    scale = float(np.abs(values).max())
    if scale == 0.0:
        return values
    levels = float(2 ** (bits - 1) - 1)
    return np.round(values / scale * levels) * (scale / levels)


def encode_topk_delta(trained: StateDict, received: StateDict, top_k: int,
                      residual: Optional[Dict[str, np.ndarray]] = None,
                      bits: Optional[int] = None
                      ) -> Tuple[Dict, Dict[str, np.ndarray], int]:
    """Keep only the ``top_k`` largest-magnitude entries of each float delta.

    The delta is taken as ``(trained - received) + residual`` — the residual
    carries the mass dropped by earlier rounds (error feedback, Stich et
    al.), so truncation error accumulates into later uploads instead of being
    lost forever.  With ``bits`` set the kept values are additionally pushed
    through :func:`quantise_uniform` (the ``qtopk`` codec) and the
    quantisation error joins the dropped mass in the residual, so *both*
    lossy stages feed back.  Returns ``(payload, new_residual,
    transported_values)``: the payload maps each parameter to ``(indices,
    values, shape)``, the new residual is what truncation/quantisation
    dropped this round, and ``transported_values`` counts 8-byte words on
    the wire.  Float transport ships raw int64 indices (one word per kept
    index plus one per kept value); quantised transport
    (``bits`` set) entropy-codes the sorted index vector with
    :func:`pack_indices` — delta + LEB128 varints, ``⌈packed bytes / 8⌉``
    words — plus ``⌈k · bits / 64⌉`` packed value words and one scale word.

    Unlike the bit codec this is **lossy**: the sender must overwrite its own
    weights with :func:`apply_topk_delta` of what it shipped so sender and
    receiver stay in the same (compressed) trajectory.
    """
    payload: Dict[str, Tuple] = {}
    new_residual: Dict[str, np.ndarray] = {}
    transported = 0
    for key, new in trained.items():
        old = np.asarray(received[key], dtype=np.float64)
        delta = np.asarray(new, dtype=np.float64) - old
        if residual is not None and key in residual:
            delta = delta + residual[key]
        flat = delta.ravel()
        k = min(int(top_k), flat.size)
        if k < flat.size:
            keep = np.argpartition(np.abs(flat), -k)[-k:]
            keep.sort()
        else:
            keep = np.arange(flat.size)
        values = flat[keep].copy()
        if bits is not None:
            values = quantise_uniform(values, bits)
        dropped = delta.copy()
        # Kept entries keep only their quantisation error (exactly 0.0 when
        # the transport is float), everything else keeps its full mass.
        dropped.ravel()[keep] = flat[keep] - values
        new_residual[key] = dropped
        if bits is None:
            payload[key] = (keep.astype(np.int64), values, delta.shape)
            transported += 2 * int(keep.size)
        else:
            packed = pack_indices(keep)
            payload[key] = (packed, values, delta.shape)
            transported += -(-packed.nbytes // 8) \
                + -(-int(keep.size) * int(bits) // 64) + 1
    return payload, new_residual, transported


def apply_topk_delta(received: StateDict, payload: Dict) -> StateDict:
    """Add a sparse top-k delta payload onto the received weights.

    Accepts both index transports: raw int64 vectors (``topk``) and
    varint-packed uint8 streams (``qtopk``), detected by dtype.
    """
    state = {}
    for key, (indices, values, shape) in payload.items():
        if indices.dtype == np.uint8:
            indices = unpack_indices(indices, len(values))
        dense = np.asarray(received[key], dtype=np.float64).copy()
        dense.ravel()[indices] += values
        state[key] = dense.reshape(shape)
    return state


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _train_shard(residents: Dict[int, object], intra_backend,
                 residuals: Dict[int, Dict[str, np.ndarray]],
                 client_ids: Sequence[int], states: Sequence[StateDict],
                 assign: Dict[int, int], intra_worker: str,
                 codec: Tuple[str, int, int] = ("bitdelta", 0, 0),
                 slowdown: float = 1.0, fault: Optional[Dict] = None,
                 with_snapshots: bool = False,
                 fold_weights: Optional[Dict[int, float]] = None
                 ) -> Tuple[Dict[int, float], Dict[int, Dict], Dict]:
    """Worker-side round: load broadcast weights, train the shard, diff.

    ``states``/``assign`` carry the *deduplicated* broadcast: after plain
    FedAvg every participant receives the identical global state, so the
    coordinator ships each distinct state dict once and maps client ids onto
    it (personalized strategies simply ship more distinct states).

    ``intra_worker`` selects how the resident shard runs its local epochs:
    ``"serial"`` is the reference per-client loop; ``"auto"``/``"batched"``
    route the shard through ``intra_backend``, the worker's long-lived
    :class:`~repro.federated.engine.batched.BatchedBackend` (which itself
    falls back to the serial loop whenever the shard cannot be fused, and
    whose plan cache persists across rounds).

    ``codec`` is ``(name, top_k, bits)`` and selects the upload transport:
    ``"bitdelta"`` ships the lossless bit-pattern delta; ``"topk"`` ships
    only the ``top_k`` largest-magnitude float-delta entries per parameter;
    ``"qtopk"`` additionally snaps the kept values onto a ``bits``-per-value
    uniform grid.  Both lossy codecs keep the dropped/quantised mass in
    ``residuals`` (error feedback) and snap the worker's own weights onto
    the truncated trajectory so mirror and worker never diverge.
    ``slowdown > 1`` sleeps ``(slowdown - 1) ×`` the shard's
    measured **CPU** time — the simulated-heterogeneous-hardware knob used
    by the straggler benchmarks and the deterministic async tests.  The CPU
    clock (not wall) is the basis so slow hardware costs a fixed multiple of
    its own compute; wall time on an oversubscribed host includes scheduler
    contention, which would compound the penalty.

    ``fault`` is an injected worker-side failure directive from a
    :class:`~repro.federated.engine.faults.FaultPlan`: ``{"kind": "crash"}``
    kills the process before any training (the coordinator sees a dead
    pipe), ``{"kind": "stall", "duration": s}`` sleeps ``s`` seconds before
    replying (the straggler a ``round_timeout`` drops).  ``with_snapshots``
    piggybacks a weight-free :func:`~repro.federated.engine.backends
    .snapshot_client_state` per shard client onto the reply — the
    coordinator-side recovery snapshots that let a crashed worker's
    residents be re-bootstrapped exactly.

    ``fold_weights`` (hierarchical rounds) maps each shard client to its
    globally-normalized aggregation coefficient: instead of per-client
    deltas the worker acts as an **edge aggregator**, folding every trained
    state into one order-independent fixed-point partial
    (:class:`~repro.federated.server.DeterministicSum`) and shipping
    ``{FOLD_MARKER: (client_ids, partial)}`` — an O(parameters) upload for
    the whole shard, independent of shard size.
    """
    if fault is not None and fault.get("kind") == "crash":
        # Simulated hard crash: no reply, no cleanup, dead pipe.
        os._exit(1)
    start = time.perf_counter()
    cpu_start = time.process_time()
    shard = [residents[cid] for cid in client_ids]
    received = {client_id: states[assign[client_id]]
                for client_id in client_ids}

    resident_plan = None
    if intra_worker != "serial" and len(shard) >= 2:
        # Resident fast path: the broadcast loads straight into the plan's
        # hot stacked tensors and the trained parameters read back as
        # views — the shard's client objects are not touched at all.
        resident = intra_backend.try_resident_round(shard, received)
        if resident is not None:
            loss_list, resident_plan = resident
            mode = "batched"

    if resident_plan is None:
        if intra_backend is not None:
            # The classic path reads/writes client objects: any resident
            # stacked state (e.g. a bigger shard trained hot last round)
            # must land back in them first.
            intra_backend.flush_hot()
        for client in shard:
            client.set_weights(received[client.client_id])
        if intra_worker == "serial" or len(shard) < 2:
            mode = "serial"
            loss_list = [client.local_train() for client in shard]
        else:
            loss_list = intra_backend.run_local_training(shard)
            mode = "batched" if intra_backend.last_fallback is None \
                else f"serial ({intra_backend.last_fallback})"

    lossy = codec[0] in ("topk", "qtopk")
    quant_bits = codec[2] if codec[0] == "qtopk" else None
    losses, deltas, delta_values = {}, {}, 0
    if fold_weights is not None:
        # Edge aggregation: fold the shard's trained states with the exact
        # coordinator-supplied coefficients into integer limbs — bitwise
        # equal to the coordinator folding each state itself, in any order.
        from repro.federated.server import DeterministicSum

        acc = DeterministicSum()
        for index, client in enumerate(shard):
            trained = resident_plan.client_state(index) if resident_plan \
                else client.get_weights()
            acc.fold(trained, fold_weights[client.client_id])
        partial = acc.partial()
        deltas = {FOLD_MARKER: (list(client_ids), partial)}
        delta_values = sum(hi.size + lo.size for hi, lo in partial.values())
    elif resident_plan is not None and not lossy:
        # One vectorised bit-diff per parameter for the whole shard.
        stacked = encode_stacked_delta(
            resident_plan.stacked_params(),
            [received[cid] for cid in client_ids])
        deltas = {STACK_MARKER: (list(client_ids), stacked)}
        delta_values = sum(v.size for v in stacked.values())
    else:
        for index, client in enumerate(shard):
            cid = client.client_id
            trained = resident_plan.client_state(index) if resident_plan \
                else client.get_weights()
            if lossy:
                payload, residuals[cid], transported = encode_topk_delta(
                    trained, received[cid], codec[1], residuals.get(cid),
                    bits=quant_bits)
                deltas[cid] = {TOPK_MARKER: payload}
                delta_values += transported
                # Snap onto the truncated trajectory the coordinator sees.
                truncated = apply_topk_delta(received[cid], payload)
                if resident_plan is not None:
                    resident_plan.load_client_state(index, truncated)
                else:
                    client.set_weights(truncated)
            else:
                deltas[cid] = encode_state_delta(trained, received[cid])
                delta_values += sum(v.size for v in deltas[cid].values())
    for client, loss in zip(shard, loss_list):
        losses[client.client_id] = loss

    elapsed = time.perf_counter() - start
    if slowdown > 1.0:
        penalty = (time.process_time() - cpu_start) * (slowdown - 1.0)
        time.sleep(penalty)
        elapsed += penalty
    if fault is not None and fault.get("kind") == "stall":
        pause = float(fault.get("duration", 0.0))
        time.sleep(pause)
        elapsed += pause
    stats = {"mode": mode, "delta_values": delta_values,
             "clients": len(shard), "busy_sec": elapsed,
             "checksum": payload_checksum(deltas)}
    if with_snapshots:
        from repro.federated.engine.backends import snapshot_client_state

        if resident_plan is not None:
            # The hot stacked tensors hold the trained weights/moments;
            # land them back in the client objects before snapshotting.
            intra_backend.flush_hot()
        stats["snapshots"] = {
            client.client_id: snapshot_client_state(client,
                                                    include_weights=False)
            for client in shard}
    return losses, deltas, stats


def _worker_loop(conn) -> None:
    """Command loop run inside every worker process.

    Residents (``client_id → Client``) live in a local dict for the whole
    process lifetime; commands mutate it in place.  Every command returns
    ``("ok", result)`` or ``("error", formatted traceback)`` so the
    coordinator can re-raise with worker context.
    """
    residents: Dict = {}
    residuals: Dict = {}  # per-client error feedback of the top-k codec
    intra_backend = None  # built lazily, plan cache lives for the process
    last_train = None     # cached last train reply for corruption resends
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if command == "stop":
                conn.send(("ok", None))
                break
            elif command == "adopt":
                for cid, blob in payload:
                    residents[cid] = pickle.loads(blob)
                result = None
            elif command == "train":
                # Downlink integrity: the coordinator stamps a checksum of
                # the clean broadcast; a mismatch here means the payload was
                # damaged on the way down — ask for one clean resend
                # instead of training on garbage (mirror of the uplink
                # corrupt/resend path).
                crc, args = payload
                if crc is not None and payload_checksum(args) != crc:
                    conn.send(("retry", None))
                    continue
                if intra_backend is None:
                    from repro.federated.engine.batched import BatchedBackend
                    intra_backend = BatchedBackend()
                result = _train_shard(residents, intra_backend, residuals,
                                      *args)
                last_train = result
            elif command == "resend":
                # The coordinator detected a corrupted/dropped reply; ship
                # the cached result again (a fresh pickle of clean data).
                if last_train is None:
                    raise RuntimeError("no train reply cached to resend")
                result = last_train
            elif command == "fetch":
                # Mutable state of one resident — eviction pulls only the
                # worker-owned optimizer moments and RNG streams.
                from repro.federated.engine.backends import (
                    snapshot_client_state)
                if intra_backend is not None:
                    intra_backend.flush_hot()
                cid, drop, with_weights = payload
                result = snapshot_client_state(residents[cid],
                                               include_weights=with_weights)
                if drop:
                    del residents[cid]
                    residuals.pop(cid, None)
            elif command == "fetch_all":
                from repro.federated.engine.backends import (
                    snapshot_client_state)
                if intra_backend is not None:
                    intra_backend.flush_hot()
                result = {cid: snapshot_client_state(
                              client, include_weights=payload)
                          for cid, client in residents.items()}
            elif command == "call":
                # Generic escape hatch: run a module-level function against
                # the resident registry (how AdaFGL Step 2 rides the pool).
                # Callees read resident client state, so resident stacked
                # plans must flush first.
                if intra_backend is not None:
                    intra_backend.flush_hot()
                func, args = payload
                result = func(residents, *args)
            else:
                raise ValueError(f"unknown worker command '{command}'")
            conn.send(("ok", result))
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except (OSError, ValueError, TypeError):
                break
    conn.close()


class WorkerError(RuntimeError):
    """A command failed inside a worker; carries the worker traceback.

    :attr:`worker` is the failing worker's index, :attr:`command` the
    command in flight when the failure surfaced, and
    :attr:`remote_traceback` the formatted traceback text from the worker
    process (``None`` for coordinator-side failures such as dead pipes) —
    enough to diagnose a mid-round failure from the coordinator log alone.
    """

    def __init__(self, message: str, worker: Optional[int] = None,
                 command: Optional[str] = None,
                 remote_traceback: Optional[str] = None):
        super().__init__(message)
        self.worker = worker
        self.command = command
        self.remote_traceback = remote_traceback


class BroadcastCorrupted(WorkerError):
    """A worker rejected a checksum-failed downlink broadcast.

    Raised coordinator-side when a worker answers a ``train`` command with
    ``("retry", None)``: the payload failed its downlink checksum on
    arrival, the worker did not execute it, and one clean resend of the
    cached broadcast recovers the shard.  Unlike a generic
    :class:`WorkerError` this does **not** poison the pool — the
    request→reply protocol stayed aligned."""


class WorkerCrash(WorkerError):
    """A worker process died (dead pipe) instead of answering a command.

    Unlike a :class:`WorkerError` reply — the worker is alive but the
    command failed — a crash is an infrastructure failure the supervision
    layer can recover from (``on_worker_failure="restart"|"redistribute"``).
    """


class PersistentWorkerPool:
    """A fixed team of command-loop workers, one duplex channel each.

    The channel is provided by a
    :class:`~repro.federated.engine.transport.WorkerTransport` —
    ``PipeTransport`` (the default: today's fork pipes, byte for byte) or
    ``TcpTransport`` (framed sockets; workers may be separate processes or
    remote hosts).  The pool only ever uses the
    ``send``/``recv``/``poll``/``close`` surface both channel kinds share,
    so the command protocol is transport-agnostic.

    Supervision: :meth:`respawn` replaces a dead worker's process and
    channel in place, :meth:`mark_dead` retires a slot so surviving workers
    absorb its load, and :meth:`wait` accepts a timeout so round loops can
    enforce deadlines.  Dead channels surface as :class:`WorkerCrash` (with
    the worker index and the command whose reply was expected) rather than
    raw ``OSError``/``EOFError`` — and a TCP link that exhausted its
    heartbeat/reconnect budget surfaces exactly like a dead pipe.
    """

    def __init__(self, num_workers: int, transport=None):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if transport is None:
            from repro.federated.engine.transport import PipeTransport

            transport = PipeTransport()
        self.transport = transport
        #: set when a command failed and replies may be left queued — see
        #: :meth:`recv`
        self.poisoned = False
        #: per-worker count of sent commands whose reply is still unread
        self._inflight = [0] * num_workers
        #: per-worker FIFO of in-flight command names (reply attribution)
        self._commands: List[deque] = [deque() for _ in range(num_workers)]
        #: per-worker FIFO of replies read off the channel but not yet
        #: consumed (``recv_reply_to`` sets these aside) as
        #: (status, result, command)
        self._buffered: List[deque] = [deque() for _ in range(num_workers)]
        #: worker slots retired by :meth:`mark_dead`
        self._dead: Set[int] = set()
        self._channels = []
        self._procs = []
        for index in range(num_workers):
            channel, process = transport.spawn(index)
            self._channels.append(channel)
            self._procs.append(process)
        # Reclaim abandoned pools at GC time (daemon workers additionally
        # guarantee nothing survives coordinator exit).  The finalizer
        # captures the *live* lists — respawned workers replace their slot
        # in place, so they are reaped too.
        self._finalizer = weakref.finalize(
            self, PersistentWorkerPool._reap, self._channels, self._procs,
            transport)

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._procs)

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    @property
    def alive_workers(self) -> List[int]:
        """Worker slots not retired by :meth:`mark_dead`."""
        return [worker for worker in range(len(self._procs))
                if worker not in self._dead]

    def is_alive(self, worker: int) -> bool:
        """True when the slot is active and its process is running.

        Externally launched workers (TCP ``mode="external"``) have no local
        process handle; liveness is then the channel's.
        """
        if worker in self._dead:
            return False
        process = self._procs[worker]
        if process is None:
            return not getattr(self._channels[worker], "_dead", False)
        return process.is_alive()

    # ------------------------------------------------------------------
    def _crash(self, worker: int, command: Optional[str],
               cause: BaseException) -> "WorkerCrash":
        self.poisoned = True
        self._inflight[worker] = 0
        self._commands[worker].clear()
        self._buffered[worker].clear()
        return WorkerCrash(
            f"worker {worker} died (channel closed) "
            f"while '{command}' was in flight: {cause!r}",
            worker=worker, command=command)

    def send(self, worker: int, command: str, payload=None) -> None:
        """Queue one command on a worker (non-blocking for small payloads).

        A dead pipe raises :class:`WorkerCrash` so the supervision layer can
        recover instead of the raw ``BrokenPipeError`` aborting the run.
        """
        if worker in self._dead:
            raise WorkerCrash(f"worker {worker} has been retired",
                              worker=worker, command=command)
        try:
            self._channels[worker].send((command, payload))
        except (OSError, ValueError, BlockingIOError) as error:
            raise self._crash(worker, command, error) from error
        self._inflight[worker] += 1
        self._commands[worker].append(command)

    def recv(self, worker: int):
        """Collect the next reply from a worker, re-raising worker errors.

        A failed command (or a dead pipe) poisons the pool: workers may
        still have unread replies queued, so the strict request→reply
        pairing can no longer be trusted and best-effort operations (the
        close-time state sync) must be skipped rather than consume a stale
        reply.  A dead pipe raises :class:`WorkerCrash`; a command that
        failed worker-side raises :class:`WorkerError`, both carrying the
        worker index, the command the reply answers and (for errors) the
        remote traceback.
        """
        if self._buffered[worker]:
            status, result, command = self._buffered[worker].popleft()
        else:
            status, result, command = self._raw_recv(worker)
        return self._interpret(worker, status, result, command)

    def _raw_recv(self, worker: int):
        """Read the next reply off the pipe; returns (status, result, cmd)."""
        command = self._commands[worker][0] if self._commands[worker] \
            else None
        try:
            status, result = self._channels[worker].recv()
        except (EOFError, OSError) as error:
            raise self._crash(worker, command, error) from error
        except BaseException:
            self.poisoned = True
            raise
        self._inflight[worker] -= 1
        if self._commands[worker]:
            self._commands[worker].popleft()
        return status, result, command

    def _interpret(self, worker: int, status, result, command):
        if status == "retry":
            # The worker refused a checksum-failed broadcast and is waiting
            # for a clean resend.  The request→reply pairing is intact (this
            # *was* the train reply), so the pool is not poisoned — the
            # caller re-sends the cached clean payload.
            raise BroadcastCorrupted(
                f"worker {worker} rejected a corrupted '{command}' "
                "broadcast (downlink checksum mismatch)",
                worker=worker, command=command)
        if status != "ok":
            self.poisoned = True
            raise WorkerError(
                f"worker {worker} failed:\n{result}",
                worker=worker, command=command, remote_traceback=result)
        return result

    def recv_reply_to(self, worker: int, command: str):
        """Reply to the oldest in-flight command named ``command``.

        Replies always arrive in send order; replies to *earlier* commands
        are set aside (and served by later :meth:`recv` calls in order), so
        a caller can chase one specific reply — the corruption-retry path
        sends ``resend`` while earlier train replies may still be queued.
        """
        for index, (status, result, cmd) in enumerate(self._buffered[worker]):
            if cmd == command:
                del self._buffered[worker][index]
                return self._interpret(worker, status, result, cmd)
        while True:
            status, result, cmd = self._raw_recv(worker)
            if cmd == command:
                return self._interpret(worker, status, result, cmd)
            self._buffered[worker].append((status, result, cmd))

    def next_reply_command(self, worker: int) -> Optional[str]:
        """Name of the command the worker's next reply answers (or None)."""
        if self._buffered[worker]:
            return self._buffered[worker][0][2]
        if self._commands[worker]:
            return self._commands[worker][0]
        return None

    def poll(self, worker: int) -> bool:
        """True when a reply from this worker can be read without blocking."""
        if worker in self._dead:
            return False
        if self._buffered[worker]:
            return True
        try:
            return self._channels[worker].poll(0)
        except (OSError, ValueError):
            # A closed/broken channel is "readable": recv raises the crash.
            return True

    def inject_network_fault(self, worker: int, kind: str,
                             duration: float = 0.0) -> None:
        """Schedule a network fault on a worker's link (TCP channels only).

        ``delay``/``partition``/``reorder``/``drop_msg`` — see
        :meth:`~repro.federated.engine.transport._TcpChannel.inject`.  Pipe
        channels have no wire to perturb; injecting on one is an error the
        fault-plan validation surfaces before any round runs.
        """
        channel = self._channels[worker]
        inject = getattr(channel, "inject", None)
        if inject is None:
            raise WorkerError(
                f"transport {self.transport.name!r} does not support "
                f"network fault injection (kind={kind!r})",
                worker=worker)
        inject(kind, duration)

    def network_stats(self) -> Dict:
        """The transport's cumulative wire statistics (name, frames, ...)."""
        return self.transport.stats()

    # ------------------------------------------------------------------
    def respawn(self, worker: int) -> None:
        """Replace a dead worker's process and channel in the same slot.

        The replacement starts with an empty resident registry — the
        supervision layer re-adopts the lost clients from its recovery
        snapshots after this call.  Over TCP in ``external`` mode the fresh
        channel instead *waits* (within the connect budget) for an operator
        to launch a replacement ``repro.cli worker``.
        """
        try:
            self._channels[worker].close()
        except OSError:
            pass
        old = self._procs[worker]
        if old is not None:
            if old.is_alive():
                old.terminate()
            old.join(timeout=5.0)
        channel, process = self.transport.spawn(worker)
        self._channels[worker] = channel
        self._procs[worker] = process
        self._inflight[worker] = 0
        self._commands[worker].clear()
        self._buffered[worker].clear()
        self._dead.discard(worker)

    def mark_dead(self, worker: int) -> None:
        """Retire a worker slot (redistribute policy): close, don't replace."""
        self._dead.add(worker)
        try:
            self._channels[worker].close()
        except OSError:
            pass
        process = self._procs[worker]
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
        self._inflight[worker] = 0
        self._commands[worker].clear()
        self._buffered[worker].clear()

    @property
    def safe_for_sync(self) -> bool:
        """True when every sent command has been answered and none failed.

        The close-time state sync must not issue new commands while replies
        are pending (a coordinator-side abort between send and recv leaves
        them queued): the sync would read a stale ``train`` reply as its own
        result, masking the original error with a protocol desync.
        """
        return not self.poisoned and not any(self._inflight)

    def call(self, worker: int, command: str, payload=None):
        self.send(worker, command, payload)
        return self.recv(worker)

    def wait(self, workers: Sequence[int],
             timeout: Optional[float] = None) -> List[int]:
        """Block until ≥1 of the given workers has a reply ready; return them.

        The ``as_completed`` primitive of the pipelined round loop: the
        coordinator folds whichever shard lands first instead of draining
        replies in dispatch order behind the slowest worker.  With a
        ``timeout`` (seconds) the wait returns an empty list once the
        deadline passes — the round-timeout primitive.  A worker whose
        channel died also reports ready (EOF is readable); its ``recv``
        then raises :class:`WorkerCrash`, which is how crashes are detected.
        """
        candidates = [worker for worker in workers
                      if worker not in self._dead]
        if not candidates:
            return []
        buffered = [worker for worker in candidates
                    if self._buffered[worker]]
        if buffered:
            # Replies set aside by recv_reply_to are already readable.
            return buffered
        ready = self.transport.wait(
            [self._channels[worker] for worker in candidates],
            timeout=timeout)
        ready_ids = {id(channel) for channel in ready}
        return [worker for worker in candidates
                if id(self._channels[worker]) in ready_ids]

    def run_batches(self, batches: Dict[int, List[Tuple[str, object]]]
                    ) -> Dict[int, List]:
        """Pump many queued commands through the workers, deadlock-free.

        Keeps **at most one command in flight per worker**: queueing several
        large payloads at once can fill a worker's inbound pipe while the
        worker is itself blocked writing a large reply nobody is reading —
        a send/send deadlock.  Here the next command for a worker is written
        only after its previous reply has been drained (the worker is then
        guaranteed to be parked on ``recv``), and replies are consumed as
        soon as any connection becomes readable.

        Returns per-worker result lists in the order the commands were
        queued; worker errors re-raise with the worker traceback.
        """
        pending = {worker: list(commands)
                   for worker, commands in batches.items() if commands}
        results: Dict[int, List] = {worker: [] for worker in batches}
        worker_of = {id(self._channels[worker]): worker
                     for worker in pending}
        for worker in pending:
            self.send(worker, *pending[worker].pop(0))
        outstanding = set(pending)
        while outstanding:
            ready = self.transport.wait(
                [self._channels[worker] for worker in outstanding])
            for channel in ready:
                worker = worker_of[id(channel)]
                results[worker].append(self.recv(worker))
                if pending[worker]:
                    self.send(worker, *pending[worker].pop(0))
                else:
                    outstanding.discard(worker)
        return results

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop every worker and release the pipes (idempotent)."""
        if self._finalizer.alive:
            self._finalizer()

    @staticmethod
    def _reap(channels, procs, transport) -> None:
        # A crashed worker's broken channel (or an already-closed slot
        # retired by mark_dead) must never abort the close: every failure
        # here is swallowed so the survivors are always stopped, joined and
        # reaped.
        for channel in channels:
            try:
                channel.send(("stop", None))
            except (OSError, ValueError, BlockingIOError, EOFError):
                pass
        # Close the coordinator channel ends *before* joining: a worker
        # still blocked writing a large unread reply (e.g. after a mid-round
        # abort) gets a broken channel and exits immediately instead of
        # burning the join timeout; idle workers see EOF at their next recv.
        # (TCP channels additionally drain briefly so the stop command is
        # actually transmitted before the link is torn down.)
        for channel in channels:
            try:
                channel.close()
            except (OSError, ValueError):
                pass
        for process in procs:
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        try:
            transport.close()
        except (OSError, ValueError):
            pass

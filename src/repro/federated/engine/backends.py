"""Execution backends: how local client epochs are driven each round.

The federated training loop is backend-agnostic: every round the trainer
hands the selected participants to an :class:`ExecutionBackend`, which runs
their local epochs and returns one mean training loss per participant.  All
backends leave each participant's observable training trajectory (losses,
weights, evaluation) exactly where serial execution would, so aggregation,
history and evaluation are backend-independent (equivalence-tested in
``tests/test_engine.py``).

Built-ins:

* :class:`SerialBackend` — the reference ``for client in participants`` loop;
* :class:`ProcessPoolBackend` — **persistent workers with resident clients**:
  each worker receives its sharded clients once (bootstrap), keeps their
  optimizer moments and RNG streams resident for the whole run, and per round
  exchanges only broadcast weights down / lossless parameter deltas up (see
  :mod:`~repro.federated.engine.persistent`).  Workers may fuse their
  resident shard through the batched engine (``intra_worker="auto"``);
* :class:`~repro.federated.engine.batched.BatchedBackend` — stacks
  homogeneous-architecture clients into one batched autograd graph
  (registered lazily to avoid import cycles).
"""

from __future__ import annotations

import copy
import inspect
import os
import pickle
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

import numpy as np

from repro.federated.communication import CommunicationTracker
from repro.federated.engine.persistent import (
    PersistentWorkerPool,
    WorkerError,
    apply_state_delta,
    encode_state_delta,
)


# ----------------------------------------------------------------------
# Client state snapshots (used to move training state across processes)
# ----------------------------------------------------------------------
def _iter_submodules(module):
    yield module
    for child in module._modules.values():
        yield from _iter_submodules(child)


def _module_rngs(model) -> List[np.random.Generator]:
    """Every per-module RNG (dropout streams, ...) in deterministic order."""
    rngs = []
    for submodule in _iter_submodules(model):
        rng = getattr(submodule, "_rng", None)
        if isinstance(rng, np.random.Generator):
            rngs.append(rng)
    return rngs


def snapshot_client_state(client, include_weights: bool = True) -> Dict:
    """Everything local training mutates: weights, optimizer, RNG streams.

    ``include_weights=False`` snapshots only the optimizer moments and RNG
    streams — the payload the persistent pool's eviction / close-time sync
    actually consumes (the coordinator mirror already holds newer weights),
    keeping the dominant share of the state off the pipe.
    """
    optimizer_state = {
        key: copy.deepcopy(value)
        for key, value in client.optimizer.__dict__.items()
        if key != "parameters"
    }
    snapshot = {
        "optimizer": optimizer_state,
        "rng_states": [rng.bit_generator.state
                       for rng in _module_rngs(client.model)],
    }
    if include_weights:
        snapshot["weights"] = client.get_weights()
    return snapshot


def restore_client_state(client, snapshot: Dict,
                         include_weights: bool = True) -> None:
    """Apply a :func:`snapshot_client_state` payload to an in-process client.

    ``include_weights=False`` restores only the *worker-owned* mutable state
    (optimizer moments and RNG streams) — used when the coordinator's mirror
    already holds newer weights than the snapshot (e.g. a post-round
    broadcast landed after the snapshot was taken).
    """
    if include_weights:
        client.set_weights(snapshot["weights"])
    client.optimizer.__dict__.update(snapshot["optimizer"])
    for rng, state in zip(_module_rngs(client.model), snapshot["rng_states"]):
        rng.bit_generator.state = state


def _states_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> bool:
    """Bitwise equality of two weight state dicts."""
    if a.keys() != b.keys():
        return False
    return all(np.array_equal(a[key], b[key]) for key in a)


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class ExecutionBackend:
    """Drives the local-training phase of each federated round."""

    name = "base"

    trainer = None

    def bind(self, trainer) -> None:
        """Attach to the owning trainer (called once, before any round)."""
        self.trainer = trainer

    def run_local_training(self, participants: Sequence) -> List[float]:
        """Train every participant locally; return per-participant losses."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker pools, cached plans)."""


class SerialBackend(ExecutionBackend):
    """Reference implementation: clients train one after another."""

    name = "serial"

    def run_local_training(self, participants):
        return [client.local_train() for client in participants]


class ProcessPoolBackend(ExecutionBackend):
    """Persistent-worker local training: resident clients, delta-only IPC.

    Clients are sharded deterministically over the workers
    (``client_id % num_workers``) and each picklable client is shipped to its
    owning worker exactly once.  The worker keeps the authoritative optimizer
    moments and RNG streams for the whole run; every round the coordinator
    sends the participant's current weights down and receives ``(loss,
    lossless bit-pattern parameter delta, message stats)`` back, so the
    in-process mirror reconstructs the worker's weights bit for bit.

    ``intra_worker`` selects how a worker trains its resident shard:
    ``"serial"`` uses the per-client reference loop, making the training
    history **bitwise-identical** to serial execution;
    ``"auto"``/``"batched"`` (the default) fuse the shard into one autograd
    graph via the batched engine when possible (falling back to the
    per-client loop), inheriting that engine's equivalence guarantee —
    histories match serial within the batched tolerance (identical in
    practice at benchmark scale, see ``BENCH_step1.json``; low-order float
    bits may differ on fused shards).

    Clients carrying a non-picklable ``extra_loss`` closure (e.g. FedGL's
    pseudo-label term) stay coordinator-resident and train in-process; a
    client whose hook appears *mid-run* is evicted from its worker first
    (optimizer + RNG state pulled back), so the serial history is still
    reconstructed exactly.

    Simulator IPC volume is tracked separately from the logical federated
    traffic in :attr:`transport` (kinds: ``bootstrap_payload``,
    ``broadcast_weights``, ``parameter_delta``; float-value units, bootstrap
    counted as pickled bytes / 8).
    """

    name = "process_pool"

    def __init__(self, num_workers: Optional[int] = None,
                 intra_worker: str = "auto", **_unused):
        if intra_worker not in ("auto", "batched", "serial"):
            raise ValueError(
                "intra_worker must be 'auto', 'batched' or 'serial', "
                f"got {intra_worker!r}")
        self.num_workers = num_workers
        self.intra_worker = intra_worker
        self.transport = CommunicationTracker()
        self._pool: Optional[PersistentWorkerPool] = None
        self._owner: Dict[int, int] = {}   # client_id → owning worker
        self._local: Set[int] = set()      # coordinator-resident client ids

    # ------------------------------------------------------------------
    def _worker_count(self) -> int:
        return max(1, self.num_workers or os.cpu_count() or 1)

    def ensure_pool(self) -> PersistentWorkerPool:
        """Spawn (or respawn after ``close``) the persistent worker team."""
        if self._pool is None or self._pool.closed:
            self._pool = PersistentWorkerPool(self._worker_count())
            self._owner.clear()
            self._local.clear()
        return self._pool

    def owner_of(self, client_id: int) -> Optional[int]:
        """Worker index holding this client resident (None if in-process)."""
        return self._owner.get(client_id)

    # ------------------------------------------------------------------
    def _bootstrap(self, clients: Sequence) -> List:
        """Ship not-yet-resident clients to their owners; return the pooled.

        Pickles each new client once; unpicklable clients become
        coordinator-resident.  Returns the subset of ``clients`` that is
        worker-resident after the call.
        """
        pool = self._pool
        batches: Dict[int, List] = {}
        pooled = []
        for client in clients:
            cid = client.client_id
            if cid in self._owner:
                pooled.append(client)
                continue
            try:
                blob = pickle.dumps(client,
                                    protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                self._local.add(cid)
                continue
            worker = cid % pool.num_workers
            batches.setdefault(worker, []).append((cid, blob))
            self._owner[cid] = worker
            self.transport.record_download("bootstrap_payload",
                                           len(blob) / 8.0)
            pooled.append(client)
        for worker, batch in batches.items():
            pool.send(worker, "adopt", batch)
        for worker in batches:
            pool.recv(worker)
        return pooled

    def _evict(self, client) -> None:
        """Move a worker-resident client back in-process (exactly).

        The mirror's weights are newer than the worker's (they include the
        last broadcast), so only the worker-owned optimizer moments and RNG
        streams are adopted.
        """
        worker = self._owner.pop(client.client_id)
        snapshot = self._pool.call(worker, "fetch",
                                   (client.client_id, True, False))
        restore_client_state(client, snapshot, include_weights=False)
        self._local.add(client.client_id)

    # ------------------------------------------------------------------
    def run_local_training(self, participants):
        if self._pool is None and len(participants) < 2:
            # Zero-IPC round; still advance the transport tracker so the
            # per-round IPC series stays aligned with federated rounds.
            self.transport.next_round()
            return [client.local_train() for client in participants]

        local_side, candidates = [], []
        for client in participants:
            cid = client.client_id
            if cid in self._local:
                local_side.append(client)
            elif client.extra_loss is not None:
                if cid in self._owner:
                    # _owner is only populated while a pool is alive.
                    self._evict(client)
                else:
                    self._local.add(cid)
                local_side.append(client)
            else:
                candidates.append(client)
        if not candidates:
            # Nothing poolable (e.g. FedGL hooks every client): train
            # in-process without ever spawning workers (zero-IPC round).
            self.transport.next_round()
            return [client.local_train() for client in participants]
        self.ensure_pool()
        pooled = self._bootstrap(candidates)
        pooled_ids = {client.client_id for client in pooled}
        local_side.extend(c for c in candidates
                          if c.client_id not in pooled_ids)

        pool = self._pool
        groups: Dict[int, List[int]] = {}
        mirrors = {c.client_id: c for c in participants}
        unique: List[Dict[str, np.ndarray]] = []
        assign: Dict[int, int] = {}
        sent: Dict[int, Dict[str, np.ndarray]] = {}
        for client in pooled:
            cid = client.client_id
            groups.setdefault(self._owner[cid], []).append(cid)
            state = client.get_weights()
            # Broadcast dedup: after plain FedAvg every participant holds
            # the identical global state (one unique entry, one comparison
            # per client); clustered personalization (e.g. GCFL+) dedups to
            # one entry per cluster.  array_equal exits on the first
            # differing element, so the all-distinct worst case stays cheap.
            for index, candidate in enumerate(unique):
                if _states_equal(candidate, state):
                    assign[cid] = index
                    sent[cid] = candidate
                    break
            else:
                unique.append(state)
                assign[cid] = len(unique) - 1
                sent[cid] = state
        for worker, ids in groups.items():
            used = sorted({assign[cid] for cid in ids})
            local_index = {u: i for i, u in enumerate(used)}
            pool.send(worker, "train",
                      (ids, [unique[u] for u in used],
                       {cid: local_index[assign[cid]] for cid in ids},
                       self.intra_worker))
            self.transport.record_download(
                "broadcast_weights",
                sum(v.size for u in used for v in unique[u].values()))

        # Coordinator-resident clients train while the workers run.
        losses: Dict[int, float] = {}
        for client in local_side:
            losses[client.client_id] = client.local_train()

        for worker, ids in groups.items():
            worker_losses, deltas, stats = pool.recv(worker)
            for cid in ids:
                mirrors[cid].set_weights(
                    apply_state_delta(sent[cid], deltas[cid]))
                losses[cid] = worker_losses[cid]
            self.transport.record_upload("parameter_delta",
                                         stats["delta_values"])
        self.transport.next_round()
        return [losses[client.client_id] for client in participants]

    # ------------------------------------------------------------------
    def _sync_worker_state(self) -> None:
        """Pull optimizer/RNG state of every resident back into the mirrors.

        Called on close so the in-process clients end the run in exactly the
        state serial training would leave them in (weights are already exact
        round by round; moments and RNG streams lived worker-side).
        """
        trainer = self.trainer
        if trainer is None or self._pool is None \
                or not self._pool.safe_for_sync:
            # A failed command — or a coordinator-side abort with replies
            # still in flight — means a fetch_all now could consume a stale
            # train reply as its own result and mask the original error.
            # Skip the best-effort sync entirely.
            return
        mirrors = {c.client_id: c for c in trainer.clients}
        for worker in range(self._pool.num_workers):
            try:
                snapshots = self._pool.call(worker, "fetch_all", False)
                for cid, snapshot in snapshots.items():
                    client = mirrors.get(cid)
                    if client is not None:
                        restore_client_state(client, snapshot,
                                             include_weights=False)
            except (WorkerError, OSError, EOFError):
                continue

    def close(self):
        if self._pool is not None and not self._pool.closed:
            try:
                self._sync_worker_state()
            finally:
                self._pool.shutdown()
        self._pool = None
        self._owner.clear()
        self._local.clear()


#: name → factory for every built-in backend; factories accept (and may
#: ignore) the shared keyword knobs ``num_workers`` / ``intra_worker``.
BACKEND_REGISTRY: Dict[str, Callable[..., ExecutionBackend]] = {
    SerialBackend.name: lambda num_workers=None, **_: SerialBackend(),
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def register_backend(name: str,
                     factory: Callable[..., ExecutionBackend]) -> None:
    """Register a custom backend factory under ``name``."""
    BACKEND_REGISTRY[name.lower()] = factory


def list_backends() -> List[str]:
    """Names of every registered execution backend."""
    return sorted(BACKEND_REGISTRY)


def make_backend(spec: Union[str, ExecutionBackend, None],
                 num_workers: Optional[int] = None,
                 **options) -> ExecutionBackend:
    """Resolve a backend from a registry name or pass an instance through.

    Extra keyword ``options`` (e.g. ``intra_worker``) are forwarded to the
    factory; knobs a factory's signature does not accept are dropped, so
    externally registered factories with the historical ``num_workers``-only
    signature keep working.
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    key = str(spec).lower()
    if key not in BACKEND_REGISTRY:
        raise KeyError(
            f"unknown execution backend '{spec}'; "
            f"available: {', '.join(list_backends())}")
    factory = BACKEND_REGISTRY[key]
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins without introspection
        parameters = None
    if parameters is not None and not any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in parameters.values()):
        options = {name: value for name, value in options.items()
                   if name in parameters}
    return factory(num_workers=num_workers, **options)

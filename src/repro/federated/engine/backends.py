"""Execution backends: how local client epochs are driven each round.

The federated training loop is backend-agnostic: every round the trainer
hands the selected participants to an :class:`ExecutionBackend`, which runs
their local epochs and returns one mean training loss per participant.  All
backends leave each participant's observable training trajectory (losses,
weights, evaluation) exactly where serial execution would, so aggregation,
history and evaluation are backend-independent (equivalence-tested in
``tests/test_engine.py``).

Built-ins:

* :class:`SerialBackend` — the reference ``for client in participants`` loop;
* :class:`ProcessPoolBackend` — **persistent workers with resident clients**:
  each worker receives its sharded clients once (bootstrap), keeps their
  optimizer moments and RNG streams resident for the whole run, and per round
  exchanges only broadcast weights down / lossless parameter deltas up (see
  :mod:`~repro.federated.engine.persistent`).  Workers may fuse their
  resident shard through the batched engine (``intra_worker="auto"``);
* :class:`~repro.federated.engine.batched.BatchedBackend` — stacks
  homogeneous-architecture clients into one batched autograd graph
  (registered lazily to avoid import cycles).
"""

from __future__ import annotations

import copy
import inspect
import os
import pickle
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

import numpy as np

from repro.federated.communication import CommunicationTracker
from repro.federated.engine.persistent import (
    STACK_MARKER,
    TOPK_MARKER,
    PersistentWorkerPool,
    WorkerError,
    apply_stacked_delta,
    apply_state_delta,
    apply_topk_delta,
    encode_state_delta,
)


# ----------------------------------------------------------------------
# Client state snapshots (used to move training state across processes)
# ----------------------------------------------------------------------
def _iter_submodules(module):
    yield module
    for child in module._modules.values():
        yield from _iter_submodules(child)


def _module_rngs(model) -> List[np.random.Generator]:
    """Every per-module RNG (dropout streams, ...) in deterministic order."""
    rngs = []
    for submodule in _iter_submodules(model):
        rng = getattr(submodule, "_rng", None)
        if isinstance(rng, np.random.Generator):
            rngs.append(rng)
    return rngs


def snapshot_client_state(client, include_weights: bool = True) -> Dict:
    """Everything local training mutates: weights, optimizer, RNG streams.

    ``include_weights=False`` snapshots only the optimizer moments and RNG
    streams — the payload the persistent pool's eviction / close-time sync
    actually consumes (the coordinator mirror already holds newer weights),
    keeping the dominant share of the state off the pipe.
    """
    optimizer_state = {
        key: copy.deepcopy(value)
        for key, value in client.optimizer.__dict__.items()
        if key != "parameters"
    }
    snapshot = {
        "optimizer": optimizer_state,
        "rng_states": [rng.bit_generator.state
                       for rng in _module_rngs(client.model)],
    }
    if include_weights:
        snapshot["weights"] = client.get_weights()
    return snapshot


def restore_client_state(client, snapshot: Dict,
                         include_weights: bool = True) -> None:
    """Apply a :func:`snapshot_client_state` payload to an in-process client.

    ``include_weights=False`` restores only the *worker-owned* mutable state
    (optimizer moments and RNG streams) — used when the coordinator's mirror
    already holds newer weights than the snapshot (e.g. a post-round
    broadcast landed after the snapshot was taken).
    """
    if include_weights:
        client.set_weights(snapshot["weights"])
    client.optimizer.__dict__.update(snapshot["optimizer"])
    for rng, state in zip(_module_rngs(client.model), snapshot["rng_states"]):
        rng.bit_generator.state = state


def _states_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> bool:
    """Bitwise equality of two weight state dicts."""
    if a.keys() != b.keys():
        return False
    return all(np.array_equal(a[key], b[key]) for key in a)


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class ExecutionBackend:
    """Drives the local-training phase of each federated round."""

    name = "base"

    #: True when the backend exposes the dispatch/collect round protocol the
    #: pipelined round loops require (see ProcessPoolBackend).
    supports_pipelining = False

    trainer = None

    def bind(self, trainer) -> None:
        """Attach to the owning trainer (called once, before any round)."""
        self.trainer = trainer

    def run_local_training(self, participants: Sequence) -> List[float]:
        """Train every participant locally; return per-participant losses."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker pools, cached plans)."""


class SerialBackend(ExecutionBackend):
    """Reference implementation: clients train one after another."""

    name = "serial"

    def run_local_training(self, participants):
        return [client.local_train() for client in participants]


class PendingRound:
    """Handle for one dispatched-but-not-finished persistent-pool round.

    Created by :meth:`ProcessPoolBackend.dispatch_round`; the round loop then
    pumps :meth:`~ProcessPoolBackend.collect_next` /
    :meth:`~ProcessPoolBackend.collect_worker` until ``outstanding`` is empty
    and settles with :meth:`~ProcessPoolBackend.finish_round`.
    """

    def __init__(self, participants: List):
        #: the round's participants, in selection (client-id) order
        self.participants = participants
        #: client_id → coordinator mirror client
        self.mirrors = {c.client_id: c for c in participants}
        #: worker → shard client ids dispatched to it
        self.groups: Dict[int, List[int]] = {}
        #: client_id → broadcast state the worker trained from (delta base)
        self.sent: Dict[int, Dict[str, np.ndarray]] = {}
        #: coordinator-resident clients (non-poolable)
        self.local_side: List = []
        #: workers whose shard report has not been absorbed yet
        self.outstanding: Set[int] = set()
        #: client_id → mean local-training loss
        self.losses: Dict[int, float] = {}
        #: client_id → trained state reconstructed from the upload delta;
        #: applied to the mirrors by ``finish_round`` (deferring the apply
        #: lets the pipelined loop evaluate the *previous* round — mirrors
        #: still at broadcast state — while stragglers finish)
        self.states: Dict[int, Dict[str, np.ndarray]] = {}
        #: client_id → wall seconds its shard (or its own in-process train
        #: call) spent on local epochs this round — the sync pipeline's
        #: per-client straggler profile (``TrainingHistory.client_round_sec``)
        self.round_sec: Dict[int, float] = {}


class ProcessPoolBackend(ExecutionBackend):
    """Persistent-worker local training: resident clients, delta-only IPC.

    Clients are sharded deterministically over the workers
    (``client_id % num_workers``) and each picklable client is shipped to its
    owning worker exactly once.  The worker keeps the authoritative optimizer
    moments and RNG streams for the whole run; every round the coordinator
    sends the participant's current weights down and receives ``(loss,
    lossless bit-pattern parameter delta, message stats)`` back, so the
    in-process mirror reconstructs the worker's weights bit for bit.

    ``intra_worker`` selects how a worker trains its resident shard:
    ``"serial"`` uses the per-client reference loop, making the training
    history **bitwise-identical** to serial execution;
    ``"auto"``/``"batched"`` (the default) fuse the shard into one autograd
    graph via the batched engine when possible (falling back to the
    per-client loop), inheriting that engine's equivalence guarantee —
    histories match serial within the batched tolerance (identical in
    practice at benchmark scale, see ``BENCH_step1.json``; low-order float
    bits may differ on fused shards).

    Clients carrying a non-picklable ``extra_loss`` closure (e.g. FedGL's
    pseudo-label term) stay coordinator-resident and train in-process; a
    client whose hook appears *mid-run* is evicted from its worker first
    (optimizer + RNG state pulled back), so the serial history is still
    reconstructed exactly.

    Simulator IPC volume is tracked separately from the logical federated
    traffic in :attr:`transport` (kinds: ``bootstrap_payload``,
    ``broadcast_weights``, ``parameter_delta``; float-value units, bootstrap
    counted as pickled bytes / 8).
    """

    name = "process_pool"

    #: the pipelined round loops can drive this backend round by round
    supports_pipelining = True

    def __init__(self, num_workers: Optional[int] = None,
                 intra_worker: str = "auto", delta_codec: str = "bitdelta",
                 delta_top_k: int = 32, delta_bits: int = 8,
                 worker_speeds: Optional[Sequence[float]] = None, **_unused):
        if intra_worker not in ("auto", "batched", "serial"):
            raise ValueError(
                "intra_worker must be 'auto', 'batched' or 'serial', "
                f"got {intra_worker!r}")
        if delta_codec not in ("bitdelta", "topk", "qtopk"):
            raise ValueError(
                "delta_codec must be 'bitdelta', 'topk' or 'qtopk', "
                f"got {delta_codec!r}")
        if delta_codec in ("topk", "qtopk") and delta_top_k < 1:
            raise ValueError("delta_top_k must be >= 1")
        if delta_codec == "qtopk" and not 2 <= int(delta_bits) <= 32:
            raise ValueError("delta_bits must be in [2, 32]")
        if worker_speeds is not None:
            worker_speeds = [float(s) for s in worker_speeds]
            if not worker_speeds or any(s <= 0 for s in worker_speeds):
                raise ValueError("worker_speeds must be positive floats")
        self.num_workers = num_workers
        self.intra_worker = intra_worker
        self.delta_codec = delta_codec
        self.delta_top_k = delta_top_k
        self.delta_bits = int(delta_bits)
        self.worker_speeds = worker_speeds
        self.transport = CommunicationTracker()
        #: cumulative worker-reported busy seconds (training + simulated
        #: slowdown), indexed by worker — the utilization metric's numerator
        self.busy_sec: Dict[int, float] = {}
        #: summary dict written by the last pipelined/async round loop
        self.last_pipeline_stats: Optional[Dict] = None
        self._pool: Optional[PersistentWorkerPool] = None
        self._owner: Dict[int, int] = {}   # client_id → owning worker
        self._local: Set[int] = set()      # coordinator-resident client ids

    # ------------------------------------------------------------------
    def worker_speed(self, worker: int) -> float:
        """Simulated relative speed of a worker (1.0 = full speed)."""
        if not self.worker_speeds:
            return 1.0
        return self.worker_speeds[worker % len(self.worker_speeds)]

    # ------------------------------------------------------------------
    def _worker_count(self) -> int:
        return max(1, self.num_workers or os.cpu_count() or 1)

    def ensure_pool(self) -> PersistentWorkerPool:
        """Spawn (or respawn after ``close``) the persistent worker team."""
        if self._pool is None or self._pool.closed:
            self._pool = PersistentWorkerPool(self._worker_count())
            self._owner.clear()
            self._local.clear()
        return self._pool

    def owner_of(self, client_id: int) -> Optional[int]:
        """Worker index holding this client resident (None if in-process)."""
        return self._owner.get(client_id)

    # ------------------------------------------------------------------
    def _assign_worker(self, cid: int) -> int:
        """Deterministic owner for a new resident client.

        Uniform worker speeds keep the classic ``cid % W`` round-robin.
        Simulated heterogeneous speeds apportion by capacity instead: each
        new client goes to the worker with the lowest projected load
        ``(assigned + 1) / speed`` (ties to the lower index), so a slow
        worker holds a proportionally smaller shard and shard completion
        times line up instead of the slow worker stretching every round.
        """
        workers = self._pool.num_workers
        speeds = [self.worker_speed(worker) for worker in range(workers)]
        if len(set(speeds)) == 1:
            return cid % workers
        counts = [0] * workers
        for owner in self._owner.values():
            counts[owner] += 1
        return min(range(workers),
                   key=lambda w: ((counts[w] + 1) / speeds[w], w))

    def _bootstrap(self, clients: Sequence) -> List:
        """Ship not-yet-resident clients to their owners; return the pooled.

        Pickles each new client once; unpicklable clients become
        coordinator-resident.  Returns the subset of ``clients`` that is
        worker-resident after the call.
        """
        pool = self._pool
        batches: Dict[int, List] = {}
        pooled = []
        for client in clients:
            cid = client.client_id
            if cid in self._owner:
                pooled.append(client)
                continue
            try:
                blob = pickle.dumps(client,
                                    protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                self._local.add(cid)
                continue
            worker = self._assign_worker(cid)
            batches.setdefault(worker, []).append((cid, blob))
            self._owner[cid] = worker
            self.transport.record_download("bootstrap_payload",
                                           len(blob) / 8.0)
            pooled.append(client)
        for worker, batch in batches.items():
            pool.send(worker, "adopt", batch)
        for worker in batches:
            pool.recv(worker)
        return pooled

    def _evict(self, client) -> None:
        """Move a worker-resident client back in-process (exactly).

        The mirror's weights are newer than the worker's (they include the
        last broadcast), so only the worker-owned optimizer moments and RNG
        streams are adopted.
        """
        worker = self._owner.pop(client.client_id)
        snapshot = self._pool.call(worker, "fetch",
                                   (client.client_id, True, False))
        restore_client_state(client, snapshot, include_weights=False)
        self._local.add(client.client_id)

    # ------------------------------------------------------------------
    # Round protocol: dispatch → (local side) → collect* → finish
    #
    # ``run_local_training`` composes these into the classic barrier round;
    # the pipelined round loops (repro.federated.engine.pipeline) drive them
    # directly so aggregation, evaluation and the next round's broadcast can
    # overlap worker compute.
    # ------------------------------------------------------------------
    def dispatch_round(self, participants,
                       states: Optional[Dict[int, Dict[str, np.ndarray]]]
                       = None) -> "PendingRound":
        """Partition the participants and start their worker-side training.

        Ships the (deduplicated) per-client broadcast states — read from the
        coordinator mirrors, which hold the post-broadcast weights — to each
        owning worker and returns a :class:`PendingRound` handle; nothing is
        received yet.  Clients that cannot be pooled (non-picklable
        ``extra_loss`` hooks, or a sub-2-participant round with no pool
        alive) are left on ``pending.local_side`` for the coordinator.

        ``states`` optionally maps ``client_id`` to the exact state the
        caller just broadcast (the pipelined loop hands back what
        ``personalize`` returned), skipping one full-parameter copy per
        client and letting the dedup recognise shared dicts by identity.
        """
        pending = PendingRound(list(participants))
        if self._pool is None and len(participants) < 2:
            pending.local_side = list(participants)
            return pending

        local_side, candidates = [], []
        for client in participants:
            cid = client.client_id
            if cid in self._local:
                local_side.append(client)
            elif client.extra_loss is not None:
                if cid in self._owner:
                    # _owner is only populated while a pool is alive.
                    self._evict(client)
                else:
                    self._local.add(cid)
                local_side.append(client)
            else:
                candidates.append(client)
        pending.local_side = local_side
        if not candidates:
            # Nothing poolable (e.g. FedGL hooks every client): train
            # in-process without ever spawning workers (zero-IPC round).
            return pending
        self.ensure_pool()
        pooled = self._bootstrap(candidates)
        pooled_ids = {client.client_id for client in pooled}
        local_side.extend(c for c in candidates
                          if c.client_id not in pooled_ids)

        pool = self._pool
        groups: Dict[int, List[int]] = {}
        unique: List[Dict[str, np.ndarray]] = []
        assign: Dict[int, int] = {}
        # id(state dict) → unique index.  Only safe with caller-supplied
        # ``states``: those dicts stay alive in the caller's map for the
        # whole loop, so ids cannot be recycled (a fresh ``get_weights``
        # dict that value-matched and was dropped could donate its id to
        # the next fresh dict).
        by_identity: Optional[Dict[int, int]] = \
            {} if states is not None else None
        for client in pooled:
            cid = client.client_id
            groups.setdefault(self._owner[cid], []).append(cid)
            state = states[cid] if states is not None \
                else client.get_weights()
            # Broadcast dedup: after plain FedAvg every participant holds
            # the identical global state (one unique entry, one comparison
            # per client); clustered personalization (e.g. GCFL+) dedups to
            # one entry per cluster.  When the caller supplied the broadcast
            # states, clients sharing one personalize result hit the
            # identity map without touching array contents; array_equal
            # exits on the first differing element, so even the
            # all-distinct worst case stays cheap.
            if by_identity is not None:
                known = by_identity.get(id(state))
                if known is not None:
                    assign[cid] = known
                    pending.sent[cid] = unique[known]
                    continue
            for index, candidate in enumerate(unique):
                if _states_equal(candidate, state):
                    assign[cid] = index
                    pending.sent[cid] = candidate
                    break
            else:
                unique.append(state)
                assign[cid] = len(unique) - 1
                pending.sent[cid] = state
            if by_identity is not None:
                by_identity[id(state)] = assign[cid]
        codec = (self.delta_codec, self.delta_top_k, self.delta_bits)
        for worker, ids in groups.items():
            used = sorted({assign[cid] for cid in ids})
            local_index = {u: i for i, u in enumerate(used)}
            slowdown = max(1.0, 1.0 / self.worker_speed(worker))
            pool.send(worker, "train",
                      (ids, [unique[u] for u in used],
                       {cid: local_index[assign[cid]] for cid in ids},
                       self.intra_worker, codec, slowdown))
            self.transport.record_download(
                "broadcast_weights",
                sum(v.size for u in used for v in unique[u].values()))
        pending.groups = groups
        pending.outstanding = set(groups)
        return pending

    def run_local_side(self, pending: "PendingRound") -> None:
        """Train the coordinator-resident clients (while workers run)."""
        for client in pending.local_side:
            start = time.perf_counter()
            pending.losses[client.client_id] = client.local_train()
            pending.round_sec[client.client_id] = \
                time.perf_counter() - start

    def collect_worker(self, pending: "PendingRound", worker: int) -> List[int]:
        """Absorb one worker's shard report: reconstruct states, account IPC.

        Returns the client ids the report covered.  Trained weights are
        rebuilt from the upload delta (bit-exact under the ``bitdelta``
        codec) into ``pending.states``; the mirrors themselves are only
        written by :meth:`finish_round`, so a caller overlapping the
        previous round's evaluation with straggler collection still sees
        the mirrors at their broadcast state.
        """
        if worker not in pending.outstanding:
            raise ValueError(f"worker {worker} has no outstanding shard")
        worker_losses, deltas, stats = self._pool.recv(worker)
        ids = pending.groups[worker]
        if STACK_MARKER in deltas:
            # Whole-shard stacked bit delta (resident worker plan): one
            # vectorised reconstruction, per-client states are views.
            stack_ids, stacked = deltas[STACK_MARKER]
            rebuilt = apply_stacked_delta(
                [pending.sent[cid] for cid in stack_ids], stacked)
            for cid, state in zip(stack_ids, rebuilt):
                pending.states[cid] = state
                pending.losses[cid] = worker_losses[cid]
        else:
            for cid in ids:
                delta = deltas[cid]
                if TOPK_MARKER in delta:
                    state = apply_topk_delta(pending.sent[cid],
                                             delta[TOPK_MARKER])
                else:
                    state = apply_state_delta(pending.sent[cid], delta)
                pending.states[cid] = state
                pending.losses[cid] = worker_losses[cid]
        self.transport.record_upload("parameter_delta",
                                     stats["delta_values"])
        self.busy_sec[worker] = self.busy_sec.get(worker, 0.0) \
            + stats.get("busy_sec", 0.0)
        # Every shard member shares its shard's wall time — the resolution
        # the straggler profile actually has (shards train as one unit).
        for cid in ids:
            pending.round_sec[cid] = stats.get("busy_sec", 0.0)
        pending.outstanding.discard(worker)
        return ids

    def collect_next(self, pending: "PendingRound") -> List[int]:
        """Absorb whichever outstanding shard finishes first (as-completed)."""
        ready = self._pool.wait(sorted(pending.outstanding))
        collected: List[int] = []
        for worker in ready:
            collected.extend(self.collect_worker(pending, worker))
        return collected

    def finish_round(self, pending: "PendingRound",
                     advance_round: bool = True) -> List[float]:
        """Close out a fully-collected round; losses in participant order.

        Applies the collected worker-trained states to the coordinator
        mirrors — from here on the round looks exactly as if every client
        had trained in-process.  ``advance_round=False`` skips the per-round
        IPC tick — the async loop re-dispatches shards many times per server
        round and advances the tracker once per seal instead.
        """
        if pending.outstanding:
            raise RuntimeError(
                f"round not complete: workers {sorted(pending.outstanding)} "
                "still outstanding")
        for cid, state in pending.states.items():
            pending.mirrors[cid].set_weights(state)
        if advance_round:
            self.transport.next_round()
        return [pending.losses[client.client_id]
                for client in pending.participants]

    def run_local_training(self, participants):
        pending = self.dispatch_round(participants)
        self.run_local_side(pending)
        while pending.outstanding:
            self.collect_next(pending)
        return self.finish_round(pending)

    # ------------------------------------------------------------------
    def _sync_worker_state(self) -> None:
        """Pull optimizer/RNG state of every resident back into the mirrors.

        Called on close so the in-process clients end the run in exactly the
        state serial training would leave them in (weights are already exact
        round by round; moments and RNG streams lived worker-side).
        """
        trainer = self.trainer
        if trainer is None or self._pool is None \
                or not self._pool.safe_for_sync:
            # A failed command — or a coordinator-side abort with replies
            # still in flight — means a fetch_all now could consume a stale
            # train reply as its own result and mask the original error.
            # Skip the best-effort sync entirely.
            return
        mirrors = {c.client_id: c for c in trainer.clients}
        for worker in range(self._pool.num_workers):
            try:
                snapshots = self._pool.call(worker, "fetch_all", False)
                for cid, snapshot in snapshots.items():
                    client = mirrors.get(cid)
                    if client is not None:
                        restore_client_state(client, snapshot,
                                             include_weights=False)
            except (WorkerError, OSError, EOFError):
                continue

    def close(self):
        if self._pool is not None and not self._pool.closed:
            try:
                self._sync_worker_state()
            finally:
                self._pool.shutdown()
        self._pool = None
        self._owner.clear()
        self._local.clear()


#: name → factory for every built-in backend; factories accept (and may
#: ignore) the shared keyword knobs ``num_workers`` / ``intra_worker``.
BACKEND_REGISTRY: Dict[str, Callable[..., ExecutionBackend]] = {
    SerialBackend.name: lambda num_workers=None, **_: SerialBackend(),
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def register_backend(name: str,
                     factory: Callable[..., ExecutionBackend]) -> None:
    """Register a custom backend factory under ``name``."""
    BACKEND_REGISTRY[name.lower()] = factory


def list_backends() -> List[str]:
    """Names of every registered execution backend."""
    return sorted(BACKEND_REGISTRY)


def make_backend(spec: Union[str, ExecutionBackend, None],
                 num_workers: Optional[int] = None,
                 **options) -> ExecutionBackend:
    """Resolve a backend from a registry name or pass an instance through.

    Extra keyword ``options`` (e.g. ``intra_worker``) are forwarded to the
    factory; knobs a factory's signature does not accept are dropped, so
    externally registered factories with the historical ``num_workers``-only
    signature keep working.
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    key = str(spec).lower()
    if key not in BACKEND_REGISTRY:
        raise KeyError(
            f"unknown execution backend '{spec}'; "
            f"available: {', '.join(list_backends())}")
    factory = BACKEND_REGISTRY[key]
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins without introspection
        parameters = None
    if parameters is not None and not any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in parameters.values()):
        options = {name: value for name, value in options.items()
                   if name in parameters}
    return factory(num_workers=num_workers, **options)

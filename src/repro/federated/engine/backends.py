"""Execution backends: how local client epochs are driven each round.

The federated training loop is backend-agnostic: every round the trainer
hands the selected participants to an :class:`ExecutionBackend`, which runs
their local epochs and returns one mean training loss per participant.  All
backends leave each client's model weights, optimizer moments and dropout RNG
in exactly the state serial execution would produce, so aggregation, history
and evaluation are backend-independent (equivalence-tested in
``tests/test_engine.py``).

Built-ins:

* :class:`SerialBackend` — the reference ``for client in participants`` loop;
* :class:`ProcessPoolBackend` — ships each (picklable) client to a worker
  process, trains it there and restores the updated weights / optimizer /
  RNG state into the in-process client.  This generalises the Step-2-only
  pool of ``core/adafgl.py`` to Step-1 federated training and the FGL
  baselines;
* :class:`~repro.federated.engine.batched.BatchedBackend` — stacks
  homogeneous-architecture clients into one batched autograd graph
  (registered lazily to avoid import cycles).
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np


# ----------------------------------------------------------------------
# Client state snapshots (used to round-trip training through a worker)
# ----------------------------------------------------------------------
def _iter_submodules(module):
    yield module
    for child in module._modules.values():
        yield from _iter_submodules(child)


def _module_rngs(model) -> List[np.random.Generator]:
    """Every per-module RNG (dropout streams, ...) in deterministic order."""
    rngs = []
    for submodule in _iter_submodules(model):
        rng = getattr(submodule, "_rng", None)
        if isinstance(rng, np.random.Generator):
            rngs.append(rng)
    return rngs


def snapshot_client_state(client) -> Dict:
    """Everything local training mutates: weights, optimizer, RNG streams."""
    optimizer_state = {
        key: copy.deepcopy(value)
        for key, value in client.optimizer.__dict__.items()
        if key != "parameters"
    }
    return {
        "weights": client.get_weights(),
        "optimizer": optimizer_state,
        "rng_states": [rng.bit_generator.state
                       for rng in _module_rngs(client.model)],
    }


def restore_client_state(client, snapshot: Dict) -> None:
    """Apply a :func:`snapshot_client_state` payload to an in-process client."""
    client.set_weights(snapshot["weights"])
    client.optimizer.__dict__.update(snapshot["optimizer"])
    for rng, state in zip(_module_rngs(client.model), snapshot["rng_states"]):
        rng.bit_generator.state = state


def _train_client_in_worker(client) -> Tuple[float, Dict]:
    """Worker entry point: run one client's local epochs, ship state back."""
    loss = client.local_train()
    return loss, snapshot_client_state(client)


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class ExecutionBackend:
    """Drives the local-training phase of each federated round."""

    name = "base"

    def bind(self, trainer) -> None:
        """Attach to the owning trainer (called once, before any round)."""
        self.trainer = trainer

    def run_local_training(self, participants: Sequence) -> List[float]:
        """Train every participant locally; return per-participant losses."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker pools, cached plans)."""


class SerialBackend(ExecutionBackend):
    """Reference implementation: clients train one after another."""

    name = "serial"

    def run_local_training(self, participants):
        return [client.local_train() for client in participants]


class ProcessPoolBackend(ExecutionBackend):
    """Per-client local training in a pool of worker processes.

    Clients are embarrassingly parallel within a round — their RNG streams
    and optimizer moments are private — so each picklable client is trained
    in a worker and its mutated state (weights, optimizer moments, dropout
    RNGs) is restored into the in-process object, reconstructing the serial
    result exactly.  Clients carrying a non-picklable ``extra_loss`` closure
    (e.g. FedGL's pseudo-label term) fall back to in-process training.
    """

    name = "process_pool"

    def __init__(self, num_workers: Optional[int] = None):
        self.num_workers = num_workers
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            workers = self.num_workers or os.cpu_count() or 1
            self._pool = ProcessPoolExecutor(max_workers=max(1, workers))
        return self._pool

    def run_local_training(self, participants):
        poolable = [c for c in participants if c.extra_loss is None]
        losses: Dict[int, float] = {}
        if len(poolable) > 1:
            results = self._ensure_pool().map(_train_client_in_worker,
                                              poolable)
            for client, (loss, snapshot) in zip(poolable, results):
                restore_client_state(client, snapshot)
                losses[client.client_id] = loss
        for client in participants:
            if client.client_id not in losses:
                losses[client.client_id] = client.local_train()
        return [losses[client.client_id] for client in participants]

    def close(self):
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


#: name → factory accepting ``num_workers`` for every built-in backend.
BACKEND_REGISTRY: Dict[str, Callable[..., ExecutionBackend]] = {
    SerialBackend.name: lambda num_workers=None: SerialBackend(),
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def register_backend(name: str,
                     factory: Callable[..., ExecutionBackend]) -> None:
    """Register a custom backend factory under ``name``."""
    BACKEND_REGISTRY[name.lower()] = factory


def list_backends() -> List[str]:
    """Names of every registered execution backend."""
    return sorted(BACKEND_REGISTRY)


def make_backend(spec: Union[str, ExecutionBackend, None],
                 num_workers: Optional[int] = None) -> ExecutionBackend:
    """Resolve a backend from a registry name or pass an instance through."""
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    key = str(spec).lower()
    if key not in BACKEND_REGISTRY:
        raise KeyError(
            f"unknown execution backend '{spec}'; "
            f"available: {', '.join(list_backends())}")
    return BACKEND_REGISTRY[key](num_workers=num_workers)

"""Execution backends: how local client epochs are driven each round.

The federated training loop is backend-agnostic: every round the trainer
hands the selected participants to an :class:`ExecutionBackend`, which runs
their local epochs and returns one mean training loss per participant.  All
backends leave each participant's observable training trajectory (losses,
weights, evaluation) exactly where serial execution would, so aggregation,
history and evaluation are backend-independent (equivalence-tested in
``tests/test_engine.py``).

Built-ins:

* :class:`SerialBackend` — the reference ``for client in participants`` loop;
* :class:`ProcessPoolBackend` — **persistent workers with resident clients**:
  each worker receives its sharded clients once (bootstrap), keeps their
  optimizer moments and RNG streams resident for the whole run, and per round
  exchanges only broadcast weights down / lossless parameter deltas up (see
  :mod:`~repro.federated.engine.persistent`).  Workers may fuse their
  resident shard through the batched engine (``intra_worker="auto"``);
* :class:`~repro.federated.engine.batched.BatchedBackend` — stacks
  homogeneous-architecture clients into one batched autograd graph
  (registered lazily to avoid import cycles).
"""

from __future__ import annotations

import copy
import inspect
import os
import pickle
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

import numpy as np

from repro.federated.communication import CommunicationTracker
from repro.federated.engine.faults import (
    DOWNLINK_KINDS,
    NETWORK_KINDS,
    TRANSPORT_KINDS,
    WORKER_KINDS,
    FaultPlan,
    payload_checksum,
)
from repro.federated.engine.persistent import (
    FOLD_MARKER,
    STACK_MARKER,
    TOPK_MARKER,
    BroadcastCorrupted,
    PersistentWorkerPool,
    WorkerCrash,
    WorkerError,
    apply_stacked_delta,
    apply_state_delta,
    apply_topk_delta,
    encode_state_delta,
)
from repro.federated.engine.transport import TRANSPORTS, make_transport


# ----------------------------------------------------------------------
# Client state snapshots (used to move training state across processes)
# ----------------------------------------------------------------------
def _iter_submodules(module):
    yield module
    for child in module._modules.values():
        yield from _iter_submodules(child)


def _module_rngs(model) -> List[np.random.Generator]:
    """Every per-module RNG (dropout streams, ...) in deterministic order."""
    rngs = []
    for submodule in _iter_submodules(model):
        rng = getattr(submodule, "_rng", None)
        if isinstance(rng, np.random.Generator):
            rngs.append(rng)
    return rngs


def snapshot_client_state(client, include_weights: bool = True) -> Dict:
    """Everything local training mutates: weights, optimizer, RNG streams.

    ``include_weights=False`` snapshots only the optimizer moments and RNG
    streams — the payload the persistent pool's eviction / close-time sync
    actually consumes (the coordinator mirror already holds newer weights),
    keeping the dominant share of the state off the pipe.
    """
    optimizer_state = {
        key: copy.deepcopy(value)
        for key, value in client.optimizer.__dict__.items()
        if key != "parameters"
    }
    snapshot = {
        "optimizer": optimizer_state,
        "rng_states": [rng.bit_generator.state
                       for rng in _module_rngs(client.model)],
    }
    if include_weights:
        snapshot["weights"] = client.get_weights()
    return snapshot


def restore_client_state(client, snapshot: Dict,
                         include_weights: bool = True) -> None:
    """Apply a :func:`snapshot_client_state` payload to an in-process client.

    ``include_weights=False`` restores only the *worker-owned* mutable state
    (optimizer moments and RNG streams) — used when the coordinator's mirror
    already holds newer weights than the snapshot (e.g. a post-round
    broadcast landed after the snapshot was taken).
    """
    if include_weights:
        client.set_weights(snapshot["weights"])
    client.optimizer.__dict__.update(snapshot["optimizer"])
    for rng, state in zip(_module_rngs(client.model), snapshot["rng_states"]):
        rng.bit_generator.state = state
    # A restore is an out-of-band mutation as far as the prediction cache is
    # concerned: callers may have written parameters around ``set_weights``
    # (pool rehydration, checkpoint/snapshot loads), and even the
    # ``include_weights=False`` path can follow direct model pokes.  Always
    # drop the cache instead of trusting the version key.
    client.invalidate_cache()


def _states_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> bool:
    """Bitwise equality of two weight state dicts."""
    if a.keys() != b.keys():
        return False
    return all(np.array_equal(a[key], b[key]) for key in a)


def _corrupt_payload(payload) -> bool:
    """Flip the first array element found in a delta payload (fault inject).

    Simulates in-transit corruption: mutates one element of the first
    ndarray reachable in the nested payload so the checksum the worker
    stamped no longer matches.  Returns True when something was mutated.
    """
    if isinstance(payload, np.ndarray):
        if payload.size == 0 or not payload.flags.writeable:
            return False
        flat = payload.reshape(-1)
        if payload.dtype.kind in "iu":
            flat[:1] = flat[:1] ^ 1 if payload.dtype.kind == "u" \
                else flat[:1] + 1
        elif payload.dtype.kind == "f":
            flat[:1] = flat[:1] + 1.0
        else:
            return False
        return True
    if isinstance(payload, dict):
        return any(_corrupt_payload(value) for value in payload.values())
    if isinstance(payload, (tuple, list)):
        return any(_corrupt_payload(item) for item in payload)
    return False


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class ExecutionBackend:
    """Drives the local-training phase of each federated round."""

    name = "base"

    #: True when the backend exposes the dispatch/collect round protocol the
    #: pipelined round loops require (see ProcessPoolBackend).
    supports_pipelining = False

    trainer = None

    def bind(self, trainer) -> None:
        """Attach to the owning trainer (called once, before any round)."""
        self.trainer = trainer

    def run_local_training(self, participants: Sequence) -> List[float]:
        """Train every participant locally; return per-participant losses."""
        raise NotImplementedError

    def sync_for_checkpoint(self) -> None:
        """Bring coordinator-side client state up to date for a checkpoint.

        In-process backends are always current; the persistent pool pulls
        worker-resident optimizer/RNG state back into the mirrors.
        """

    def close(self) -> None:
        """Release backend resources (worker pools, cached plans)."""


class SerialBackend(ExecutionBackend):
    """Reference implementation: clients train one after another."""

    name = "serial"

    def run_local_training(self, participants):
        return [client.local_train() for client in participants]


class PendingRound:
    """Handle for one dispatched-but-not-finished persistent-pool round.

    Created by :meth:`ProcessPoolBackend.dispatch_round`; the round loop then
    pumps :meth:`~ProcessPoolBackend.collect_next` /
    :meth:`~ProcessPoolBackend.collect_worker` until ``outstanding`` is empty
    and settles with :meth:`~ProcessPoolBackend.finish_round`.
    """

    def __init__(self, participants: List):
        #: the round's participants, in selection (client-id) order
        self.participants = participants
        #: client_id → coordinator mirror client
        self.mirrors = {c.client_id: c for c in participants}
        #: worker → FIFO of shards (id lists) whose reply is expected from
        #: it; normally one entry per worker, but crash recovery under the
        #: ``redistribute`` policy may queue a second shard on a survivor
        self.groups: Dict[int, List[List[int]]] = {}
        #: client ids dropped from this round (timed-out shards, lost
        #: crash shards under a non-``fail`` policy)
        self.dropped: Set[int] = set()
        #: client_id → broadcast state the worker trained from (delta base)
        self.sent: Dict[int, Dict[str, np.ndarray]] = {}
        #: coordinator-resident clients (non-poolable)
        self.local_side: List = []
        #: workers whose shard report has not been absorbed yet
        self.outstanding: Set[int] = set()
        #: client_id → mean local-training loss
        self.losses: Dict[int, float] = {}
        #: client_id → trained state reconstructed from the upload delta;
        #: applied to the mirrors by ``finish_round`` (deferring the apply
        #: lets the pipelined loop evaluate the *previous* round — mirrors
        #: still at broadcast state — while stragglers finish)
        self.states: Dict[int, Dict[str, np.ndarray]] = {}
        #: client_id → wall seconds its shard (or its own in-process train
        #: call) spent on local epochs this round — the sync pipeline's
        #: per-client straggler profile (``TrainingHistory.client_round_sec``)
        self.round_sec: Dict[int, float] = {}
        #: client_id → normalized aggregation weight shipped with the shard
        #: (hierarchical rounds only); kept on the pending handle so crash
        #: re-dispatch sends the exact same coefficients
        self.fold_weights: Optional[Dict[int, float]] = None
        #: hierarchical rounds: ``(client_ids, fixed-point partial)`` edge
        #: aggregates, one per worker shard, awaiting a coordinator merge
        self.partials: List = []

    def take_partials(self) -> List:
        """Drain the edge-aggregated partial sums collected so far."""
        drained, self.partials = self.partials, []
        return drained


class ProcessPoolBackend(ExecutionBackend):
    """Persistent-worker local training: resident clients, delta-only IPC.

    Clients are sharded deterministically over the workers
    (``client_id % num_workers``) and each picklable client is shipped to its
    owning worker exactly once.  The worker keeps the authoritative optimizer
    moments and RNG streams for the whole run; every round the coordinator
    sends the participant's current weights down and receives ``(loss,
    lossless bit-pattern parameter delta, message stats)`` back, so the
    in-process mirror reconstructs the worker's weights bit for bit.

    ``intra_worker`` selects how a worker trains its resident shard:
    ``"serial"`` uses the per-client reference loop, making the training
    history **bitwise-identical** to serial execution;
    ``"auto"``/``"batched"`` (the default) fuse the shard into one autograd
    graph via the batched engine when possible (falling back to the
    per-client loop), inheriting that engine's equivalence guarantee —
    histories match serial within the batched tolerance (identical in
    practice at benchmark scale, see ``BENCH_step1.json``; low-order float
    bits may differ on fused shards).

    Clients carrying a non-picklable ``extra_loss`` closure (e.g. FedGL's
    pseudo-label term) stay coordinator-resident and train in-process; a
    client whose hook appears *mid-run* is evicted from its worker first
    (optimizer + RNG state pulled back), so the serial history is still
    reconstructed exactly.

    Simulator IPC volume is tracked separately from the logical federated
    traffic in :attr:`transport` (kinds: ``bootstrap_payload``,
    ``broadcast_weights``, ``parameter_delta``; float-value units, bootstrap
    counted as pickled bytes / 8).
    """

    name = "process_pool"

    #: the pipelined round loops can drive this backend round by round
    supports_pipelining = True

    def __init__(self, num_workers: Optional[int] = None,
                 intra_worker: str = "auto", delta_codec: str = "bitdelta",
                 delta_top_k: int = 32, delta_bits: int = 8,
                 worker_speeds: Optional[Sequence[float]] = None,
                 on_worker_failure: str = "fail",
                 round_timeout: Optional[float] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 hierarchical: bool = False,
                 transport: str = "pipe",
                 transport_options: Optional[Dict] = None, **_unused):
        if intra_worker not in ("auto", "batched", "serial"):
            raise ValueError(
                "intra_worker must be 'auto', 'batched' or 'serial', "
                f"got {intra_worker!r}")
        if delta_codec not in ("bitdelta", "topk", "qtopk"):
            raise ValueError(
                "delta_codec must be 'bitdelta', 'topk' or 'qtopk', "
                f"got {delta_codec!r}")
        if delta_codec in ("topk", "qtopk") and delta_top_k < 1:
            raise ValueError("delta_top_k must be >= 1")
        if delta_codec == "qtopk" and not 2 <= int(delta_bits) <= 32:
            raise ValueError("delta_bits must be in [2, 32]")
        if worker_speeds is not None:
            worker_speeds = [float(s) for s in worker_speeds]
            if not worker_speeds or any(s <= 0 for s in worker_speeds):
                raise ValueError("worker_speeds must be positive floats")
        if on_worker_failure not in ("fail", "restart", "redistribute"):
            raise ValueError(
                "on_worker_failure must be 'fail', 'restart' or "
                f"'redistribute', got {on_worker_failure!r}")
        if round_timeout is not None and round_timeout <= 0:
            raise ValueError("round_timeout must be positive (or None)")
        if hierarchical and delta_codec != "bitdelta":
            raise ValueError(
                "hierarchical=True requires delta_codec='bitdelta': lossy "
                "codecs cannot carry the exact fixed-point edge aggregates "
                f"(got {delta_codec!r})")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {', '.join(TRANSPORTS)}, "
                f"got {transport!r}")
        if fault_plan is not None and transport != "tcp":
            network = sorted(set(fault_plan.scheduled_kinds())
                             & set(NETWORK_KINDS))
            if network:
                raise ValueError(
                    f"fault plan schedules network events {network} but "
                    f"transport={transport!r} has no wire to disturb; "
                    "network fault kinds require transport='tcp'")
        self.num_workers = num_workers
        #: edge-aggregation mode: workers fold their shard's trained states
        #: locally and ship one (weighted-sum, weight) partial per shard
        self.hierarchical = bool(hierarchical)
        self.intra_worker = intra_worker
        self.delta_codec = delta_codec
        self.delta_top_k = delta_top_k
        self.delta_bits = int(delta_bits)
        self.worker_speeds = worker_speeds
        self.on_worker_failure = on_worker_failure
        self.round_timeout = round_timeout
        self.fault_plan = fault_plan
        #: transport selection for the worker channels ("pipe" or "tcp");
        #: options are forwarded to the transport factory (TCP knobs, WAN
        #: model spec) — see :func:`~repro.federated.engine.transport
        #: .make_transport`
        self.transport_name = transport
        self.transport_options = dict(transport_options or {})
        #: counters of every supervised failure/recovery event this backend
        #: has seen (crashes, restarts, redistributed clients, timed-out
        #: shards, corrupted-payload retries, dropped client reports)
        self.fault_stats: Dict[str, int] = {
            "crashes": 0, "restarts": 0, "redistributed_clients": 0,
            "timeouts": 0, "retries": 0, "dropped_reports": 0,
            "broadcast_retries": 0, "network_faults": 0}
        self.transport = CommunicationTracker()
        #: cumulative worker-reported busy seconds (training + simulated
        #: slowdown), indexed by worker — the utilization metric's numerator
        self.busy_sec: Dict[int, float] = {}
        #: summary dict written by the last pipelined/async round loop
        self.last_pipeline_stats: Optional[Dict] = None
        self._pool: Optional[PersistentWorkerPool] = None
        self._owner: Dict[int, int] = {}   # client_id → owning worker
        self._local: Set[int] = set()      # coordinator-resident client ids
        #: client_id → weight-free recovery snapshot (optimizer moments +
        #: RNG streams) of the worker-side state at the client's last
        #: completed round; used to re-bootstrap residents after a crash
        self._recovery: Dict[int, Dict] = {}
        #: worker → train dispatches sent so far (fault-plan addressing)
        self._dispatch_count: Dict[int, int] = {}
        #: worker → FIFO of transport-fault event lists, one entry per
        #: expected train reply (aligned with ``PendingRound.groups``)
        self._transit: Dict[int, List[List]] = {}
        #: worker → FIFO of ``[checksum, clean train args, retried]``
        #: entries, aligned with ``pending.groups`` — the downlink-recovery
        #: cache a checksum-rejecting worker is re-served from
        self._sent_payloads: Dict[int, List[List]] = {}
        #: worker → count of stale (timed-out) replies still unread; a
        #: lagging worker is excluded from dispatch until drained
        self._lagging: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def worker_speed(self, worker: int) -> float:
        """Simulated relative speed of a worker (1.0 = full speed)."""
        if not self.worker_speeds:
            return 1.0
        return self.worker_speeds[worker % len(self.worker_speeds)]

    # ------------------------------------------------------------------
    def _worker_count(self) -> int:
        return max(1, self.num_workers or os.cpu_count() or 1)

    def ensure_pool(self) -> PersistentWorkerPool:
        """Spawn (or respawn after ``close``) the persistent worker team."""
        if self._pool is None or self._pool.closed:
            self._pool = PersistentWorkerPool(
                self._worker_count(),
                transport=make_transport(self.transport_name,
                                         self.transport_options))
            self._owner.clear()
            self._local.clear()
            self._recovery.clear()
            self._dispatch_count.clear()
            self._transit.clear()
            self._sent_payloads.clear()
            self._lagging.clear()
        return self._pool

    def owner_of(self, client_id: int) -> Optional[int]:
        """Worker index holding this client resident (None if in-process)."""
        return self._owner.get(client_id)

    # ------------------------------------------------------------------
    def _assign_worker(self, cid: int) -> int:
        """Deterministic owner for a new resident client.

        Uniform worker speeds keep the classic ``cid % W`` round-robin.
        Simulated heterogeneous speeds apportion by capacity instead: each
        new client goes to the worker with the lowest projected load
        ``(assigned + 1) / speed`` (ties to the lower index), so a slow
        worker holds a proportionally smaller shard and shard completion
        times line up instead of the slow worker stretching every round.
        """
        workers = self._pool.alive_workers
        speeds = {worker: self.worker_speed(worker) for worker in workers}
        if len(set(speeds.values())) == 1:
            return workers[cid % len(workers)]
        counts = {worker: 0 for worker in workers}
        for owner in self._owner.values():
            if owner in counts:
                counts[owner] += 1
        return min(workers,
                   key=lambda w: ((counts[w] + 1) / speeds[w], w))

    def _bootstrap(self, clients: Sequence) -> List:
        """Ship not-yet-resident clients to their owners; return the pooled.

        Pickles each new client once; unpicklable clients become
        coordinator-resident.  Returns the subset of ``clients`` that is
        worker-resident after the call.
        """
        pool = self._pool
        batches: Dict[int, List] = {}
        pooled = []
        for client in clients:
            cid = client.client_id
            if cid in self._owner:
                pooled.append(client)
                continue
            try:
                blob = pickle.dumps(client,
                                    protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                self._local.add(cid)
                continue
            worker = self._assign_worker(cid)
            batches.setdefault(worker, []).append((cid, blob))
            self._owner[cid] = worker
            if self.on_worker_failure != "fail":
                # Baseline recovery snapshot: the worker-owned state (moments
                # + RNG streams) the client ships out with, so a crash before
                # its first train reply can still re-bootstrap it exactly.
                self._recovery[cid] = snapshot_client_state(
                    client, include_weights=False)
            self.transport.record_download("bootstrap_payload",
                                           len(blob) / 8.0)
            pooled.append(client)
        for worker, batch in batches.items():
            pool.send(worker, "adopt", batch)
        for worker in batches:
            pool.recv(worker)
        return pooled

    def _evict(self, client) -> None:
        """Move a worker-resident client back in-process (exactly).

        The mirror's weights are newer than the worker's (they include the
        last broadcast), so only the worker-owned optimizer moments and RNG
        streams are adopted.
        """
        worker = self._owner.pop(client.client_id)
        snapshot = self._pool.call(worker, "fetch",
                                   (client.client_id, True, False))
        restore_client_state(client, snapshot, include_weights=False)
        self._local.add(client.client_id)

    # ------------------------------------------------------------------
    # Round protocol: dispatch → (local side) → collect* → finish
    #
    # ``run_local_training`` composes these into the classic barrier round;
    # the pipelined round loops (repro.federated.engine.pipeline) drive them
    # directly so aggregation, evaluation and the next round's broadcast can
    # overlap worker compute.
    # ------------------------------------------------------------------
    def dispatch_round(self, participants,
                       states: Optional[Dict[int, Dict[str, np.ndarray]]]
                       = None,
                       fold_weights: Optional[Dict[int, float]] = None
                       ) -> "PendingRound":
        """Partition the participants and start their worker-side training.

        Ships the (deduplicated) per-client broadcast states — read from the
        coordinator mirrors, which hold the post-broadcast weights — to each
        owning worker and returns a :class:`PendingRound` handle; nothing is
        received yet.  Clients that cannot be pooled (non-picklable
        ``extra_loss`` hooks, or a sub-2-participant round with no pool
        alive) are left on ``pending.local_side`` for the coordinator.

        ``states`` optionally maps ``client_id`` to the exact state the
        caller just broadcast (the pipelined loop hands back what
        ``personalize`` returned), skipping one full-parameter copy per
        client and letting the dedup recognise shared dicts by identity.

        ``fold_weights`` (hierarchical rounds) maps ``client_id`` to its
        normalized aggregation coefficient; each worker folds its shard's
        trained states with those exact coefficients and replies with one
        fixed-point partial sum instead of per-client deltas.
        """
        pending = PendingRound(list(participants))
        pending.fold_weights = dict(fold_weights) \
            if fold_weights is not None else None
        if self._pool is None and len(participants) < 2:
            pending.local_side = list(participants)
            return pending

        local_side, candidates = [], []
        for client in participants:
            cid = client.client_id
            if cid in self._local:
                local_side.append(client)
            elif client.extra_loss is not None:
                if cid in self._owner:
                    # _owner is only populated while a pool is alive.
                    self._evict(client)
                else:
                    self._local.add(cid)
                local_side.append(client)
            else:
                candidates.append(client)
        pending.local_side = local_side
        if not candidates:
            # Nothing poolable (e.g. FedGL hooks every client): train
            # in-process without ever spawning workers (zero-IPC round).
            return pending
        self.ensure_pool()
        # Rejoin lagging workers whose stale (timed-out) replies have landed
        # since the last round; clients owned by a still-lagging worker
        # cannot train this round and are dropped from it.
        if self._lagging:
            self.poll_lagging()
        pooled = self._bootstrap(candidates)
        pooled_ids = {client.client_id for client in pooled}
        local_side.extend(c for c in candidates
                          if c.client_id not in pooled_ids)

        groups: Dict[int, List[int]] = {}
        unique: List[Dict[str, np.ndarray]] = []
        assign: Dict[int, int] = {}
        # id(state dict) → unique index.  Only safe with caller-supplied
        # ``states``: those dicts stay alive in the caller's map for the
        # whole loop, so ids cannot be recycled (a fresh ``get_weights``
        # dict that value-matched and was dropped could donate its id to
        # the next fresh dict).
        by_identity: Optional[Dict[int, int]] = \
            {} if states is not None else None
        for client in pooled:
            cid = client.client_id
            owner = self._owner[cid]
            if self._lagging.get(owner):
                # The owner still owes a stale reply from a timed-out round;
                # dispatching to it would interleave fresh and stale shards.
                pending.dropped.add(cid)
                self.fault_stats["dropped_reports"] += 1
                continue
            groups.setdefault(owner, []).append(cid)
            state = states[cid] if states is not None \
                else client.get_weights()
            # Broadcast dedup: after plain FedAvg every participant holds
            # the identical global state (one unique entry, one comparison
            # per client); clustered personalization (e.g. GCFL+) dedups to
            # one entry per cluster.  When the caller supplied the broadcast
            # states, clients sharing one personalize result hit the
            # identity map without touching array contents; array_equal
            # exits on the first differing element, so even the
            # all-distinct worst case stays cheap.
            if by_identity is not None:
                known = by_identity.get(id(state))
                if known is not None:
                    assign[cid] = known
                    pending.sent[cid] = unique[known]
                    continue
            for index, candidate in enumerate(unique):
                if _states_equal(candidate, state):
                    assign[cid] = index
                    pending.sent[cid] = candidate
                    break
            else:
                unique.append(state)
                assign[cid] = len(unique) - 1
                pending.sent[cid] = state
            if by_identity is not None:
                by_identity[id(state)] = assign[cid]
        for worker, ids in sorted(groups.items()):
            try:
                self._send_shard(pending, worker, ids)
            except WorkerCrash as error:
                # The worker died between rounds; recover per policy (the
                # shard itself was never queued, so hand it over explicitly).
                self._handle_crash(pending, worker, error, extra_shard=ids)
        return pending

    def _send_shard(self, pending: "PendingRound", worker: int,
                    ids: Sequence[int]) -> None:
        """Ship one shard's ``train`` command (dedup by state identity).

        Appends the shard to the worker's expected-reply FIFO
        (``pending.groups``) and records any fault-plan events addressed to
        this dispatch: worker-side kinds (crash/stall) ride along in the
        payload, transport kinds (corrupt/drop) are queued coordinator-side
        and applied when the reply arrives.  Also the re-dispatch primitive
        of crash recovery, which is why a worker's FIFO can hold more than
        one shard.
        """
        unique: List[Dict[str, np.ndarray]] = []
        assign: Dict[int, int] = {}
        for cid in ids:
            state = pending.sent[cid]
            for index, candidate in enumerate(unique):
                if candidate is state:
                    assign[cid] = index
                    break
            else:
                unique.append(state)
                assign[cid] = len(unique) - 1
        dispatch_no = self._dispatch_count.get(worker, 0) + 1
        self._dispatch_count[worker] = dispatch_no
        fault = None
        transit: List = []
        corrupt_down = False
        if self.fault_plan is not None:
            worker_events = self.fault_plan.take(worker, dispatch_no,
                                                 WORKER_KINDS)
            if worker_events:
                event = worker_events[0]
                fault = {"kind": event.kind, "duration": event.duration}
            transit = self.fault_plan.take(worker, dispatch_no,
                                           TRANSPORT_KINDS)
            corrupt_down = bool(self.fault_plan.take(worker, dispatch_no,
                                                     DOWNLINK_KINDS))
            for event in self.fault_plan.take(worker, dispatch_no,
                                              NETWORK_KINDS):
                self._pool.inject_network_fault(worker, event.kind,
                                                event.duration)
                self.fault_stats["network_faults"] += 1
        codec = (self.delta_codec, self.delta_top_k, self.delta_bits)
        slowdown = max(1.0, 1.0 / self.worker_speed(worker))
        fold = None
        if pending.fold_weights is not None:
            fold = {cid: pending.fold_weights[cid] for cid in ids}
        args = (list(ids), unique, assign, self.intra_worker,
                codec, slowdown, fault,
                self.on_worker_failure != "fail", fold)
        crc = payload_checksum(args)
        shipped = args
        if corrupt_down:
            # Damage a *copy*: the unique states are the live coordinator
            # mirrors, and the retry must re-serve the clean broadcast.
            shipped = copy.deepcopy(args)
            _corrupt_payload(shipped)
        self._pool.send(worker, "train", (crc, shipped))
        self._transit.setdefault(worker, []).append(transit)
        self._sent_payloads.setdefault(worker, []).append(
            [crc, args, False])
        pending.groups.setdefault(worker, []).append(list(ids))
        pending.outstanding.add(worker)
        self.transport.record_download(
            "broadcast_weights",
            sum(v.size for state in unique for v in state.values()))

    def run_local_side(self, pending: "PendingRound") -> None:
        """Train the coordinator-resident clients (while workers run)."""
        for client in pending.local_side:
            start = time.perf_counter()
            pending.losses[client.client_id] = client.local_train()
            pending.round_sec[client.client_id] = \
                time.perf_counter() - start

    def collect_worker(self, pending: "PendingRound", worker: int,
                       redispatch: bool = True) -> List[int]:
        """Absorb one worker's shard report: reconstruct states, account IPC.

        Returns the client ids the report covered.  Trained weights are
        rebuilt from the upload delta (bit-exact under the ``bitdelta``
        codec) into ``pending.states``; the mirrors themselves are only
        written by :meth:`finish_round`, so a caller overlapping the
        previous round's evaluation with straggler collection still sees
        the mirrors at their broadcast state.

        Failure handling: a corrupted/dropped payload (checksum mismatch)
        is retried once via the worker's cached reply; a dead worker runs
        the ``on_worker_failure`` policy and — under ``redispatch=True``,
        the sync discipline — its lost shards are re-sent to recovered
        owners (the call then returns ``[]`` and the caller keeps pumping
        ``pending.outstanding``).  ``redispatch=False`` (the async
        discipline) marks the lost shard dropped instead.
        """
        if worker not in pending.outstanding:
            raise ValueError(f"worker {worker} has no outstanding shard")
        try:
            # Recovery adoptions are queued asynchronously on survivors;
            # their acks precede the shard reply in the pipe.
            while self._pool.next_reply_command(worker) == "adopt":
                self._pool.recv(worker)
            reply = self._pool.recv(worker)
            reply = self._verify_reply(pending, worker, reply)
        except BroadcastCorrupted:
            # The worker refused a damaged broadcast without training —
            # re-serve the cached clean payload once (the shard stays
            # outstanding and its reply FIFOs stay aligned).
            self._resend_broadcast(worker)
            return []
        except WorkerCrash as error:
            self._handle_crash(pending, worker, error, redispatch=redispatch)
            return []
        if reply is None:
            # The worker died while its cached reply was being re-requested;
            # _verify_reply already ran the recovery policy.
            return []
        worker_losses, deltas, stats = reply
        sent_fifo = self._sent_payloads.get(worker)
        if sent_fifo:
            sent_fifo.pop(0)
        ids = pending.groups[worker].pop(0)
        if not pending.groups[worker]:
            del pending.groups[worker]
            pending.outstanding.discard(worker)
        if "snapshots" in stats:
            # Freshest worker-side optimizer/RNG state per shard client —
            # the baseline a future crash recovery restores from.
            self._recovery.update(stats["snapshots"])
        if FOLD_MARKER in deltas:
            # Hierarchical round: the worker already folded its shard with
            # the coordinator-supplied coefficients; absorb one fixed-point
            # partial (no per-client states to reconstruct).
            fold_ids, partial = deltas[FOLD_MARKER]
            pending.partials.append((list(fold_ids), partial))
            for cid in fold_ids:
                pending.losses[cid] = worker_losses[cid]
        elif STACK_MARKER in deltas:
            # Whole-shard stacked bit delta (resident worker plan): one
            # vectorised reconstruction, per-client states are views.
            stack_ids, stacked = deltas[STACK_MARKER]
            rebuilt = apply_stacked_delta(
                [pending.sent[cid] for cid in stack_ids], stacked)
            for cid, state in zip(stack_ids, rebuilt):
                pending.states[cid] = state
                pending.losses[cid] = worker_losses[cid]
        else:
            for cid in ids:
                delta = deltas[cid]
                if TOPK_MARKER in delta:
                    state = apply_topk_delta(pending.sent[cid],
                                             delta[TOPK_MARKER])
                else:
                    state = apply_state_delta(pending.sent[cid], delta)
                pending.states[cid] = state
                pending.losses[cid] = worker_losses[cid]
        self.transport.record_upload("parameter_delta",
                                     stats["delta_values"])
        self.busy_sec[worker] = self.busy_sec.get(worker, 0.0) \
            + stats.get("busy_sec", 0.0)
        # Every shard member shares its shard's wall time — the resolution
        # the straggler profile actually has (shards train as one unit).
        for cid in ids:
            pending.round_sec[cid] = stats.get("busy_sec", 0.0)
        return ids

    def _verify_reply(self, pending: "PendingRound", worker: int, reply):
        """Checksum-verify a shard reply; retry once from the worker cache.

        Applies this reply's scheduled transport faults first (payload
        corruption / payload drop), then compares the coordinator-side
        checksum of the delta payload against the one the worker stamped.
        On mismatch the worker's cached last reply is requested once
        (``resend``); a second mismatch is a hard :class:`WorkerError`.
        Returns the verified reply, or ``None`` when the worker died during
        the resend (recovery already ran).  Raises :class:`WorkerCrash`
        through to the caller only when it happens on the *first* receive
        (i.e. the caller's own ``recv``), never from here.
        """
        transit = []
        fifo = self._transit.get(worker)
        if fifo:
            transit = fifo.pop(0)
        kinds = {event.kind for event in transit}
        damaged = False
        if "drop" in kinds:
            damaged = True           # payload lost in transit entirely
        elif "corrupt" in kinds:
            _corrupt_payload(reply[1])
        if damaged or payload_checksum(reply[1]) != \
                reply[2].get("checksum", payload_checksum(reply[1])):
            self.fault_stats["retries"] += 1
            try:
                self._pool.send(worker, "resend")
                reply = self._pool.recv_reply_to(worker, "resend")
            except WorkerCrash as error:
                self._handle_crash(pending, worker, error)
                return None
            if payload_checksum(reply[1]) != reply[2].get("checksum"):
                raise WorkerError(
                    f"worker {worker} delta payload failed checksum "
                    "verification twice (corruption persisted across the "
                    "retry)", worker=worker, command="resend")
        return reply

    def _resend_broadcast(self, worker: int) -> None:
        """Re-serve the oldest cached clean train broadcast (once).

        The mirror image of the uplink resend path: the worker rejected a
        checksum-failed downlink payload without executing it, so the same
        dispatch is re-sent from the coordinator's clean cache — without
        re-counting the dispatch or re-queueing transit faults (the shard's
        FIFO entries are still in place).  A second rejection of the same
        shard is a hard :class:`WorkerError` (the corruption persisted
        across the retry).
        """
        fifo = self._sent_payloads.get(worker)
        if not fifo:
            raise WorkerError(
                f"worker {worker} rejected a broadcast but no cached "
                "payload is available to resend", worker=worker,
                command="train")
        entry = fifo[0]
        if entry[2]:
            raise WorkerError(
                f"worker {worker} rejected the train broadcast twice "
                "(downlink corruption persisted across the retry)",
                worker=worker, command="train")
        entry[2] = True
        self.fault_stats["broadcast_retries"] += 1
        self._pool.send(worker, "train", (entry[0], entry[1]))

    def collect_next(self, pending: "PendingRound",
                     timeout: Optional[float] = None) -> List[int]:
        """Absorb whichever outstanding shard finishes first (as-completed).

        ``timeout`` (seconds) bounds the wait; on expiry an empty list is
        returned with ``pending.outstanding`` untouched — the round loop
        decides whether to keep waiting or invoke
        :meth:`timeout_outstanding`.  May also return an empty list when a
        crash was recovered (the re-dispatched shard is still outstanding).
        """
        ready = self._pool.wait(sorted(pending.outstanding), timeout=timeout)
        collected: List[int] = []
        for worker in ready:
            if worker in pending.outstanding:   # recovery may mutate the set
                collected.extend(self.collect_worker(pending, worker))
        return collected

    # ------------------------------------------------------------------
    # Crash recovery and round-timeout degradation
    # ------------------------------------------------------------------
    def _handle_crash(self, pending: Optional["PendingRound"], worker: int,
                      error: WorkerCrash, extra_shard: Optional[List[int]]
                      = None, redispatch: bool = True) -> None:
        """Run the ``on_worker_failure`` policy for a dead worker.

        ``"fail"`` re-raises.  ``"restart"`` respawns the worker process in
        its slot; ``"redistribute"`` retires the slot and spreads its
        residents over the survivors.  Either way every lost resident's
        worker-side state (optimizer moments + RNG streams) is rebuilt from
        its coordinator recovery snapshot — taken at its last completed
        round — so the re-adopted client trains exactly as the crashed
        worker would have.  Lost in-flight shards are re-dispatched to the
        recovered owners (sync discipline) or marked dropped
        (``redispatch=False``, the async discipline, where the round loop
        re-enqueues work itself).

        Adoption is *asynchronous*: survivors may still owe train replies,
        so the adopt acks are left in their pipes and drained by
        :meth:`collect_worker` / :meth:`poll_lagging` before the next reply.
        """
        self.fault_stats["crashes"] += 1
        if self.on_worker_failure == "fail":
            raise error
        pool = self._pool
        lost_shards: List[List[int]] = []
        if pending is not None:
            lost_shards.extend(pending.groups.pop(worker, []))
            pending.outstanding.discard(worker)
        if extra_shard is not None:
            lost_shards.append(list(extra_shard))
        self._transit.pop(worker, None)
        self._sent_payloads.pop(worker, None)
        self._lagging.pop(worker, None)
        lost_residents = sorted(cid for cid, owner in self._owner.items()
                                if owner == worker)
        mirrors = {}
        if self.trainer is not None:
            mirrors.update({c.client_id: c for c in self.trainer.clients})
        if pending is not None:
            mirrors.update(pending.mirrors)
        for cid in lost_residents:
            del self._owner[cid]
        if self.on_worker_failure == "restart":
            pool.respawn(worker)
            self.fault_stats["restarts"] += 1
        else:  # redistribute
            pool.mark_dead(worker)
            if not pool.alive_workers:
                raise WorkerError(
                    "every worker has died; cannot redistribute "
                    f"(last crash: worker {worker})", worker=worker,
                    command=error.command) from error
            self.fault_stats["redistributed_clients"] += len(lost_residents)
        # The crash poisoned the pool defensively; recovery restores a
        # consistent protocol state, so close-time sync is safe again.
        pool.poisoned = False
        adopt_batches: Dict[int, List] = {}
        for cid in lost_residents:
            client = mirrors.get(cid)
            snapshot = self._recovery.get(cid)
            if client is None:
                continue
            if snapshot is not None:
                # Roll the mirror's worker-owned state back to the client's
                # last completed round; its weights already hold the current
                # broadcast, which is exactly the state the crashed worker
                # trained from.
                restore_client_state(client, snapshot,
                                     include_weights=False)
            try:
                blob = pickle.dumps(client,
                                    protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                self._local.add(cid)
                continue
            new_worker = self._assign_worker(cid)
            self._owner[cid] = new_worker
            adopt_batches.setdefault(new_worker, []).append((cid, blob))
            self._recovery[cid] = snapshot_client_state(
                client, include_weights=False)
            self.transport.record_download("bootstrap_payload",
                                           len(blob) / 8.0)
        for new_worker, batch in adopt_batches.items():
            pool.send(new_worker, "adopt", batch)
        # Re-dispatch (or drop) the shards that died with the worker.
        regrouped: Dict[int, List[int]] = {}
        for shard in lost_shards:
            for cid in shard:
                owner = self._owner.get(cid)
                if owner is None or not redispatch \
                        or self._lagging.get(owner):
                    if pending is not None:
                        pending.dropped.add(cid)
                    self.fault_stats["dropped_reports"] += 1
                else:
                    regrouped.setdefault(owner, []).append(cid)
        for owner, ids in sorted(regrouped.items()):
            try:
                self._send_shard(pending, owner, ids)
            except WorkerCrash as chained:
                self._handle_crash(pending, owner, chained, extra_shard=ids,
                                   redispatch=redispatch)

    def timeout_outstanding(self, pending: "PendingRound") -> List[int]:
        """Drop every still-outstanding shard from the round (deadline hit).

        The late workers stay alive but are marked *lagging*: their stale
        replies remain queued in the pipes and are drained opportunistically
        (:meth:`poll_lagging`), keeping the request/reply protocol aligned.
        A lagging worker's residents sit out subsequent rounds until it
        catches up.  Returns the dropped client ids.
        """
        dropped: List[int] = []
        for worker in sorted(pending.outstanding):
            shards = pending.groups.pop(worker, [])
            self._lagging[worker] = self._lagging.get(worker, 0) \
                + len(shards)
            self.fault_stats["timeouts"] += 1
            for shard in shards:
                dropped.extend(shard)
        pending.outstanding.clear()
        pending.dropped.update(dropped)
        self.fault_stats["dropped_reports"] += len(dropped)
        return dropped

    def abandon_job(self, pending: "PendingRound", worker: int) -> List[int]:
        """Async-path variant of :meth:`timeout_outstanding`: one worker."""
        shards = pending.groups.pop(worker, [])
        pending.outstanding.discard(worker)
        self._lagging[worker] = self._lagging.get(worker, 0) + len(shards)
        self.fault_stats["timeouts"] += 1
        dropped = [cid for shard in shards for cid in shard]
        pending.dropped.update(dropped)
        self.fault_stats["dropped_reports"] += len(dropped)
        return dropped

    def _absorb_stale_reply(self, worker: int, reply) -> None:
        """Account a drained stale (timed-out) reply without using it.

        The training it reports was dropped from its round, so losses and
        deltas are discarded — but the recovery snapshots it carries are
        still the freshest worker-side state, and the busy seconds are real
        compute the utilization metric should see.
        """
        _losses, _deltas, stats = reply
        transit_fifo = self._transit.get(worker)
        if transit_fifo:
            transit_fifo.pop(0)
        sent_fifo = self._sent_payloads.get(worker)
        if sent_fifo:
            sent_fifo.pop(0)
        if "snapshots" in stats:
            self._recovery.update(stats["snapshots"])
        self.busy_sec[worker] = self.busy_sec.get(worker, 0.0) \
            + stats.get("busy_sec", 0.0)

    def poll_lagging(self) -> List[int]:
        """Drain ready stale replies; return the workers that caught up.

        Non-blocking: each lagging worker gives up its queued replies as
        they land.  A worker found dead here runs the crash policy (its
        stale shards were already dropped, so there is nothing to
        re-dispatch).
        """
        caught_up: List[int] = []
        for worker in sorted(self._lagging):
            while self._lagging.get(worker, 0) > 0 \
                    and self._pool.poll(worker):
                command = self._pool.next_reply_command(worker)
                try:
                    reply = self._pool.recv(worker)
                except BroadcastCorrupted:
                    # The stale shard was already dropped from its round —
                    # retrain would be wasted work, so absorb the rejection
                    # and retire the shard's FIFO entries instead of
                    # resending.
                    if command == "train":
                        self._lagging[worker] -= 1
                        for fifo in (self._transit.get(worker),
                                     self._sent_payloads.get(worker)):
                            if fifo:
                                fifo.pop(0)
                    continue
                except WorkerCrash as error:
                    self._handle_crash(None, worker, error)
                    break
                if command == "train":
                    self._lagging[worker] -= 1
                    self._absorb_stale_reply(worker, reply)
            if self._lagging.get(worker) == 0:
                del self._lagging[worker]
                caught_up.append(worker)
        return caught_up

    def worker_ready(self, worker: int,
                     timeout: Optional[float] = None) -> bool:
        """True when ``worker``'s next reply is ready within ``timeout``."""
        return bool(self._pool.wait([worker], timeout=timeout))

    def wait_lagging(self, timeout: Optional[float] = None) -> List[int]:
        """Block (up to ``timeout``) for any lagging worker's stale reply."""
        if not self._lagging:
            return []
        self._pool.wait(sorted(self._lagging), timeout=timeout)
        return self.poll_lagging()

    def flush_lagging(self, timeout: float = 10.0) -> None:
        """Best-effort drain of all lagging workers (bounded by deadline)."""
        deadline = time.monotonic() + timeout
        while self._lagging and time.monotonic() < deadline:
            self.wait_lagging(timeout=max(
                0.0, min(1.0, deadline - time.monotonic())))

    def finish_round(self, pending: "PendingRound",
                     advance_round: bool = True) -> List[float]:
        """Close out a fully-collected round; losses in participant order.

        Applies the collected worker-trained states to the coordinator
        mirrors — from here on the round looks exactly as if every client
        had trained in-process.  ``advance_round=False`` skips the per-round
        IPC tick — the async loop re-dispatches shards many times per server
        round and advances the tracker once per seal instead.
        """
        if pending.outstanding:
            raise RuntimeError(
                f"round not complete: workers {sorted(pending.outstanding)} "
                "still outstanding")
        for cid, state in pending.states.items():
            pending.mirrors[cid].set_weights(state)
        if advance_round:
            self.transport.next_round()
        # Dropped clients (timeouts, lost crash shards) have no loss entry;
        # the round loop reweights the aggregate over the actual reporters.
        return [pending.losses[client.client_id]
                for client in pending.participants
                if client.client_id in pending.losses]

    def run_local_training(self, participants):
        pending = self.dispatch_round(participants)
        self.run_local_side(pending)
        while pending.outstanding:
            self.collect_next(pending)
        return self.finish_round(pending)

    # ------------------------------------------------------------------
    def _sync_worker_state(self) -> None:
        """Pull optimizer/RNG state of every resident back into the mirrors.

        Called on close so the in-process clients end the run in exactly the
        state serial training would leave them in (weights are already exact
        round by round; moments and RNG streams lived worker-side).
        """
        trainer = self.trainer
        if trainer is None or self._pool is None \
                or not self._pool.safe_for_sync:
            # A failed command — or a coordinator-side abort with replies
            # still in flight — means a fetch_all now could consume a stale
            # train reply as its own result and mask the original error.
            # Skip the best-effort sync entirely.
            return
        mirrors = {c.client_id: c for c in trainer.clients}
        for worker in self._pool.alive_workers:
            try:
                snapshots = self._pool.call(worker, "fetch_all", False)
                for cid, snapshot in snapshots.items():
                    client = mirrors.get(cid)
                    if client is not None:
                        restore_client_state(client, snapshot,
                                             include_weights=False)
            except (WorkerError, OSError, EOFError):
                continue

    def sync_for_checkpoint(self) -> None:
        """Bring the coordinator mirrors to checkpointable state.

        When the pool's protocol is clean, the authoritative worker-side
        optimizer moments and RNG streams are pulled into the mirrors
        (exact).  Otherwise — e.g. a recovery just ran — the best available
        per-client recovery snapshots are applied instead, which is the same
        state a crash recovery would restore from.
        """
        if self.trainer is None or self._pool is None or self._pool.closed:
            return
        if self._pool.safe_for_sync and not self._lagging:
            self._sync_worker_state()
            return
        mirrors = {c.client_id: c for c in self.trainer.clients}
        for cid, snapshot in self._recovery.items():
            client = mirrors.get(cid)
            if client is not None and cid in self._owner:
                restore_client_state(client, snapshot,
                                     include_weights=False)

    def close(self):
        if self._pool is not None and not self._pool.closed:
            try:
                self._sync_worker_state()
            finally:
                self._pool.shutdown()
        self._pool = None
        self._owner.clear()
        self._local.clear()
        self._recovery.clear()
        self._dispatch_count.clear()
        self._transit.clear()
        self._sent_payloads.clear()
        self._lagging.clear()


#: name → factory for every built-in backend; factories accept (and may
#: ignore) the shared keyword knobs ``num_workers`` / ``intra_worker``.
BACKEND_REGISTRY: Dict[str, Callable[..., ExecutionBackend]] = {
    SerialBackend.name: lambda num_workers=None, **_: SerialBackend(),
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def register_backend(name: str,
                     factory: Callable[..., ExecutionBackend]) -> None:
    """Register a custom backend factory under ``name``."""
    BACKEND_REGISTRY[name.lower()] = factory


def list_backends() -> List[str]:
    """Names of every registered execution backend."""
    return sorted(BACKEND_REGISTRY)


def make_backend(spec: Union[str, ExecutionBackend, None],
                 num_workers: Optional[int] = None,
                 **options) -> ExecutionBackend:
    """Resolve a backend from a registry name or pass an instance through.

    Extra keyword ``options`` (e.g. ``intra_worker``) are forwarded to the
    factory; knobs a factory's signature does not accept are dropped, so
    externally registered factories with the historical ``num_workers``-only
    signature keep working.
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    key = str(spec).lower()
    if key not in BACKEND_REGISTRY:
        raise KeyError(
            f"unknown execution backend '{spec}'; "
            f"available: {', '.join(list_backends())}")
    factory = BACKEND_REGISTRY[key]
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins without introspection
        parameters = None
    if parameters is not None and not any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in parameters.values()):
        options = {name: value for name, value in options.items()
                   if name in parameters}
    return factory(num_workers=num_workers, **options)

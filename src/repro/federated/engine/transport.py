"""Coordinator↔worker transports: in-process pipes and framed TCP channels.

The persistent worker pool (:mod:`~repro.federated.engine.persistent`) drives
each worker through a duplex *channel*.  Historically that channel was a raw
``multiprocessing.Pipe``; this module abstracts it behind a small
:class:`WorkerTransport` interface so the same command protocol can cross a
host boundary:

* :class:`PipeTransport` — today's behavior, byte for byte: a duplex fork
  pipe per worker, ``multiprocessing.connection.wait`` for readiness.  The
  parity reference — every checked-in training history is produced over it.
* :class:`TcpTransport` — length-prefixed framed messages over sockets.  The
  coordinator listens; workers dial in (spawned locally by default, or run
  as separate processes/hosts via ``python -m repro.cli worker``).  The
  channel is *born fault-tolerant*:

  - **per-frame CRC32 in both directions** — a corrupted frame is dropped
    and NACKed, and the go-back-N retransmit path redelivers it;
  - **heartbeat liveness** — each side emits heartbeats on an idle link and
    declares the link down after ``heartbeat_timeout`` silent seconds.  A
    link that stays down past its reconnect window surfaces exactly like a
    dead pipe (``recv`` raises ``EOFError``), so the existing
    ``on_worker_failure`` supervision handles a dead socket and a dead
    process identically;
  - **automatic reconnect with exponential backoff + jitter** — a worker
    whose socket dies re-dials the coordinator; sequence-numbered frames
    and cumulative acks let both sides retransmit exactly the unacknowledged
    suffix, so an in-flight round *resumes* instead of restarting (and a
    worker process that did die is re-bootstrapped from the PR 6 recovery
    snapshots by the supervision layer, same as a dead pipe);
  - **send timeouts with bounded retries** — socket writes carry an
    ``io_timeout`` and retransmits are paced by ``retransmit_timeout``
    inside the heartbeat budget, so a flaky link degrades into the round
    loop's ``round_timeout``/drop path instead of wedging a round.

Determinism: message *content* and per-worker FIFO order are identical over
both transports, which is why sync-path training histories are bitwise-equal
across ``pipe`` and ``tcp`` (asserted in ``tests/test_transport.py``).

A seeded simulated WAN (:class:`WanLink`) can be attached to every link:
per-message delay = latency + jitter + bytes/bandwidth, plus an i.i.d. loss
probability, each drawn from a per-link, per-direction
``np.random.default_rng`` stream — deterministic given the seed.  Scheduled
network *events* (``delay``/``partition``/``reorder``/``drop_msg``) from a
:class:`~repro.federated.engine.faults.FaultPlan` are injected through
:meth:`_TcpChannel.inject` on the coordinator side of the link.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import random
import socket
import struct
import threading
import time
import zlib
from collections import deque
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

# ----------------------------------------------------------------------
# Frame codec: length-prefixed, CRC-protected messages
# ----------------------------------------------------------------------
#: frame header: magic, type, seq, cumulative ack, payload length, payload CRC
_HEADER = struct.Struct("!4sBIIII")
_MAGIC = b"RFT1"

F_DATA = 0    #: an application message (pickled command/reply)
F_ACK = 1     #: cumulative acknowledgement (no payload)
F_HB = 2      #: heartbeat (no payload, carries the ack)
F_HELLO = 3   #: connection handshake (pickled metadata)
F_NACK = 4    #: "retransmit everything after ack" (CRC failure / gap)

FRAME_OVERHEAD = _HEADER.size


class FrameCorruption(Exception):
    """A frame arrived with a payload that fails its CRC (recoverable)."""


class StreamDesync(Exception):
    """The byte stream lost frame alignment (bad magic) — link must reset."""


def pack_frame(ftype: int, seq: int, ack: int, payload: bytes = b"") -> bytes:
    """Serialise one frame: header (with CRC32 of the payload) + payload."""
    header = _HEADER.pack(_MAGIC, ftype, seq, ack, len(payload),
                          zlib.crc32(payload))
    return header + payload


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            raise EOFError("connection closed")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Tuple[int, int, int, bytes]:
    """Read one frame off a socket; returns ``(ftype, seq, ack, payload)``.

    Raises :class:`FrameCorruption` when the payload fails its CRC (the
    stream itself stays aligned — the corrupted payload was consumed) and
    :class:`StreamDesync` when the header magic is wrong (alignment lost,
    the link must be torn down and re-established).
    """
    header = _recv_exact(sock, _HEADER.size)
    magic, ftype, seq, ack, length, crc = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise StreamDesync(f"bad frame magic {magic!r}")
    payload = _recv_exact(sock, length) if length else b""
    if zlib.crc32(payload) != crc:
        raise FrameCorruption(
            f"frame seq={seq} failed CRC ({length} bytes)")
    return ftype, seq, ack, payload


# ----------------------------------------------------------------------
# Simulated WAN links (deterministic, seeded)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WanLink:
    """One direction of a simulated WAN link.

    ``latency_ms`` is the propagation delay added to every message,
    ``jitter_ms`` the *upper bound* of a uniform extra delay,
    ``bandwidth_mbps`` the serialisation rate (0 = infinite) and ``loss``
    the i.i.d. probability that a frame's transmission is skipped (the
    retransmit machinery redelivers it — loss costs time, never data).
    """

    latency_ms: float = 0.0
    jitter_ms: float = 0.0
    bandwidth_mbps: float = 0.0
    loss: float = 0.0


class LinkState:
    """A :class:`WanLink` bound to one (worker, direction) RNG stream."""

    def __init__(self, link: WanLink, seed: int, worker: int, direction: str):
        self.link = link
        self._rng = np.random.default_rng(
            (int(seed), int(worker), 0 if direction == "down" else 1))

    def delay_for(self, nbytes: int) -> float:
        """Seconds this message spends on the link (latency + serialise)."""
        link = self.link
        delay = link.latency_ms / 1000.0
        if link.jitter_ms > 0.0:
            delay += float(self._rng.random()) * link.jitter_ms / 1000.0
        if link.bandwidth_mbps > 0.0:
            delay += nbytes * 8.0 / (link.bandwidth_mbps * 1e6)
        return delay

    def drops(self) -> bool:
        """One seeded loss draw (False when the link is lossless)."""
        if self.link.loss <= 0.0:
            return False
        return float(self._rng.random()) < self.link.loss


class WanModel:
    """Per-worker WAN links (both directions), resolved from a plain spec.

    The spec is a dict with the :class:`WanLink` fields (applied to every
    link), an optional ``seed`` and an optional ``per_worker`` map of
    worker-index → link-field overrides::

        {"latency_ms": 20, "bandwidth_mbps": 100, "loss": 0.01, "seed": 7,
         "per_worker": {1: {"latency_ms": 80}}}
    """

    def __init__(self, default: WanLink, seed: int = 0,
                 per_worker: Optional[Dict[int, WanLink]] = None):
        self.default = default
        self.seed = int(seed)
        self.per_worker = dict(per_worker or {})

    @classmethod
    def from_spec(cls, spec) -> Optional["WanModel"]:
        if spec is None:
            return None
        if isinstance(spec, WanModel):
            return spec
        spec = dict(spec)
        seed = int(spec.pop("seed", 0))
        per_worker_spec = spec.pop("per_worker", {}) or {}
        default = WanLink(**spec)
        per_worker = {
            int(worker): WanLink(**{**spec, **dict(overrides)})
            for worker, overrides in per_worker_spec.items()}
        return cls(default, seed=seed, per_worker=per_worker)

    def link_for(self, worker: int) -> WanLink:
        return self.per_worker.get(int(worker), self.default)

    def state_for(self, worker: int, direction: str) -> LinkState:
        return LinkState(self.link_for(worker), self.seed, worker, direction)


# ----------------------------------------------------------------------
# Transport knobs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TransportKnobs:
    """Fault-tolerance timing of a TCP channel (seconds).

    ``heartbeat_interval``/``heartbeat_timeout`` bound silent-link
    detection; ``reconnect_window`` is the retry budget a broken link gets
    before it is declared dead (the supervision layer then sees a crashed
    worker); ``retransmit_timeout`` paces go-back-N retransmits;
    ``backoff_base``/``backoff_max`` shape the dialer's exponential backoff
    (each attempt additionally jittered uniformly in [0, backoff)); and
    ``connect_timeout``/``io_timeout`` bound the initial handshake and any
    single blocking socket write.
    """

    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 5.0
    reconnect_window: float = 10.0
    retransmit_timeout: float = 0.25
    connect_timeout: float = 30.0
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    io_timeout: float = 30.0


#: injectable network fault directives (see faults.NETWORK_KINDS)
_INJECTABLE = ("delay", "partition", "reorder", "drop_msg")


# ----------------------------------------------------------------------
# The reliable framed channel (both ends of a TCP link)
# ----------------------------------------------------------------------
class _TcpChannel:
    """One sequenced, CRC-checked, auto-reconnecting message channel.

    Duck-types the subset of ``multiprocessing.connection.Connection`` the
    worker pool uses — ``send``/``recv``/``poll``/``close`` — with the same
    failure surface: ``send`` raises ``OSError`` and ``recv`` raises
    ``EOFError`` once the channel is dead, so a dead socket looks exactly
    like a dead pipe to the supervision layer.

    Both ends run the same machinery; the ``dial`` argument picks the role.
    The coordinator end is *passive* (the transport's acceptor re-attaches
    sockets as workers dial back in); the worker end is *active* (its writer
    thread dials with exponential backoff + jitter).  All unacknowledged
    frames are kept in a sequence-numbered outbox and retransmitted after a
    reconnect handshake exchanges cumulative acks — the message stream
    resumes without loss or duplication.
    """

    def __init__(self, worker: int, knobs: TransportKnobs,
                 link: Optional[LinkState] = None,
                 dial: Optional[Tuple] = None, transport=None):
        self.worker = worker
        self.knobs = knobs
        self._link = link
        self._dial = dial            # (address, token, session) or None
        self._transport = transport  # owner (coordinator side), for wait()
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)      # writer wake-ups
        self._readable = threading.Condition(self._lock)  # recv/poll waiters
        self._wmutex = threading.Lock()  # serialises socket writes only
        self._sock: Optional[socket.socket] = None
        self._session_gen = 0
        self._send_seq = 0           # last allocated outbound seq
        self._recv_seq = 0           # last in-order delivered inbound seq
        self._outbox: Dict[int, bytes] = {}      # unacked payloads by seq
        self._unsent: deque = deque()            # seqs awaiting (re)transmit
        self._reorder: Dict[int, bytes] = {}     # out-of-order arrivals
        self._inbox: deque = deque()             # delivered payload bytes
        self._dead = False
        self._dead_reason = ""
        self._last_heard = time.monotonic()
        self._last_write = 0.0
        self._last_data_write = 0.0
        self._last_progress = time.monotonic()   # last ack/attach progress
        self._attach_deadline = time.monotonic() + knobs.connect_timeout
        self._reject_until = 0.0                 # injected partition window
        # one-shot injected network fault directives (coordinator side)
        self._inject_delay = 0.0
        self._inject_drop = 0
        self._inject_reorder = False
        self._held_frame: Optional[Tuple[int, bytes]] = None
        self._held_since = 0.0
        self.stats: Dict[str, int] = {
            "frames_sent": 0, "bytes_sent": 0, "frames_received": 0,
            "retransmits": 0, "crc_failures": 0, "reconnects": 0,
            "wan_dropped": 0, "injected_faults": 0}
        self._writer = threading.Thread(target=self._writer_loop,
                                        daemon=True,
                                        name=f"tcp-writer-{worker}")
        self._writer.start()

    # -- Connection-compatible surface ---------------------------------
    def send(self, obj) -> None:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        with self._work:
            if self._dead:
                raise OSError(
                    f"channel to worker {self.worker} is dead "
                    f"({self._dead_reason})")
            self._send_seq += 1
            self._outbox[self._send_seq] = payload
            self._unsent.append(self._send_seq)
            self._work.notify_all()

    def recv(self):
        with self._readable:
            while not self._inbox and not self._dead:
                self._readable.wait()
            if self._inbox:
                payload = self._inbox.popleft()
            else:
                raise EOFError(
                    f"channel to worker {self.worker} is dead "
                    f"({self._dead_reason})")
        return pickle.loads(payload)

    def poll(self, timeout: float = 0.0) -> bool:
        deadline = time.monotonic() + (timeout or 0.0)
        with self._readable:
            while True:
                if self._inbox or self._dead:
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._readable.wait(remaining)

    def close(self) -> None:
        # Give in-flight frames (notably the pool's "stop" command) a short
        # grace period to be transmitted and acknowledged before tearing the
        # link down, so workers exit via the clean stop path instead of
        # burning their reconnect budget against a vanished coordinator.
        deadline = time.monotonic() + 0.5
        while time.monotonic() < deadline:
            with self._lock:
                if self._dead or not self._outbox:
                    break
            time.sleep(0.01)
        self._die("closed")

    # -- fault injection (coordinator side) ----------------------------
    def inject(self, kind: str, duration: float = 0.0) -> None:
        """Schedule one network fault on this link (next outbound frames).

        ``delay`` adds ``duration`` seconds to the next data frame;
        ``drop_msg`` skips the next data frame's first transmission (the
        retransmit path redelivers it); ``reorder`` swaps the next two data
        frames on the wire; ``partition`` severs the link immediately and
        refuses re-attachment for ``duration`` seconds (both directions go
        dark; the worker's dialer recovers the session afterwards, provided
        the reconnect window outlasts the partition).
        """
        if kind not in _INJECTABLE:
            raise ValueError(f"unknown network fault kind {kind!r}")
        with self._work:
            self.stats["injected_faults"] += 1
            if kind == "delay":
                self._inject_delay += float(duration)
            elif kind == "drop_msg":
                self._inject_drop += 1
            elif kind == "reorder":
                self._inject_reorder = True
            else:  # partition
                self._reject_until = time.monotonic() + float(duration)
                self._link_down("injected partition")
                return
            self._work.notify_all()

    def accepts_attach(self) -> bool:
        with self._lock:
            return not self._dead \
                and time.monotonic() >= self._reject_until

    # -- link lifecycle -------------------------------------------------
    def attach(self, sock: socket.socket, peer_ack: int) -> None:
        """Adopt a (re)connected socket; resume the sequenced stream.

        ``peer_ack`` is the peer's cumulative receive counter from the
        handshake: everything at or below it is pruned from the outbox,
        everything above is queued for retransmission.
        """
        sock.settimeout(self.knobs.io_timeout)
        with self._work:
            if self._dead:
                sock.close()
                raise OSError("channel is dead")
            if self._sock is not None:
                self._close_socket()
                self.stats["reconnects"] += 1
            elif self._session_gen > 0:
                self.stats["reconnects"] += 1
            self._sock = sock
            self._session_gen += 1
            gen = self._session_gen
            self._apply_ack(peer_ack)
            self._unsent = deque(sorted(self._outbox))
            self._held_frame = None
            now = time.monotonic()
            self._last_heard = now
            self._last_progress = now
            self._attach_deadline = float("inf")
            reader = threading.Thread(
                target=self._reader_loop, args=(sock, gen), daemon=True,
                name=f"tcp-reader-{self.worker}")
            reader.start()
            self._work.notify_all()

    def _close_socket(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def _link_down(self, reason: str) -> None:
        with self._work:
            if self._dead or self._sock is None:
                return
            self._close_socket()
            self._session_gen += 1
            self._unsent.clear()
            self._held_frame = None
            self._attach_deadline = time.monotonic() \
                + self.knobs.reconnect_window
            self._work.notify_all()

    def _die(self, reason: str) -> None:
        with self._work:
            if self._dead:
                return
            self._dead = True
            self._dead_reason = reason
            self._close_socket()
            self._work.notify_all()
            self._readable.notify_all()
        if self._transport is not None:
            self._transport._notify()

    # -- reader ----------------------------------------------------------
    def _reader_loop(self, sock: socket.socket, gen: int) -> None:
        while True:
            try:
                ftype, seq, ack, payload = read_frame(sock)
            except FrameCorruption:
                with self._lock:
                    self.stats["crc_failures"] += 1
                self._send_control(F_NACK)
                continue
            except (OSError, EOFError, StreamDesync) as error:
                with self._work:
                    if gen != self._session_gen or self._dead:
                        return
                self._link_down(f"connection lost: {error!r}")
                return
            with self._work:
                if gen != self._session_gen:
                    return
                self._last_heard = time.monotonic()
                self.stats["frames_received"] += 1
                self._apply_ack(ack)
                if ftype == F_DATA:
                    self._accept_data(seq, payload)
                elif ftype == F_NACK:
                    # Peer saw corruption or a gap: retransmit the
                    # unacknowledged suffix (go-back-N).
                    self._queue_retransmit()
                    self._work.notify_all()

    def _accept_data(self, seq: int, payload: bytes) -> None:
        if seq <= self._recv_seq:
            pass                      # duplicate of a delivered frame
        elif seq == self._recv_seq + 1:
            self._recv_seq = seq
            self._inbox.append(payload)
            while self._recv_seq + 1 in self._reorder:
                self._recv_seq += 1
                self._inbox.append(self._reorder.pop(self._recv_seq))
            self._readable.notify_all()
            if self._transport is not None:
                self._transport._notify()
        else:
            self._reorder[seq] = payload
        self._send_control(F_ACK)

    def _apply_ack(self, ack: int) -> None:
        pruned = False
        for seq in [s for s in self._outbox if s <= ack]:
            del self._outbox[seq]
            pruned = True
        if pruned:
            self._last_progress = time.monotonic()
            while self._unsent and self._unsent[0] <= ack:
                self._unsent.popleft()

    def _queue_retransmit(self) -> None:
        queued = set(self._unsent)
        fresh = [seq for seq in sorted(self._outbox) if seq not in queued]
        if fresh:
            self.stats["retransmits"] += len(fresh)
            self._unsent.extend(fresh)
            self._unsent = deque(sorted(self._unsent))

    # -- writer ----------------------------------------------------------
    def _send_control(self, ftype: int) -> None:
        """Write an ACK/HB/NACK frame now (tiny, skips the WAN model)."""
        with self._lock:
            sock = self._sock
            frame = pack_frame(ftype, 0, self._recv_seq)
        if sock is None:
            return
        try:
            with self._wmutex:
                sock.sendall(frame)
        except OSError:
            pass  # the reader/writer liveness machinery handles teardown
        with self._lock:
            self._last_write = time.monotonic()

    def _writer_loop(self) -> None:
        knobs = self.knobs
        tick = max(0.01, min(knobs.heartbeat_interval,
                             knobs.retransmit_timeout) / 2.0)
        backoff_attempt = 0
        while True:
            with self._work:
                if self._dead:
                    return
                now = time.monotonic()
                if self._sock is None:
                    if now >= self._attach_deadline:
                        dead_line = True
                    elif self._dial is None:
                        # Passive side: wait for the acceptor to re-attach.
                        self._work.wait(
                            min(tick, self._attach_deadline - now))
                        continue
                    else:
                        dead_line = False
                else:
                    dead_line = False
                    backoff_attempt = 0
                    if now - self._last_heard > knobs.heartbeat_timeout:
                        self._link_down("heartbeat timeout")
                        continue
                    # Gauge retransmission on DATA writes only — heartbeats
                    # keep refreshing _last_write, and pacing on it would
                    # silence retransmits whenever heartbeat_interval <
                    # retransmit_timeout (a dropped frame would never be
                    # resent and the round would wedge).
                    if self._outbox and not self._unsent and \
                            now - max(self._last_progress,
                                      self._last_data_write) \
                            > knobs.retransmit_timeout:
                        self._queue_retransmit()
                    if not self._unsent:
                        if now - self._last_write > knobs.heartbeat_interval:
                            pass          # fall through to heartbeat below
                        elif self._held_frame is not None and \
                                now - self._held_since > 2 * tick:
                            pass          # flush a stale reorder hold
                        else:
                            self._work.wait(tick)
                            continue
            if dead_line:
                self._die("no connection within the reconnect window")
                return
            if self._sock is None:
                # Active side: dial with exponential backoff + jitter.
                if not self._dial_once():
                    delay = min(knobs.backoff_max,
                                knobs.backoff_base * (2 ** backoff_attempt))
                    time.sleep(delay + random.uniform(0.0, delay))
                    backoff_attempt += 1
                continue
            self._pump_once()

    def _pump_once(self) -> None:
        """Send at most one data frame (or a heartbeat) outside the lock."""
        with self._lock:
            sock = self._sock
            if sock is None:
                return
            if self._held_frame is not None and not self._unsent:
                seq, frame = self._held_frame
                self._held_frame = None
                to_send, delay, dropped = (seq, frame), 0.0, False
            elif self._unsent:
                seq = self._unsent.popleft()
                payload = self._outbox.get(seq)
                if payload is None:
                    return
                frame = pack_frame(F_DATA, seq, self._recv_seq, payload)
                delay = self._inject_delay
                self._inject_delay = 0.0
                dropped = False
                if self._inject_drop > 0:
                    self._inject_drop -= 1
                    dropped = True
                if self._link is not None:
                    delay += self._link.delay_for(len(frame))
                    if not dropped and self._link.drops():
                        self.stats["wan_dropped"] += 1
                        dropped = True
                if not dropped and self._inject_reorder \
                        and self._held_frame is None:
                    self._inject_reorder = False
                    self._held_frame = (seq, frame)
                    self._held_since = time.monotonic()
                    return
                to_send = (seq, frame)
            else:
                frame = pack_frame(F_HB, 0, self._recv_seq)
                to_send, delay, dropped = (0, frame), 0.0, False
        if dropped:
            # The (simulated) loss still counts as the transmission attempt:
            # the retransmit gate paces from here.
            with self._lock:
                self._last_data_write = time.monotonic()
            return
        if delay > 0.0:
            time.sleep(delay)
        seq, frame = to_send
        with self._lock:
            sock = self._sock
        if sock is None:
            if seq:
                # The link went down mid-delay; requeue for the next session.
                with self._lock:
                    if seq in self._outbox and seq not in self._unsent:
                        self._unsent.append(seq)
                        self._unsent = deque(sorted(self._unsent))
            return
        try:
            with self._wmutex:
                sock.sendall(frame)
        except OSError as error:
            self._link_down(f"send failed: {error!r}")
            return
        with self._lock:
            self._last_write = time.monotonic()
            if seq:
                self._last_data_write = self._last_write
            self.stats["frames_sent"] += 1
            self.stats["bytes_sent"] += len(frame)

    # -- active-side dialing --------------------------------------------
    def _dial_once(self) -> bool:
        address, token, session = self._dial
        try:
            sock = socket.create_connection(
                address, timeout=min(5.0, self.knobs.connect_timeout))
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = {"worker": self.worker, "token": token,
                     "session": session, "ack": self._recv_seq}
            sock.sendall(pack_frame(
                F_HELLO, 0, self._recv_seq,
                pickle.dumps(hello, protocol=pickle.HIGHEST_PROTOCOL)))
            ftype, _seq, _ack, payload = read_frame(sock)
            if ftype != F_HELLO:
                raise OSError(f"handshake expected HELLO, got {ftype}")
            reply = pickle.loads(payload)
            self.attach(sock, int(reply["ack"]))
            return True
        except (OSError, EOFError, FrameCorruption, StreamDesync,
                pickle.UnpicklingError, KeyError):
            try:
                sock.close()
            except (OSError, UnboundLocalError, NameError):
                pass
            return False


# ----------------------------------------------------------------------
# Transport implementations
# ----------------------------------------------------------------------
class WorkerTransport:
    """How the pool reaches its workers: spawn channels, wait on them."""

    name = "base"

    def spawn(self, index: int):
        """Start worker ``index``; returns ``(channel, process-or-None)``."""
        raise NotImplementedError

    def wait(self, channels: Sequence, timeout: Optional[float] = None
             ) -> List:
        """Block until ≥1 channel is readable (or dead); return the ready."""
        raise NotImplementedError

    def stats(self) -> Dict:
        return {"transport": self.name}

    def close(self) -> None:
        """Release transport-owned resources (listeners, acceptor threads)."""


class PipeTransport(WorkerTransport):
    """The classic in-host channel: one duplex fork pipe per worker.

    The channel object *is* the parent ``Connection`` — no wrapper, no
    behavioral delta — so every history trained over ``pipe`` is bitwise
    identical to the pre-transport engine (the parity reference).
    """

    name = "pipe"

    def __init__(self):
        methods = mp.get_all_start_methods()
        self._context = mp.get_context("fork" if "fork" in methods else None)

    def spawn(self, index: int):
        from repro.federated.engine.persistent import _worker_loop

        parent, child = self._context.Pipe(duplex=True)
        process = self._context.Process(target=_worker_loop, args=(child,),
                                        daemon=True)
        process.start()
        child.close()
        return parent, process

    def wait(self, channels, timeout=None):
        from multiprocessing.connection import wait as connection_wait

        ready = connection_wait(list(channels), timeout=timeout)
        ready_ids = {id(conn) for conn in ready}
        return [conn for conn in channels if id(conn) in ready_ids]


def _tcp_worker_main(address, worker: int, token: str,
                     session: Optional[str], knob_dict: Dict,
                     link_spec: Optional[Tuple]) -> None:
    """Entry point of a spawned TCP worker process: dial, run, exit."""
    run_tcp_worker(address, worker, token=token, session=session,
                   knobs=TransportKnobs(**knob_dict), link_spec=link_spec)


def run_tcp_worker(address, worker: int, *, token: str = "",
                   session: Optional[str] = None,
                   knobs: Optional[TransportKnobs] = None,
                   link_spec: Optional[Tuple] = None) -> None:
    """Run one worker command loop against a coordinator at ``address``.

    This is what ``python -m repro.cli worker`` calls: it dials the
    coordinator's :class:`TcpTransport` listener (retrying with backoff
    inside the connect budget), then serves the persistent pool's command
    protocol until the coordinator stops it or the channel dies.

    ``link_spec`` optionally carries ``(WanLink-fields-dict, seed)`` for the
    uplink direction of the simulated WAN.
    """
    from repro.federated.engine.persistent import _worker_loop

    link = None
    if link_spec is not None:
        fields, seed = link_spec
        link = LinkState(WanLink(**fields), seed, worker, "up")
    channel = _TcpChannel(worker, knobs or TransportKnobs(), link=link,
                          dial=(tuple(address), token, session))
    try:
        _worker_loop(channel)
    finally:
        channel.close()


class TcpTransport(WorkerTransport):
    """Framed TCP channels: coordinator listener + dialing workers.

    ``mode="process"`` (default) spawns local worker processes that dial
    back over loopback — a drop-in replacement for :class:`PipeTransport`
    that exercises the real wire protocol.  ``mode="external"`` spawns
    nothing: the transport waits (within ``connect_timeout``) for externally
    launched workers — ``python -m repro.cli worker --connect HOST:PORT
    --worker-id N`` — to dial in, which is how workers run on other hosts.

    Spawned processes use the ``forkserver``/``spawn`` start method, not
    ``fork``: the coordinator runs acceptor/reader/writer threads, and a
    forked child would additionally inherit every connected socket fd,
    keeping links half-open after the coordinator closes them.
    """

    name = "tcp"

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 mode: str = "process", token: str = "",
                 wan=None, advertise_host: Optional[str] = None, **knobs):
        if mode not in ("process", "external"):
            raise ValueError(
                f"tcp transport mode must be 'process' or 'external', "
                f"got {mode!r}")
        self.mode = mode
        self.token = token
        self.knobs = TransportKnobs(**knobs)
        self.wan = WanModel.from_spec(wan)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.address = (advertise_host or host or "127.0.0.1",
                        self._listener.getsockname()[1])
        self._lock = threading.Lock()
        self._wait_cv = threading.Condition(self._lock)
        self._wait_version = 0
        self._channels: Dict[int, _TcpChannel] = {}
        self._sessions: Dict[int, Optional[str]] = {}
        self._spawn_counts: Dict[int, int] = {}
        self._all_channels: List[_TcpChannel] = []
        self._closed = False
        methods = mp.get_all_start_methods()
        start = "forkserver" if "forkserver" in methods else "spawn"
        self._context = mp.get_context(start)
        self._acceptor = threading.Thread(target=self._accept_loop,
                                          daemon=True, name="tcp-acceptor")
        self._acceptor.start()

    # ------------------------------------------------------------------
    def _notify(self) -> None:
        with self._wait_cv:
            self._wait_version += 1
            self._wait_cv.notify_all()

    def spawn(self, index: int):
        with self._lock:
            if self._closed:
                raise OSError("transport is closed")
            count = self._spawn_counts.get(index, 0)
            self._spawn_counts[index] = count + 1
            session = f"{index}.{count}" if self.mode == "process" else None
            link = self.wan.state_for(index, "down") if self.wan else None
            channel = _TcpChannel(index, self.knobs, link=link,
                                  transport=self)
            self._channels[index] = channel
            self._sessions[index] = session
            self._all_channels.append(channel)
        process = None
        if self.mode == "process":
            link_spec = None
            if self.wan is not None:
                link_spec = (asdict(self.wan.link_for(index)), self.wan.seed)
            process = self._context.Process(
                target=_tcp_worker_main,
                args=(self.address, index, self.token, session,
                      asdict(self.knobs), link_spec),
                daemon=True)
            process.start()
        return channel, process

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                sock.settimeout(5.0)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                ftype, _seq, _ack, payload = read_frame(sock)
                if ftype != F_HELLO:
                    raise OSError("expected HELLO")
                hello = pickle.loads(payload)
                worker = int(hello["worker"])
                with self._lock:
                    channel = self._channels.get(worker)
                    expected = self._sessions.get(worker)
                if channel is None or not channel.accepts_attach():
                    raise OSError(f"no open channel for worker {worker}")
                if hello.get("token", "") != self.token:
                    raise OSError(f"bad token from worker {worker}")
                if expected is not None \
                        and hello.get("session") != expected:
                    # A stale dialer from before a respawn: refuse it so it
                    # cannot hijack the replacement channel.
                    raise OSError(f"stale session from worker {worker}")
                reply = {"ack": channel._recv_seq}
                sock.sendall(pack_frame(
                    F_HELLO, 0, channel._recv_seq,
                    pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)))
                channel.attach(sock, int(hello.get("ack", 0)))
            except (OSError, EOFError, FrameCorruption, StreamDesync,
                    pickle.UnpicklingError, KeyError, ValueError):
                try:
                    sock.close()
                except OSError:
                    pass

    def wait(self, channels, timeout=None):
        # Channels are polled *outside* the wait lock (poll takes each
        # channel's own lock; holding both here would deadlock against
        # reader threads notifying the transport).  The version counter
        # closes the poll→wait race: a delivery between the two bumps the
        # version, so the wait falls through and re-polls immediately.
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._wait_cv:
                version = self._wait_version
            ready = [ch for ch in channels if ch.poll(0)]
            if ready:
                return ready
            with self._wait_cv:
                if self._wait_version == version:
                    if deadline is None:
                        self._wait_cv.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return []
                        self._wait_cv.wait(remaining)

    def stats(self) -> Dict:
        with self._lock:
            channels = list(self._all_channels)
        totals: Dict[str, int] = {}
        for channel in channels:
            for key, value in channel.stats.items():
                totals[key] = totals.get(key, 0) + value
        totals["transport"] = self.name
        return totals

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            channels = list(self._channels.values())
        for channel in channels:
            channel.close()
        try:
            self._listener.close()
        except OSError:
            pass
        self._acceptor.join(timeout=5.0)


# ----------------------------------------------------------------------
TRANSPORTS = ("pipe", "tcp")


def make_transport(name: str, options: Optional[Dict] = None
                   ) -> WorkerTransport:
    """Resolve a transport by name with its keyword options.

    ``pipe`` takes no options; ``tcp`` accepts ``host``/``port``/``mode``/
    ``token``/``wan``/``advertise_host`` plus every :class:`TransportKnobs`
    field.
    """
    options = dict(options or {})
    if name == "pipe":
        if options:
            raise ValueError(
                f"transport 'pipe' takes no options, got {sorted(options)}")
        return PipeTransport()
    if name == "tcp":
        return TcpTransport(**options)
    raise ValueError(
        f"unknown transport {name!r}; expected one of {TRANSPORTS}")

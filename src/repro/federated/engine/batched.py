"""Batched execution backend: homogeneous clients as one autograd graph.

Standard federated simulation spends most of its wall-clock on Python-level
overhead: ``B`` clients × ``E`` local epochs each build a full autograd graph
over small matrices.  When every client trains the *same architecture* (the
usual FL convention, and a hard requirement of FedAvg anyway), the per-client
graphs are structurally identical and can be fused:

* features are padded to ``(B, n_max, f)`` and propagated with one
  block-diagonal sparse operator via :func:`~repro.autograd.functional.spmm_batched`;
* per-client weight matrices are stacked into ``(B, fan_in, fan_out)``
  tensors, so every layer is a single batched matmul instead of ``B`` small
  ones;
* the per-client Adam moments are stacked too, and one vectorised update
  advances every client (with per-client bias-correction step counts, so
  partial participation stays exact).

Two model families are fused today, dispatched by model type:

* **GCN** (:class:`_BatchedGCNPlan`) — the full per-epoch pipeline:
  block-diagonal propagation, stacked linear layers, per-client dropout
  streams drawn in serial order;
* **SGC / propagation family** (:class:`_BatchedSGCPlan`) — the ``k``
  propagation hops act on *constant* features with a *constant* operator, so
  they are precomputed once per plan (k calls to ``spmm_batched`` at build
  time) and every local epoch collapses to one stacked linear layer over the
  cached ``(B, n_max, f)`` block.

Numerical behaviour mirrors serial execution: dropout masks are drawn from
each client's own RNG stream in serial order, gradients are clipped per
client with the same global-norm rule, and losses are the per-client
cross-entropy means.  Clients the backend cannot batch (unsupported models,
``extra_loss`` hooks, heterogeneous shapes) transparently fall back to serial
training; the most recent reason is kept in :attr:`BatchedBackend.last_fallback`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd import Tensor, functional as F, no_grad
from repro.federated.engine.backends import (
    ExecutionBackend,
    register_backend,
)
from repro.models.base import prepare_propagation
from repro.models.gcn import GCN, SGC
from repro.optim import Adam


class _BatchedPlan:
    """Constant per-group data shared by every batched model family.

    Owns the padded feature block, the block-diagonal propagation operator,
    the flat supervision indices that fuse every client's cross-entropy into
    one autograd path, and the stacked-Adam machinery.  Subclasses declare
    ``param_names`` (layer parameter names in optimizer order) and implement
    :meth:`_forward`.
    """

    def __init__(self, clients: Sequence):
        self.clients = list(clients)
        self.sizes = [c.graph.num_nodes for c in clients]
        self.n_max = max(self.sizes)
        batch = len(clients)
        num_features = clients[0].graph.num_features

        features = np.zeros((batch, self.n_max, num_features))
        rows, cols, vals = [], [], []
        self.labels: List[np.ndarray] = []
        self.train_idx: List[np.ndarray] = []
        for index, client in enumerate(clients):
            n = client.graph.num_nodes
            features[index, :n] = client.graph.features
            prop = prepare_propagation(client.graph.adjacency).tocoo()
            offset = index * self.n_max
            rows.append(prop.row + offset)
            cols.append(prop.col + offset)
            vals.append(prop.data)
            padded_labels = np.zeros(self.n_max, dtype=np.int64)
            padded_labels[:n] = client.graph.labels
            self.labels.append(padded_labels)
            self.train_idx.append(np.nonzero(client.graph.train_mask)[0])
        self.features = Tensor(features)
        # Flat supervision indices so the whole group's loss is one fused
        # autograd path: pick every (client, train-row, label) log-probability
        # at once and weight each entry by the client's 1/|train| (the exact
        # reciprocal the serial per-client ``mean()`` multiplies by, so
        # gradients match serial training bit for bit).
        counts = [idx.size for idx in self.train_idx]
        if any(count == 0 for count in counts):
            raise ValueError("batched training requires labelled train nodes "
                             "on every client")
        self.flat_batch = np.concatenate(
            [np.full(count, i) for i, count in enumerate(counts)])
        self.flat_rows = np.concatenate(self.train_idx)
        self.flat_labels = np.concatenate(
            [self.labels[i][idx] for i, idx in enumerate(self.train_idx)])
        self.flat_weights = Tensor(np.concatenate(
            [np.full(count, 1.0 / count) for count in counts]))
        self.segments = np.concatenate([[0], np.cumsum(counts)])
        total = batch * self.n_max
        self.propagation = sp.csr_matrix(
            (np.concatenate(vals),
             (np.concatenate(rows), np.concatenate(cols))),
            shape=(total, total))
        # Stable references into every client's parameters and graph-constant
        # metadata; re-read each round, but resolved only once.
        self._client_params = [dict(c.model.named_parameters())
                               for c in clients]
        # Layer parameter names in optimizer order, declared by the subclass:
        # e.g. [("conv0.weight", "conv0.bias"), ("conv1.weight", ...)].
        self.param_names: List[Tuple[str, str]] = self._layer_param_names()

    # -- family hooks --------------------------------------------------
    def _layer_param_names(self) -> List[Tuple[str, str]]:
        raise NotImplementedError

    def _forward(self, weights, biases) -> Tensor:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _stack_states(self):
        """Stacked weight tensors plus stacked Adam state, read from clients.

        Everything is ordered like ``Adam.parameters`` (``conv0.weight``,
        ``conv0.bias``, ``conv1.weight``, ...), so moment arrays stay aligned
        with the stacked parameter tensors.
        """
        per_client = self._client_params
        weights, biases = [], []
        for w_name, b_name in self.param_names:
            weights.append(Tensor(
                np.stack([p[w_name].data for p in per_client]),
                requires_grad=True))
            biases.append(Tensor(
                np.stack([p[b_name].data for p in per_client])[:, None, :],
                requires_grad=True))
        moments_m, moments_v = [], []
        for j in range(len(self.param_names) * 2):
            m = np.stack([c.optimizer._m[j] for c in self.clients])
            v = np.stack([c.optimizer._v[j] for c in self.clients])
            if m.ndim == 2:  # bias moments align with the (B, 1, h) tensors
                m, v = m[:, None, :], v[:, None, :]
            moments_m.append(m)
            moments_v.append(v)
        steps = np.array([c.optimizer._step_count for c in self.clients],
                         dtype=np.float64)
        return weights, biases, moments_m, moments_v, steps

    # ------------------------------------------------------------------
    # Resident ("hot") mode: a persistent-pool worker trains the same shard
    # every round, so the stacked tensors and Adam state can live on the
    # plan between rounds instead of round-tripping through every client's
    # model and optimizer (B × set_weights + np.stack up, B × write_back
    # down — the dominant non-epoch cost of small-client shards).  While a
    # plan is hot its clients' own weights/moments are stale; ``flush``
    # must run before anything else reads them (state fetch, eviction,
    # serial fallback, a different plan over the same clients).
    # ------------------------------------------------------------------
    hot: Optional[Tuple] = None

    def ensure_hot(self) -> None:
        """Stack the clients' current weights/moments into resident tensors.

        First hot round only; afterwards the stacked state is authoritative
        and the caller overwrites the weight slices with each broadcast via
        :meth:`load_client_state`.
        """
        if self.hot is None:
            self.hot = self._stack_states()

    def load_client_state(self, index: int, state: Dict[str, np.ndarray]
                          ) -> None:
        """Write one client's parameter dict into the hot stacked tensors."""
        weights, biases = self.hot[0], self.hot[1]
        for layer, (w_name, b_name) in enumerate(self.param_names):
            weights[layer].data[index] = state[w_name]
            biases[layer].data[index, 0] = state[b_name]

    def load_shared_state(self, state: Dict[str, np.ndarray]) -> None:
        """Broadcast one parameter dict to every client's stack slice.

        The uniform-broadcast fast path: one numpy assign per parameter
        instead of one per (client, parameter).
        """
        weights, biases = self.hot[0], self.hot[1]
        for layer, (w_name, b_name) in enumerate(self.param_names):
            weights[layer].data[:] = state[w_name]
            biases[layer].data[:, 0] = state[b_name]

    def client_state(self, index: int) -> Dict[str, np.ndarray]:
        """One client's trained parameters as views into the hot stack."""
        weights, biases = self.hot[0], self.hot[1]
        state = {}
        for layer, (w_name, b_name) in enumerate(self.param_names):
            state[w_name] = weights[layer].data[index]
            state[b_name] = biases[layer].data[index, 0]
        return state

    def stacked_params(self) -> Dict[str, np.ndarray]:
        """The hot ``(B, ...)`` parameter stacks, keyed by parameter name."""
        weights, biases = self.hot[0], self.hot[1]
        stacks = {}
        for layer, (w_name, b_name) in enumerate(self.param_names):
            stacks[w_name] = weights[layer].data
            stacks[b_name] = biases[layer].data[:, 0]
        return stacks

    def flush(self) -> None:
        """Write the hot stacked state back into the clients and go cold."""
        if self.hot is not None:
            self._write_back(*self.hot)
            self.hot = None

    # ------------------------------------------------------------------
    def run_round(self, max_grad_norm: float = 5.0,
                  keep_hot: bool = False) -> List[float]:
        """All participants' local epochs as one batched graph per epoch."""
        for client in self.clients:
            client.model.train()
        if self.hot is not None:
            weights, biases, moments_m, moments_v, steps = self.hot
        else:
            weights, biases, moments_m, moments_v, steps = \
                self._stack_states()
        # Flat parameter list in Adam order (weight, bias per layer) so the
        # clip/step loops pair each tensor with its stacked moments.
        stacked = [param for pair in zip(weights, biases) for param in pair]
        optimizer = self.clients[0].optimizer
        lr, wd = optimizer.lr, optimizer.weight_decay
        beta1, beta2, eps = optimizer.beta1, optimizer.beta2, optimizer.eps
        epochs = self.clients[0].local_epochs
        batch = len(self.clients)
        losses: List[List[float]] = [[] for _ in self.clients]

        for _ in range(epochs):
            for param in stacked:
                param.grad = None
            logits = self._forward(weights, biases)
            log_probs = F.log_softmax(logits, axis=-1)
            picked = log_probs[self.flat_batch, self.flat_rows,
                               self.flat_labels]
            total = -(picked * self.flat_weights).sum()
            for index in range(batch):
                start, stop = self.segments[index], self.segments[index + 1]
                segment = picked.data[start:stop]
                # Same float expression as the serial ``-picked.mean()``.
                losses[index].append(
                    float(-(segment.sum() * (1.0 / segment.size))))
            total.backward()

            # Per-client global-norm clipping (same rule as clip_grad_norm).
            square_sums = np.zeros(batch)
            for param in stacked:
                square_sums += (param.grad.reshape(batch, -1) ** 2).sum(axis=1)
            norms = np.sqrt(square_sums)
            scale = np.where(norms > max_grad_norm,
                             max_grad_norm / (norms + 1e-12), 1.0)
            if np.any(scale != 1.0):
                for param in stacked:
                    param.grad = param.grad * scale[:, None, None]

            # Vectorised Adam with per-client bias-correction step counts.
            # The corrections use Python scalar pow: numpy's vectorised
            # ``beta ** steps`` takes a SIMD code path whose rounding differs
            # from ``beta ** int_step`` by one ulp at some exponents (e.g.
            # 0.999**7), which would break bitwise parity with the serial
            # optimizer.
            steps += 1.0
            bias1 = np.array([1.0 - beta1 ** int(s) for s in steps])[
                :, None, None]
            bias2 = np.array([1.0 - beta2 ** int(s) for s in steps])[
                :, None, None]
            for param, m, v in zip(stacked, moments_m, moments_v):
                grad = param.grad
                if wd:
                    grad = grad + wd * param.data
                m *= beta1
                m += (1.0 - beta1) * grad
                v *= beta2
                v += (1.0 - beta2) * grad * grad
                param.data = param.data - lr * (m / bias1) / (
                    np.sqrt(v / bias2) + eps)

        if keep_hot:
            self.hot = (weights, biases, moments_m, moments_v, steps)
        else:
            self._write_back(weights, biases, moments_m, moments_v, steps)
            self.hot = None
        return [float(np.mean(per_client)) for per_client in losses]

    def _write_back(self, weights, biases, moments_m, moments_v, steps):
        """Unstack the trained state into each client's model and optimizer."""
        for index, client in enumerate(self.clients):
            state = {}
            for layer, (w_name, b_name) in enumerate(self.param_names):
                state[w_name] = weights[layer].data[index]
                state[b_name] = biases[layer].data[index, 0]
            client.set_weights(state)
            opt = client.optimizer
            opt._step_count = int(steps[index])
            for j, (m, v) in enumerate(zip(moments_m, moments_v)):
                target_shape = opt._m[j].shape
                opt._m[j] = m[index].reshape(target_shape).copy()
                opt._v[j] = v[index].reshape(target_shape).copy()


class _BatchedGCNPlan(_BatchedPlan):
    """GCN family: propagate + stacked linear + relu/dropout per layer."""

    def __init__(self, clients: Sequence):
        model = clients[0].model
        self.layer_names = list(model._layer_names)
        self.dropout_p = model.dropout.p
        super().__init__(clients)
        # Only the GCN forward back-propagates through spmm_batched; the
        # SGC family never needs the transposed operator.
        self.propagation_t = self.propagation.T.tocsr()

    def _layer_param_names(self):
        return [(f"{name}.weight", f"{name}.bias")
                for name in self.layer_names]

    def _dropout_mask(self, width: int) -> np.ndarray:
        """One inverted-dropout mask per client, drawn from its own stream."""
        p = self.dropout_p
        mask = np.zeros((len(self.clients), self.n_max, width))
        for index, client in enumerate(self.clients):
            n = self.sizes[index]
            draw = client.model.dropout._rng.random((n, width))
            mask[index, :n] = (draw >= p) / (1.0 - p)
        return mask

    def _forward(self, weights, biases) -> Tensor:
        hidden = self.features
        last = len(self.layer_names) - 1
        for layer in range(len(self.layer_names)):
            hidden = F.spmm_batched(self.propagation, hidden,
                                    adjacency_t=self.propagation_t)
            hidden = hidden.matmul(weights[layer]) + biases[layer]
            if layer != last:
                hidden = hidden.relu()
                if self.dropout_p > 0.0:
                    hidden = hidden * Tensor(
                        self._dropout_mask(hidden.shape[-1]))
        return hidden


class _BatchedSGCPlan(_BatchedPlan):
    """SGC / propagation family: constant k-hop block + one stacked linear.

    SGC's forward is ``linear(P^k X)`` where both ``P`` and ``X`` are fixed
    for the whole run, so the ``k`` sparse hops are hoisted out of the epoch
    loop entirely: at plan-build time the padded feature block is pushed
    through the block-diagonal operator ``k`` times (the same
    ``spmm_batched`` kernel, hence bitwise-identical hop results), and every
    local epoch is a single ``(B, n, f) @ (B, f, c)`` matmul plus bias.
    """

    def __init__(self, clients: Sequence):
        self.k = clients[0].model.k
        super().__init__(clients)
        with no_grad():
            hidden = self.features
            for _ in range(self.k):
                hidden = F.spmm_batched(self.propagation, hidden)
        self.propagated = Tensor(hidden.data)

    def _layer_param_names(self):
        return [("linear.weight", "linear.bias")]

    def _forward(self, weights, biases) -> Tensor:
        return self.propagated.matmul(weights[0]) + biases[0]


#: model type → batched plan family (extension point for new families).
PLAN_FAMILIES: List[Tuple[type, Type[_BatchedPlan]]] = [
    (GCN, _BatchedGCNPlan),
    (SGC, _BatchedSGCPlan),
]


def _plan_family(client) -> Optional[Type[_BatchedPlan]]:
    for model_type, plan_cls in PLAN_FAMILIES:
        if type(client.model) is model_type:
            return plan_cls
    return None


def _batchable(client) -> Optional[str]:
    """Return None if the client can join a batched group, else the reason."""
    if client.extra_loss is not None:
        return "client has a method-specific extra_loss hook"
    if _plan_family(client) is None:
        return (f"model {type(client.model).__name__} has no batched plan "
                f"family")
    if not isinstance(client.optimizer, Adam):
        return f"optimizer {type(client.optimizer).__name__} is not Adam"
    return None


def _homogeneous(clients: Sequence) -> bool:
    """All clients share layer shapes, dropout rate and optimizer settings."""
    reference = clients[0]
    family = _plan_family(reference)
    ref_shapes = {name: p.shape
                  for name, p in reference.model.named_parameters()}
    ref_opt = reference.optimizer
    for client in clients[1:]:
        if _plan_family(client) is not family:
            return False
        shapes = {name: p.shape for name, p in client.model.named_parameters()}
        if shapes != ref_shapes:
            return False
        if family is _BatchedGCNPlan and \
                client.model.dropout.p != reference.model.dropout.p:
            return False
        if family is _BatchedSGCPlan and \
                client.model.k != reference.model.k:
            return False
        opt = client.optimizer
        if (opt.lr, opt.weight_decay, opt.beta1, opt.beta2, opt.eps) != \
                (ref_opt.lr, ref_opt.weight_decay, ref_opt.beta1,
                 ref_opt.beta2, ref_opt.eps):
            return False
        if client.local_epochs != reference.local_epochs:
            return False
    return True


class BatchedBackend(ExecutionBackend):
    """Vectorises homogeneous-architecture clients into one batched graph."""

    name = "batched"

    #: bounded cache of plans keyed by the participant-id tuple
    _MAX_PLANS = 8

    def __init__(self, num_workers: Optional[int] = None, **_unused):
        del num_workers  # signature parity with the other backends
        #: participant-id tuple → built plan, or the construction-failure
        #: reason (a str) so a doomed group is not rebuilt every round
        self._plans: Dict[Tuple[int, ...], Union[_BatchedPlan, str]] = {}
        self.last_fallback: Optional[str] = None
        #: key of the plan currently holding resident stacked state (at
        #: most one — hot plans own their clients' authoritative weights,
        #: so two hot plans sharing a client would desynchronise)
        self._hot_key: Optional[Tuple[int, ...]] = None

    def _serial(self, participants) -> List[float]:
        return [client.local_train() for client in participants]

    # ------------------------------------------------------------------
    # Resident rounds (persistent-pool workers)
    # ------------------------------------------------------------------
    def flush_hot(self) -> None:
        """Write any resident stacked state back into its clients."""
        if self._hot_key is not None:
            plan = self._plans.get(self._hot_key)
            if isinstance(plan, _BatchedPlan):
                plan.flush()
            self._hot_key = None

    def try_resident_round(self, participants, states: Dict[int, Dict]
                           ) -> Optional[Tuple[List[float], _BatchedPlan]]:
        """Train a shard on resident stacked state; None = caller fallback.

        ``states`` maps every participant's ``client_id`` to the broadcast
        state it should train from this round.  On the fast path the states
        are written straight into the plan's hot stacked tensors — the
        client objects are neither read nor written, skipping the
        per-round stack/write-back cycle entirely — and the caller reads
        the trained parameters back as views via
        :meth:`_BatchedPlan.client_state`.  Returning ``None`` guarantees
        the clients are coherent again (any overlapping hot plan has been
        flushed), so the caller's classic ``set_weights`` + train path is
        safe.
        """
        key = tuple(client.client_id for client in participants)
        if self._hot_key is not None and self._hot_key != key:
            self.flush_hot()
        if len(participants) < 2 or not all(
                _batchable(client) is None for client in participants) \
                or not _homogeneous(participants):
            self.flush_hot()
            return None
        plan = self._plans.get(key)
        if isinstance(plan, str):
            self.flush_hot()
            return None
        if plan is None:
            if len(self._plans) >= self._MAX_PLANS:
                self.flush_hot()
                self._plans.clear()
            try:
                plan = _plan_family(participants[0])(participants)
            except ValueError as error:
                self._plans[key] = str(error)
                self.flush_hot()
                return None
            self._plans[key] = plan
        plan.ensure_hot()
        self._hot_key = key
        first = states[participants[0].client_id]
        if all(states[client.client_id] is first
               for client in participants[1:]):
            plan.load_shared_state(first)   # uniform broadcast: B× cheaper
        else:
            for index, client in enumerate(participants):
                plan.load_client_state(index, states[client.client_id])
        losses = plan.run_round(keep_hot=True)
        return losses, plan

    def run_local_training(self, participants):
        # Classic rounds read and write the client objects directly, so any
        # resident stacked state must land back in them first.
        self.flush_hot()
        if len(participants) < 2:
            self.last_fallback = "fewer than two participants"
            return self._serial(participants)
        for client in participants:
            reason = _batchable(client)
            if reason is not None:
                self.last_fallback = reason
                return self._serial(participants)
        if not _homogeneous(participants):
            self.last_fallback = "participants are not architecture-homogeneous"
            return self._serial(participants)
        self.last_fallback = None
        key = tuple(client.client_id for client in participants)
        plan = self._plans.get(key)
        if isinstance(plan, str):
            # Construction already failed for this group (e.g. a client
            # without labelled train nodes) — that cannot change within a
            # run, so skip straight to serial training.
            self.last_fallback = plan
            return self._serial(participants)
        if plan is None:
            if len(self._plans) >= self._MAX_PLANS:
                self._plans.clear()
            try:
                plan = _plan_family(participants[0])(participants)
            except ValueError as error:
                self.last_fallback = str(error)
                self._plans[key] = str(error)
                return self._serial(participants)
            self._plans[key] = plan
        return plan.run_round()

    def close(self):
        self.flush_hot()
        self._plans.clear()


register_backend(BatchedBackend.name, BatchedBackend)

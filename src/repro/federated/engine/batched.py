"""Batched execution backend: homogeneous clients as one autograd graph.

Standard federated simulation spends most of its wall-clock on Python-level
overhead: ``B`` clients × ``E`` local epochs each build a full autograd graph
over small matrices.  When every client trains the *same architecture* (the
usual FL convention, and a hard requirement of FedAvg anyway), the per-client
graphs are structurally identical and can be fused:

* features are padded to ``(B, n_max, f)`` and propagated with one
  block-diagonal sparse operator via :func:`~repro.autograd.functional.spmm_batched`;
* per-client parameters are stacked into ``(B, ...)`` tensors, so every layer
  is a single batched matmul instead of ``B`` small ones;
* the per-client Adam moments are stacked too, and one vectorised update
  advances every client (with per-client bias-correction step counts, so
  partial participation stays exact).

Four model families are fused today, dispatched by model type:

* **GCN** (:class:`_BatchedGCNPlan`) — the full per-epoch pipeline:
  block-diagonal propagation, stacked linear layers, per-client dropout
  streams drawn in serial order;
* **SGC** (:class:`_BatchedSGCPlan`) — the ``k`` propagation hops act on
  *constant* features with a *constant* operator, so they are precomputed
  once per plan and every local epoch collapses to one stacked linear layer;
* **GAMLP** (:class:`_BatchedGAMLPPlan`) — decoupled-hop family: the
  constant hop stack ``[x, P̃x, …, P̃ᵏx]`` is precomputed once, every epoch
  is a softmax hop-gate combination plus one stacked MLP;
* **GPR-GNN** (:class:`_BatchedGPRGNNPlan`) — stacked MLP transform followed
  by ``k`` fused differentiable hops combined with per-client GPR weights
  (the hops act on *learned* features, so only the operator is hoisted).

Numerical behaviour mirrors serial execution: dropout masks are drawn from
each client's own RNG stream in serial order, gradients are clipped per
client with the same global-norm rule, and losses are the per-client
cross-entropy means.  Clients the backend cannot batch (unsupported models,
``extra_loss`` hooks, heterogeneous shapes) transparently fall back to serial
training; the most recent reason is kept in :attr:`BatchedBackend.last_fallback`.

The module also hosts the **fused evaluation plans**
(:func:`build_eval_plan`): no-grad forward passes over the same padded-batch
constants that fill every client's prediction cache in one sweep, mirroring
the serial evaluation expression by expression (sparse propagation is fused —
block rows are independent — while dense GEMMs run per-client slices, because
padded batched matmuls are not bit-stable against the per-client call).  The
pipelined round loop uses them after uniform *and* personalized broadcasts:
per-client states are grouped by identity, so FED-PUB / GCFL+ per-cluster
broadcasts evaluate through one fused sweep instead of per-client forwards.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd import (
    Tensor,
    functional as F,
    no_grad,
    resolve_backend,
    use_backend,
)
from repro.autograd.backend import cached_transpose
from repro.federated.engine.backends import (
    ExecutionBackend,
    register_backend,
)
from repro.models.base import prepare_propagation
from repro.models.gamlp import GAMLP
from repro.models.gcn import GCN, SGC
from repro.models.gprgnn import GPRGNN
from repro.optim import Adam

StateDict = Dict[str, np.ndarray]

logger = logging.getLogger(__name__)

#: model families already warned about missing a fused eval plan (one
#: warning per family per process, not one per evaluation tick).
_WARNED_EVAL_FAMILIES: Set[str] = set()

#: parameter stacking roles: how one client's array lives in the (B, ...)
#: stack.  "matrix" → stacked as-is and used in batched matmuls;
#: "bias" → stacked as (B, 1, h) so row broadcasting matches the serial
#: ``x @ W + b``; "vector" → stacked as (B, d) (hop gates / GPR weights).
MATRIX, BIAS, VECTOR = "matrix", "bias", "vector"


def _padded_batch(clients: Sequence
                  ) -> Tuple[List[int], int, np.ndarray, sp.csr_matrix]:
    """Shared padded-batch constants: features block + block-diag operator.

    Returns ``(sizes, n_max, features, propagation)`` — the ``(B, n_max, f)``
    zero-padded feature block and the ``(B·n_max, B·n_max)`` block-diagonal
    normalized adjacency whose ``i``-th block acts on client ``i``.  Training
    plans and eval plans build from this one helper so their constants can
    never diverge.
    """
    sizes = [client.graph.num_nodes for client in clients]
    n_max = max(sizes)
    batch = len(clients)
    features = np.zeros((batch, n_max, clients[0].graph.num_features))
    rows, cols, vals = [], [], []
    for index, client in enumerate(clients):
        n = client.graph.num_nodes
        features[index, :n] = client.graph.features
        prop = prepare_propagation(client.graph.adjacency).tocoo()
        offset = index * n_max
        rows.append(prop.row + offset)
        cols.append(prop.col + offset)
        vals.append(prop.data)
    total = batch * n_max
    propagation = sp.csr_matrix(
        (np.concatenate(vals),
         (np.concatenate(rows), np.concatenate(cols))),
        shape=(total, total))
    return sizes, n_max, features, propagation


def _softmax_rows(values: np.ndarray) -> np.ndarray:
    """Row-wise stable softmax — ``F.softmax``'s expression on plain numpy.

    Every fused-eval consumer must use this one helper: the bitwise-parity
    guarantee depends on the expression matching the tensor op exactly.
    """
    shifted = values - values.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def group_states_by_identity(states: Sequence[StateDict]
                             ) -> List[Tuple[StateDict, List[int]]]:
    """Group positions sharing the *same* state-dict object.

    Personalized broadcasts hand every member of a cluster the identical
    dict (plain FedAvg hands everyone one dict), so grouping by ``id`` finds
    the broadcast groups without comparing array contents.
    """
    groups: Dict[int, Tuple[StateDict, List[int]]] = {}
    for index, state in enumerate(states):
        entry = groups.get(id(state))
        if entry is None:
            groups[id(state)] = (state, [index])
        else:
            entry[1].append(index)
    return list(groups.values())


class _BatchedPlan:
    """Constant per-group data shared by every batched model family.

    Owns the padded feature block, the block-diagonal propagation operator,
    the flat supervision indices that fuse every client's cross-entropy into
    one autograd path, and the stacked-Adam machinery.  Subclasses declare
    :meth:`_parameter_specs` — ``(name, role)`` pairs in optimizer order —
    and implement :meth:`_forward` over the flat stacked-parameter list.
    """

    def __init__(self, clients: Sequence):
        self.clients = list(clients)
        # Plans inherit the array backend of the clients they fuse, so the
        # batched path selects backends exactly like the serial one.
        self.array_backend = getattr(clients[0], "array_backend", None)
        self.sizes, self.n_max, features, self.propagation = \
            _padded_batch(clients)
        batch = len(clients)
        self.labels: List[np.ndarray] = []
        self.train_idx: List[np.ndarray] = []
        for index, client in enumerate(clients):
            padded_labels = np.zeros(self.n_max, dtype=np.int64)
            padded_labels[:client.graph.num_nodes] = client.graph.labels
            self.labels.append(padded_labels)
            self.train_idx.append(np.nonzero(client.graph.train_mask)[0])
        self.features = Tensor(features, backend=self.array_backend)
        # Flat supervision indices so the whole group's loss is one fused
        # autograd path: pick every (client, train-row, label) log-probability
        # at once and weight each entry by the client's 1/|train| (the exact
        # reciprocal the serial per-client ``mean()`` multiplies by, so
        # gradients match serial training bit for bit).
        counts = [idx.size for idx in self.train_idx]
        if any(count == 0 for count in counts):
            raise ValueError("batched training requires labelled train nodes "
                             "on every client")
        self.flat_batch = np.concatenate(
            [np.full(count, i) for i, count in enumerate(counts)])
        self.flat_rows = np.concatenate(self.train_idx)
        self.flat_labels = np.concatenate(
            [self.labels[i][idx] for i, idx in enumerate(self.train_idx)])
        self.flat_weights = Tensor(
            np.concatenate([np.full(count, 1.0 / count) for count in counts]),
            backend=self.array_backend)
        self.segments = np.concatenate([[0], np.cumsum(counts)])
        # Stable references into every client's parameters and graph-constant
        # metadata; re-read each round, but resolved only once.
        self._client_params = [dict(c.model.named_parameters())
                               for c in clients]
        #: (parameter name, stacking role) in optimizer order, e.g.
        #: [("hop_logits", VECTOR), ("classifier.lin0.weight", MATRIX), ...].
        self.param_specs: List[Tuple[str, str]] = self._parameter_specs()

    # -- family hooks --------------------------------------------------
    def _parameter_specs(self) -> List[Tuple[str, str]]:
        raise NotImplementedError

    def _forward(self, params: List[Tensor]) -> Tensor:
        raise NotImplementedError

    @staticmethod
    def signature(model) -> Tuple:
        """Family-specific fuse-compatibility key (k, dropout rate, ...)."""
        return ()

    # ------------------------------------------------------------------
    def _stack_states(self):
        """Stacked parameter tensors plus stacked Adam state, read from clients.

        Everything is ordered like ``Adam.parameters`` so moment arrays stay
        aligned with the stacked parameter tensors.
        """
        per_client = self._client_params
        params = []
        for name, role in self.param_specs:
            stack = np.stack([p[name].data for p in per_client])
            if role == BIAS:  # (B, h) → (B, 1, h) for row broadcasting
                stack = stack[:, None, :]
            params.append(Tensor(stack, requires_grad=True,
                                 backend=self.array_backend))
        moments_m, moments_v = [], []
        for j, (name, role) in enumerate(self.param_specs):
            m = np.stack([c.optimizer._m[j] for c in self.clients])
            v = np.stack([c.optimizer._v[j] for c in self.clients])
            if role == BIAS:  # bias moments align with the (B, 1, h) tensors
                m, v = m[:, None, :], v[:, None, :]
            moments_m.append(m)
            moments_v.append(v)
        steps = np.array([c.optimizer._step_count for c in self.clients],
                         dtype=np.float64)
        return params, moments_m, moments_v, steps

    # ------------------------------------------------------------------
    # Resident ("hot") mode: a persistent-pool worker trains the same shard
    # every round, so the stacked tensors and Adam state can live on the
    # plan between rounds instead of round-tripping through every client's
    # model and optimizer (B × set_weights + np.stack up, B × write_back
    # down — the dominant non-epoch cost of small-client shards).  While a
    # plan is hot its clients' own weights/moments are stale; ``flush``
    # must run before anything else reads them (state fetch, eviction,
    # serial fallback, a different plan over the same clients).
    # ------------------------------------------------------------------
    hot: Optional[Tuple] = None

    def ensure_hot(self) -> None:
        """Stack the clients' current weights/moments into resident tensors.

        First hot round only; afterwards the stacked state is authoritative
        and the caller overwrites the parameter slices with each broadcast
        via :meth:`load_client_state` / :meth:`load_group_state`.
        """
        if self.hot is None:
            self.hot = self._stack_states()

    def load_client_state(self, index: int, state: StateDict) -> None:
        """Write one client's parameter dict into the hot stacked tensors."""
        params = self.hot[0]
        for param, (name, role) in zip(params, self.param_specs):
            if role == BIAS:
                param.data[index, 0] = state[name]
            else:
                param.data[index] = state[name]

    def load_group_state(self, indices: Sequence[int],
                         state: StateDict) -> None:
        """Broadcast one dict to a *group* of stack slices in one write each.

        The group-wise personalized-broadcast fast path: per-cluster states
        (GCFL+, FED-PUB groups) land with one vectorised fancy-index assign
        per parameter instead of one write per (client, parameter).
        """
        indices = np.asarray(indices)
        params = self.hot[0]
        for param, (name, role) in zip(params, self.param_specs):
            if role == BIAS:
                param.data[indices, 0] = state[name]
            else:
                param.data[indices] = state[name]

    def load_shared_state(self, state: StateDict) -> None:
        """Broadcast one parameter dict to every client's stack slice.

        The uniform-broadcast fast path: one numpy assign per parameter
        instead of one per (client, parameter).
        """
        params = self.hot[0]
        for param, (name, role) in zip(params, self.param_specs):
            if role == BIAS:
                param.data[:, 0] = state[name]
            else:
                param.data[:] = state[name]

    def client_state(self, index: int) -> StateDict:
        """One client's trained parameters as views into the hot stack."""
        params = self.hot[0]
        state = {}
        for param, (name, role) in zip(params, self.param_specs):
            state[name] = param.data[index, 0] if role == BIAS \
                else param.data[index]
        return state

    def stacked_params(self) -> StateDict:
        """The hot ``(B, ...)`` parameter stacks, keyed by parameter name."""
        params = self.hot[0]
        stacks = {}
        for param, (name, role) in zip(params, self.param_specs):
            stacks[name] = param.data[:, 0] if role == BIAS else param.data
        return stacks

    def flush(self) -> None:
        """Write the hot stacked state back into the clients and go cold."""
        if self.hot is not None:
            self._write_back(*self.hot)
            self.hot = None

    # ------------------------------------------------------------------
    def run_round(self, max_grad_norm: float = 5.0,
                  keep_hot: bool = False) -> List[float]:
        """All participants' local epochs as one batched graph per epoch."""
        for client in self.clients:
            client.model.train()
        if self.hot is not None:
            stacked, moments_m, moments_v, steps = self.hot
        else:
            stacked, moments_m, moments_v, steps = self._stack_states()
        optimizer = self.clients[0].optimizer
        lr, wd = optimizer.lr, optimizer.weight_decay
        beta1, beta2, eps = optimizer.beta1, optimizer.beta2, optimizer.eps
        epochs = self.clients[0].local_epochs
        batch = len(self.clients)
        losses: List[List[float]] = [[] for _ in self.clients]

        def per_client(values: np.ndarray, ndim: int) -> np.ndarray:
            # Broadcast a (B,) vector over a stacked tensor of any rank.
            return values.reshape((batch,) + (1,) * (ndim - 1))

        with use_backend(self.array_backend):
            self._run_epochs(epochs, batch, stacked, moments_m, moments_v,
                             steps, losses, per_client, max_grad_norm,
                             lr, wd, beta1, beta2, eps)

        if keep_hot:
            self.hot = (stacked, moments_m, moments_v, steps)
        else:
            self._write_back(stacked, moments_m, moments_v, steps)
            self.hot = None
        return [float(np.mean(per_round)) for per_round in losses]

    def _run_epochs(self, epochs, batch, stacked, moments_m, moments_v,
                    steps, losses, per_client, max_grad_norm,
                    lr, wd, beta1, beta2, eps) -> None:
        """The fused epoch loop (runs under the plan's array backend)."""
        for _ in range(epochs):
            for param in stacked:
                param.grad = None
            logits = self._forward(stacked)
            log_probs = F.log_softmax(logits, axis=-1)
            picked = log_probs[self.flat_batch, self.flat_rows,
                               self.flat_labels]
            total = -(picked * self.flat_weights).sum()
            for index in range(batch):
                start, stop = self.segments[index], self.segments[index + 1]
                segment = picked.data[start:stop]
                # Same float expression as the serial ``-picked.mean()``.
                losses[index].append(
                    float(-(segment.sum() * (1.0 / segment.size))))
            total.backward()

            # Per-client global-norm clipping (same rule as clip_grad_norm).
            square_sums = np.zeros(batch)
            for param in stacked:
                square_sums += (param.grad.reshape(batch, -1) ** 2).sum(axis=1)
            norms = np.sqrt(square_sums)
            scale = np.where(norms > max_grad_norm,
                             max_grad_norm / (norms + 1e-12), 1.0)
            if np.any(scale != 1.0):
                for param in stacked:
                    param.grad = param.grad * per_client(scale, param.ndim)

            # Vectorised Adam with per-client bias-correction step counts.
            # The corrections use Python scalar pow: numpy's vectorised
            # ``beta ** steps`` takes a SIMD code path whose rounding differs
            # from ``beta ** int_step`` by one ulp at some exponents (e.g.
            # 0.999**7), which would break bitwise parity with the serial
            # optimizer.
            steps += 1.0
            bias1 = np.array([1.0 - beta1 ** int(s) for s in steps])
            bias2 = np.array([1.0 - beta2 ** int(s) for s in steps])
            for param, m, v in zip(stacked, moments_m, moments_v):
                grad = param.grad
                if wd:
                    grad = grad + wd * param.data
                m *= beta1
                m += (1.0 - beta1) * grad
                v *= beta2
                v += (1.0 - beta2) * grad * grad
                b1 = per_client(bias1, param.ndim)
                b2 = per_client(bias2, param.ndim)
                param.data = param.data - lr * (m / b1) / (
                    np.sqrt(v / b2) + eps)

    def _write_back(self, stacked, moments_m, moments_v, steps):
        """Unstack the trained state into each client's model and optimizer."""
        for index, client in enumerate(self.clients):
            state = {}
            for param, (name, role) in zip(stacked, self.param_specs):
                state[name] = param.data[index, 0] if role == BIAS \
                    else param.data[index]
            client.set_weights(state)
            opt = client.optimizer
            opt._step_count = int(steps[index])
            for j, (m, v) in enumerate(zip(moments_m, moments_v)):
                target_shape = opt._m[j].shape
                opt._m[j] = m[index].reshape(target_shape).copy()
                opt._v[j] = v[index].reshape(target_shape).copy()

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------
    def _constant_hops(self, k: int, keep_all: bool) -> List[Tensor]:
        """``[P̃X, …, P̃ᵏX]`` (or just ``P̃ᵏX``) as constant stacked blocks.

        One fused ``spmm_batched`` per hop over the block-diagonal operator;
        block rows are independent, so every client's hops are bitwise the
        per-client ``F.spmm`` chain the serial forward computes.
        """
        blocks: List[Tensor] = []
        with no_grad():
            current = self.features
            for _ in range(k):
                current = F.spmm_batched(self.propagation, current)
                if keep_all:
                    blocks.append(Tensor(current.data,
                                         backend=self.array_backend))
        if not keep_all:
            blocks.append(Tensor(current.data, backend=self.array_backend))
        return blocks

    def _dropout_mask(self, width: int) -> np.ndarray:
        """One inverted-dropout mask per client, drawn from its own stream."""
        p = self.dropout_p
        mask = np.zeros((len(self.clients), self.n_max, width))
        for index, client in enumerate(self.clients):
            n = self.sizes[index]
            draw = self._dropout_rng(client).random((n, width))
            mask[index, :n] = (draw >= p) / (1.0 - p)
        return mask

    def _dropout_rng(self, client):
        """The RNG stream the serial forward would draw this mask from."""
        raise NotImplementedError

    def _stacked_mlp(self, x: Tensor, params: List[Tensor],
                     layer_count: int) -> Tensor:
        """The serial :class:`~repro.nn.MLP` forward over stacked operands.

        ``params`` holds ``layer_count`` alternating (weight, bias) stacks;
        hidden activations get the serial relu + per-client dropout masks.
        """
        last = layer_count - 1
        for layer in range(layer_count):
            x = x.matmul(params[2 * layer]) + params[2 * layer + 1]
            if layer != last:
                x = x.relu()
                if self.dropout_p > 0.0:
                    x = x * Tensor(self._dropout_mask(x.shape[-1]),
                                   backend=self.array_backend)
        return x


class _BatchedGCNPlan(_BatchedPlan):
    """GCN family: propagate + stacked linear + relu/dropout per layer."""

    def __init__(self, clients: Sequence):
        model = clients[0].model
        self.layer_names = list(model._layer_names)
        self.dropout_p = model.dropout.p
        super().__init__(clients)
        # The GCN forward back-propagates through spmm_batched; constant-hop
        # families never need the transposed operator.  The shared dispatch
        # cache makes this the same object every spmm backward would reuse.
        self.propagation_t = cached_transpose(self.propagation)

    @staticmethod
    def signature(model) -> Tuple:
        return (model.dropout.p,)

    def _parameter_specs(self):
        specs = []
        for name in self.layer_names:
            specs.append((f"{name}.weight", MATRIX))
            specs.append((f"{name}.bias", BIAS))
        return specs

    def _dropout_rng(self, client):
        return client.model.dropout._rng

    def _forward(self, params: List[Tensor]) -> Tensor:
        hidden = self.features
        last = len(self.layer_names) - 1
        for layer in range(len(self.layer_names)):
            hidden = F.spmm_batched(self.propagation, hidden,
                                    adjacency_t=self.propagation_t)
            hidden = hidden.matmul(params[2 * layer]) + params[2 * layer + 1]
            if layer != last:
                hidden = hidden.relu()
                if self.dropout_p > 0.0:
                    hidden = hidden * Tensor(
                        self._dropout_mask(hidden.shape[-1]),
                        backend=self.array_backend)
        return hidden


class _BatchedSGCPlan(_BatchedPlan):
    """SGC: constant k-hop block + one stacked linear.

    SGC's forward is ``linear(P^k X)`` where both ``P`` and ``X`` are fixed
    for the whole run, so the ``k`` sparse hops are hoisted out of the epoch
    loop entirely and every local epoch is a single ``(B, n, f) @ (B, f, c)``
    matmul plus bias.
    """

    def __init__(self, clients: Sequence):
        self.k = clients[0].model.k
        super().__init__(clients)
        self.propagated = self._constant_hops(self.k, keep_all=False)[0]

    @staticmethod
    def signature(model) -> Tuple:
        return (model.k,)

    def _parameter_specs(self):
        return [("linear.weight", MATRIX), ("linear.bias", BIAS)]

    def _forward(self, params: List[Tensor]) -> Tensor:
        return self.propagated.matmul(params[0]) + params[1]


class _BatchedGAMLPPlan(_BatchedPlan):
    """GAMLP decoupled-hop plan: constant hop stack + gates + stacked MLP.

    The ``k`` parameter-free propagation hops act on constant features, so
    the whole hop stack ``[x, P̃x, …, P̃ᵏx]`` is precomputed once at plan
    build; every local epoch is a softmax over the stacked hop logits, a
    gated accumulation of the constant blocks (gradients flow only into the
    gates) and one stacked MLP — no sparse work at all in the epoch loop.
    """

    def __init__(self, clients: Sequence):
        model = clients[0].model
        self.k = model.k
        self.layer_names = list(model.classifier._layer_names)
        self.dropout_p = model.classifier.dropout.p
        super().__init__(clients)
        self.hops = [self.features] + self._constant_hops(self.k,
                                                          keep_all=True)

    @staticmethod
    def signature(model) -> Tuple:
        return (model.k, model.classifier.dropout.p)

    def _parameter_specs(self):
        specs = [("hop_logits", VECTOR)]
        for name in self.layer_names:
            specs.append((f"classifier.{name}.weight", MATRIX))
            specs.append((f"classifier.{name}.bias", BIAS))
        return specs

    def _dropout_rng(self, client):
        return client.model.classifier.dropout._rng

    def _forward(self, params: List[Tensor]) -> Tensor:
        batch = len(self.clients)
        # Row-wise softmax over (B, k+1) — each row is the serial
        # ``softmax(hop_logits.reshape(1, -1))`` expression bit for bit.
        gates = F.softmax(params[0], axis=-1)
        combined = None
        for index, hop in enumerate(self.hops):
            weighted = hop * gates[:, index].reshape(batch, 1, 1)
            combined = weighted if combined is None else combined + weighted
        return self._stacked_mlp(combined, params[1:], len(self.layer_names))


class _BatchedGPRGNNPlan(_BatchedPlan):
    """GPR-GNN decoupled plan: stacked MLP + fused hops + GPR combination.

    Unlike GAMLP, the hop chain acts on the *learned* transform ``H =
    MLP(X)``, so the hops cannot be hoisted out of the epoch loop — but they
    still fuse: one differentiable ``spmm_batched`` per hop propagates every
    client's block at once, and the generalized-PageRank accumulation runs
    on per-client γ slices of the stacked weight vector.
    """

    def __init__(self, clients: Sequence):
        model = clients[0].model
        self.k = model.k
        self.layer_names = list(model.transform._layer_names)
        self.dropout_p = model.transform.dropout.p
        super().__init__(clients)
        self.propagation_t = cached_transpose(self.propagation)

    @staticmethod
    def signature(model) -> Tuple:
        return (model.k, model.transform.dropout.p)

    def _parameter_specs(self):
        specs = [("gamma", VECTOR)]
        for name in self.layer_names:
            specs.append((f"transform.{name}.weight", MATRIX))
            specs.append((f"transform.{name}.bias", BIAS))
        return specs

    def _dropout_rng(self, client):
        return client.model.transform.dropout._rng

    def _forward(self, params: List[Tensor]) -> Tensor:
        batch = len(self.clients)
        gamma = params[0]
        hidden = self._stacked_mlp(self.features, params[1:],
                                   len(self.layer_names))
        out = hidden * gamma[:, 0].reshape(batch, 1, 1)
        current = hidden
        for step in range(1, self.k + 1):
            current = F.spmm_batched(self.propagation, current,
                                     adjacency_t=self.propagation_t)
            out = out + current * gamma[:, step].reshape(batch, 1, 1)
        return out


#: model type → batched plan family (extension point for new families).
PLAN_FAMILIES: List[Tuple[type, Type[_BatchedPlan]]] = [
    (GCN, _BatchedGCNPlan),
    (SGC, _BatchedSGCPlan),
    (GAMLP, _BatchedGAMLPPlan),
    (GPRGNN, _BatchedGPRGNNPlan),
]


def _plan_family(client) -> Optional[Type[_BatchedPlan]]:
    for model_type, plan_cls in PLAN_FAMILIES:
        if type(client.model) is model_type:
            return plan_cls
    return None


def _batchable(client) -> Optional[str]:
    """Return None if the client can join a batched group, else the reason."""
    if client.extra_loss is not None:
        return "client has a method-specific extra_loss hook"
    if _plan_family(client) is None:
        return (f"model {type(client.model).__name__} has no batched plan "
                f"family")
    if not isinstance(client.optimizer, Adam):
        return f"optimizer {type(client.optimizer).__name__} is not Adam"
    return None


def _homogeneous(clients: Sequence) -> bool:
    """All clients share layer shapes, family knobs and optimizer settings."""
    reference = clients[0]
    family = _plan_family(reference)
    ref_shapes = {name: p.shape
                  for name, p in reference.model.named_parameters()}
    ref_signature = family.signature(reference.model)
    ref_opt = reference.optimizer
    for client in clients[1:]:
        if _plan_family(client) is not family:
            return False
        shapes = {name: p.shape for name, p in client.model.named_parameters()}
        if shapes != ref_shapes:
            return False
        if family.signature(client.model) != ref_signature:
            return False
        opt = client.optimizer
        if (opt.lr, opt.weight_decay, opt.beta1, opt.beta2, opt.eps) != \
                (ref_opt.lr, ref_opt.weight_decay, ref_opt.beta1,
                 ref_opt.beta2, ref_opt.eps):
            return False
        if client.local_epochs != reference.local_epochs:
            return False
    return True


# ----------------------------------------------------------------------
# Fused evaluation plans
# ----------------------------------------------------------------------
class _FusedEvalPlan:
    """One fused no-grad forward filling every client's prediction cache.

    The padded feature block and the block-diagonal normalized adjacency are
    constants built once per run; :meth:`refresh` computes every client's
    class probabilities with the exact tensor expressions the per-client
    eval forward uses — probabilities, and therefore every recorded
    accuracy, are bitwise-identical to serial evaluation.  The sparse
    propagation is fused (block rows are independent) while the dense
    linear layers run one GEMM per client on its ``[:n]`` slice: a single
    padded batched matmul is *not* bit-stable against the per-client call
    because BLAS kernel blocking depends on the row count.

    ``refresh`` takes one state dict per client (in client order), so
    uniform FedAvg broadcasts and personalized per-cluster broadcasts ride
    the same sweep; subclasses may exploit identical-state groups via
    :func:`group_states_by_identity`.
    """

    def __init__(self, clients):
        self.clients = list(clients)
        self._backend = resolve_backend(
            getattr(clients[0], "array_backend", None))
        self.sizes, self.n_max, self.features, self.propagation = \
            _padded_batch(clients)
        self._propagation_csr = self._backend.prepare_sparse(self.propagation)

    @staticmethod
    def signature(model) -> Tuple:
        """Eval-relevant fuse key (dropout is inert in eval mode)."""
        return ()

    # ------------------------------------------------------------------
    def _spmm(self, block: np.ndarray) -> np.ndarray:
        """One fused block-diagonal product over a stacked ``(B, n, f)``."""
        batch, n_max, width = block.shape
        flat = block.reshape(batch * n_max, width)
        return self._backend.spmm(self._propagation_csr,
                                  flat).reshape(batch, n_max, width)

    def _constant_blocks(self, k: int, keep_all: bool) -> List[np.ndarray]:
        """``[P̃X, …, P̃ᵏX]`` (or just ``P̃ᵏX``) — eval twin of the training
        plans' :meth:`_BatchedPlan._constant_hops`, same hop expressions."""
        blocks: List[np.ndarray] = []
        current = self.features
        for _ in range(k):
            current = self._spmm(current)
            if keep_all:
                blocks.append(current)
        if not keep_all:
            blocks.append(current)
        return blocks

    def _sliced_linear(self, block: np.ndarray, weights: List[np.ndarray],
                       biases: List[np.ndarray]) -> np.ndarray:
        """``x @ W_i + b_i`` per client slice (bit-stable vs serial GEMMs)."""
        out = np.zeros((len(self.clients), self.n_max, weights[0].shape[1]))
        for index, n in enumerate(self.sizes):
            out[index, :n] = block[index, :n] @ weights[index] + biases[index]
        return out

    def _logits(self, states: Sequence[StateDict]) -> np.ndarray:
        raise NotImplementedError

    def refresh(self, states: Sequence[StateDict]) -> None:
        """Fill every client's probability cache from its broadcast state."""
        # Padded rows get softmaxed too but are sliced away below.
        probs = _softmax_rows(self._logits(states))
        for index, client in enumerate(self.clients):
            client._prob_cache = (client._weights_version,
                                  probs[index, :self.sizes[index]])

    def _mlp_logits(self, block: np.ndarray, states: Sequence[StateDict],
                    layer_names: Sequence[str], prefix: str = "") -> np.ndarray:
        """The serial eval-mode MLP (relu between layers, dropout inert)."""
        hidden = block
        last = len(layer_names) - 1
        for layer, name in enumerate(layer_names):
            hidden = self._sliced_linear(
                hidden,
                [state[f"{prefix}{name}.weight"] for state in states],
                [state[f"{prefix}{name}.bias"] for state in states])
            if layer != last:
                hidden = hidden * (hidden > 0)   # F.relu's expression
        return hidden


class _GCNEvalPlan(_FusedEvalPlan):
    """GCN eval: fused propagation + per-client GEMM slices per layer."""

    def __init__(self, clients):
        super().__init__(clients)
        self.layer_names = list(clients[0].model._layer_names)

    def _logits(self, states):
        hidden = self.features
        last = len(self.layer_names) - 1
        for layer, name in enumerate(self.layer_names):
            hidden = self._sliced_linear(
                self._spmm(hidden),
                [state[f"{name}.weight"] for state in states],
                [state[f"{name}.bias"] for state in states])
            if layer != last:
                hidden = hidden * (hidden > 0)
        return hidden


class _SGCEvalPlan(_FusedEvalPlan):
    """SGC eval: the constant k-hop block + one per-client linear slice."""

    def __init__(self, clients):
        super().__init__(clients)
        self.k = clients[0].model.k
        self.propagated = self._constant_blocks(self.k, keep_all=False)[0]

    @staticmethod
    def signature(model):
        return (model.k,)

    def _logits(self, states):
        return self._sliced_linear(
            self.propagated,
            [state["linear.weight"] for state in states],
            [state["linear.bias"] for state in states])


class _GAMLPEvalPlan(_FusedEvalPlan):
    """GAMLP eval: constant hop stack, per-client gates, MLP slices."""

    def __init__(self, clients):
        super().__init__(clients)
        model = clients[0].model
        self.k = model.k
        self.layer_names = list(model.classifier._layer_names)
        self.hops = [self.features] + self._constant_blocks(self.k,
                                                            keep_all=True)

    @staticmethod
    def signature(model):
        return (model.k,)

    def _logits(self, states):
        # Row-wise softmax — each row matches the serial hop-gate softmax.
        gates = _softmax_rows(
            np.stack([state["hop_logits"] for state in states]))
        combined = None
        for index, hop in enumerate(self.hops):
            weighted = hop * gates[:, index][:, None, None]
            combined = weighted if combined is None else combined + weighted
        return self._mlp_logits(combined, states, self.layer_names,
                                prefix="classifier.")


class _GPRGNNEvalPlan(_FusedEvalPlan):
    """GPR-GNN eval: MLP slices, fused hops, per-client γ combination."""

    def __init__(self, clients):
        super().__init__(clients)
        model = clients[0].model
        self.k = model.k
        self.layer_names = list(model.transform._layer_names)

    @staticmethod
    def signature(model):
        return (model.k,)

    def _logits(self, states):
        hidden = self._mlp_logits(self.features, states, self.layer_names,
                                  prefix="transform.")
        gamma = np.stack([state["gamma"] for state in states])
        out = hidden * gamma[:, 0][:, None, None]
        current = hidden
        for step in range(1, self.k + 1):
            current = self._spmm(current)
            out = out + current * gamma[:, step][:, None, None]
        return out


#: model type → fused eval-plan family.
EVAL_FAMILIES: List[Tuple[type, Type[_FusedEvalPlan]]] = [
    (GCN, _GCNEvalPlan),
    (SGC, _SGCEvalPlan),
    (GAMLP, _GAMLPEvalPlan),
    (GPRGNN, _GPRGNNEvalPlan),
]


def build_eval_plan(clients) -> Optional[_FusedEvalPlan]:
    """Fused evaluation plan for a homogeneous client set (or ``None``).

    Unlike training fusion this needs neither a common optimizer nor the
    absence of ``extra_loss`` hooks — evaluation is a pure forward — only a
    shared model family with identical parameter shapes and propagation
    depth.  Callers fall back to per-client evaluation on ``None``.
    """
    if len(clients) < 2:
        return None
    reference = clients[0]
    plan_cls = None
    for model_type, candidate in EVAL_FAMILIES:
        if type(reference.model) is model_type:
            plan_cls = candidate
            break
    if plan_cls is None:
        family = type(reference.model).__name__
        if family not in _WARNED_EVAL_FAMILIES:
            _WARNED_EVAL_FAMILIES.add(family)
            logger.warning(
                "no fused eval plan for model family %s: evaluation and "
                "serving fall back to one serial forward per client "
                "(fused families: %s)", family,
                ", ".join(model.__name__ for model, _ in EVAL_FAMILIES))
        return None
    shapes = {name: p.shape
              for name, p in reference.model.named_parameters()}
    signature = plan_cls.signature(reference.model)
    for client in clients[1:]:
        if type(client.model) is not type(reference.model):
            return None
        if {name: p.shape
                for name, p in client.model.named_parameters()} != shapes:
            return None
        if plan_cls.signature(client.model) != signature:
            return None
    try:
        return plan_cls(clients)
    except Exception:   # unexpected graph/feature shapes: fall back
        return None


class BatchedBackend(ExecutionBackend):
    """Vectorises homogeneous-architecture clients into one batched graph."""

    name = "batched"

    #: bounded cache of plans keyed by the participant-id tuple
    _MAX_PLANS = 8

    def __init__(self, num_workers: Optional[int] = None, **_unused):
        del num_workers  # signature parity with the other backends
        #: participant-id tuple → built plan, or the construction-failure
        #: reason (a str) so a doomed group is not rebuilt every round
        self._plans: Dict[Tuple[int, ...], Union[_BatchedPlan, str]] = {}
        self.last_fallback: Optional[str] = None
        #: key of the plan currently holding resident stacked state (at
        #: most one — hot plans own their clients' authoritative weights,
        #: so two hot plans sharing a client would desynchronise)
        self._hot_key: Optional[Tuple[int, ...]] = None

    def _serial(self, participants) -> List[float]:
        return [client.local_train() for client in participants]

    # ------------------------------------------------------------------
    # Resident rounds (persistent-pool workers)
    # ------------------------------------------------------------------
    def flush_hot(self) -> None:
        """Write any resident stacked state back into its clients."""
        if self._hot_key is not None:
            plan = self._plans.get(self._hot_key)
            if isinstance(plan, _BatchedPlan):
                plan.flush()
            self._hot_key = None

    def try_resident_round(self, participants, states: Dict[int, Dict]
                           ) -> Optional[Tuple[List[float], _BatchedPlan]]:
        """Train a shard on resident stacked state; None = caller fallback.

        ``states`` maps every participant's ``client_id`` to the broadcast
        state it should train from this round.  On the fast path the states
        are written straight into the plan's hot stacked tensors — the
        client objects are neither read nor written, skipping the
        per-round stack/write-back cycle entirely — and the caller reads
        the trained parameters back as views via
        :meth:`_BatchedPlan.client_state`.  Broadcast states are grouped by
        object identity, so a uniform FedAvg broadcast is one vectorised
        write per parameter and per-cluster personalized broadcasts
        (GCFL+/FED-PUB groups) take one write per group.  Returning
        ``None`` guarantees the clients are coherent again (any overlapping
        hot plan has been flushed), so the caller's classic ``set_weights``
        + train path is safe.
        """
        key = tuple(client.client_id for client in participants)
        if self._hot_key is not None and self._hot_key != key:
            self.flush_hot()
        if len(participants) < 2 or not all(
                _batchable(client) is None for client in participants) \
                or not _homogeneous(participants):
            self.flush_hot()
            return None
        plan = self._plans.get(key)
        if isinstance(plan, str):
            self.flush_hot()
            return None
        if plan is None:
            if len(self._plans) >= self._MAX_PLANS:
                self.flush_hot()
                self._plans.clear()
            try:
                plan = _plan_family(participants[0])(participants)
            except ValueError as error:
                self._plans[key] = str(error)
                self.flush_hot()
                return None
            self._plans[key] = plan
        plan.ensure_hot()
        self._hot_key = key
        groups = group_states_by_identity(
            [states[client.client_id] for client in participants])
        if len(groups) == 1:
            plan.load_shared_state(groups[0][0])  # uniform: B× cheaper
        else:
            for state, indices in groups:
                if len(indices) == 1:
                    plan.load_client_state(indices[0], state)
                else:
                    plan.load_group_state(indices, state)
        losses = plan.run_round(keep_hot=True)
        return losses, plan

    def run_local_training(self, participants):
        # Classic rounds read and write the client objects directly, so any
        # resident stacked state must land back in them first.
        self.flush_hot()
        if len(participants) < 2:
            self.last_fallback = "fewer than two participants"
            return self._serial(participants)
        for client in participants:
            reason = _batchable(client)
            if reason is not None:
                self.last_fallback = reason
                return self._serial(participants)
        if not _homogeneous(participants):
            self.last_fallback = "participants are not architecture-homogeneous"
            return self._serial(participants)
        self.last_fallback = None
        key = tuple(client.client_id for client in participants)
        plan = self._plans.get(key)
        if isinstance(plan, str):
            # Construction already failed for this group (e.g. a client
            # without labelled train nodes) — that cannot change within a
            # run, so skip straight to serial training.
            self.last_fallback = plan
            return self._serial(participants)
        if plan is None:
            if len(self._plans) >= self._MAX_PLANS:
                self._plans.clear()
            try:
                plan = _plan_family(participants[0])(participants)
            except ValueError as error:
                self.last_fallback = str(error)
                self._plans[key] = str(error)
                return self._serial(participants)
            self._plans[key] = plan
        return plan.run_round()

    def close(self):
        self.flush_hot()
        self._plans.clear()


register_backend(BatchedBackend.name, BatchedBackend)

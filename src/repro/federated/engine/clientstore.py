"""Memory-mapped lazy client store: federation state that never loads at once.

Simulating ~10^5 federated clients breaks the resident-``Client`` model long
before compute does: holding every subgraph (features, CSR propagation
blocks, labels, masks) plus every optimizer's moments in coordinator memory
is O(total nodes) RSS, and pickling whole clients to workers is O(total
nodes) IPC.  This module keeps the *entire* federation on disk instead:

* :meth:`ClientStore.create` streams an iterable of client subgraphs into
  flat binary arenas (features / CSR indptr-indices-data / labels / masks)
  plus a fixed-size **mutable slot** per client — weights, Adam moments,
  dropout RNG streams — written sparsely so an untrained federation costs
  no disk at all.  Creation is single-pass and streaming: the coordinator
  never holds more than one subgraph.
* :meth:`ClientStore.materialize` rebuilds one full
  :class:`~repro.federated.client.Client` from memory-mapped slices —
  features, labels and CSR arrays are zero-copy views into the mapping, so
  materializing a client touches only its own pages.  Clients that have
  trained before resume their exact weights, moments and RNG streams
  (bit-for-bit); fresh clients get the pristine seed-built model.
* :class:`StoreFederatedTrainer` runs hierarchical FedAvg over a store:
  per-round participants are drawn from the dedicated subsampling stream
  (:func:`~repro.federated.trainer.select_participant_ids`), workers
  materialize only their sampled residents, fold trained states into one
  :class:`~repro.federated.server.DeterministicSum` partial per shard (edge
  aggregation), persist the mutable slots back, and drop the clients —
  coordinator RSS stays flat in the client count.

The store directory layout::

    meta.json     — spec, arena sizes, slot layout (versioned)
    index.npy     — per-client (node_start, edge_start, nodes, nnz, samples)
    features.bin  — float64, (total_nodes, num_features)
    indptr.bin    — int64, one (n_i + 1)-run per client
    indices.bin   — int64, total_nnz
    data.bin      — float64, total_nnz
    labels.bin    — int64, total_nodes
    masks.bin     — uint8, (total_nodes, 3): train / val / test columns
    mutable.bin   — float64, one slot per client (sparse until trained):
                    [flag, adam_step, weights(P), m(P), v(P), rng(6R)]
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.federated.client import Client
from repro.federated.communication import CommunicationTracker
from repro.federated.server import DeterministicSum
from repro.graph import Graph
from repro.metrics import TrainingHistory

_FORMAT_VERSION = 1
_MASK64 = (1 << 64) - 1
#: uint64 words per packed PCG64 generator state
_RNG_WORDS = 6


@dataclass
class ModelSpec:
    """Picklable recipe for rebuilding every client's model worker-side.

    Model factories are closures (unpicklable); the store persists this spec
    in ``meta.json`` instead and every process rebuilds the factory through
    :func:`repro.fgl.make_model_factory`.  All clients share one spec — the
    homogeneous-architecture contract FedAvg already requires.
    """

    model_name: str = "gcn"
    hidden: int = 64
    dropout: float = 0.5
    seed: int = 0
    k: Optional[int] = None
    array_backend: Optional[str] = None

    def factory(self):
        from repro.fgl import make_model_factory

        return make_model_factory(self.model_name, hidden=self.hidden,
                                  dropout=self.dropout, seed=self.seed,
                                  k=self.k,
                                  array_backend=self.array_backend)


def _pack_rng_state(state: Dict) -> np.ndarray:
    """PCG64 generator state → 6 uint64 words (128-bit ints split lo/hi)."""
    inner = state["state"]
    words = np.empty(_RNG_WORDS, dtype=np.uint64)
    words[0] = inner["state"] & _MASK64
    words[1] = (inner["state"] >> 64) & _MASK64
    words[2] = inner["inc"] & _MASK64
    words[3] = (inner["inc"] >> 64) & _MASK64
    words[4] = int(state["has_uint32"]) & _MASK64
    words[5] = int(state["uinteger"]) & _MASK64
    return words


def _unpack_rng_state(words: np.ndarray) -> Dict:
    """Invert :func:`_pack_rng_state`."""
    return {
        "bit_generator": "PCG64",
        "state": {"state": int(words[0]) | (int(words[1]) << 64),
                  "inc": int(words[2]) | (int(words[3]) << 64)},
        "has_uint32": int(words[4]),
        "uinteger": int(words[5]),
    }


class ClientStore:
    """Memory-mapped on-disk arena holding an entire federation's clients."""

    def __init__(self, path: str, meta: Dict, index: np.ndarray,
                 writable: bool = True):
        self.path = path
        self.meta = meta
        self.index = index
        self.spec = ModelSpec(**meta["spec"])
        self.num_clients = int(meta["num_clients"])
        self.num_features = int(meta["num_features"])
        self.num_classes = int(meta["num_classes"])
        self.param_total = int(meta["param_total"])
        self.num_rngs = int(meta["num_rngs"])
        self.slot_size = int(meta["slot_size"])
        total_nodes = int(meta["total_nodes"])
        total_nnz = int(meta["total_nnz"])
        mode = "r"
        self._features = np.memmap(
            os.path.join(path, "features.bin"), dtype=np.float64, mode=mode,
            shape=(total_nodes, self.num_features))
        self._indptr = np.memmap(
            os.path.join(path, "indptr.bin"), dtype=np.int64, mode=mode,
            shape=(total_nodes + self.num_clients,))
        self._indices = np.memmap(
            os.path.join(path, "indices.bin"), dtype=np.int64, mode=mode,
            shape=(total_nnz,)) if total_nnz else np.empty(0, dtype=np.int64)
        self._data = np.memmap(
            os.path.join(path, "data.bin"), dtype=np.float64, mode=mode,
            shape=(total_nnz,)) if total_nnz \
            else np.empty(0, dtype=np.float64)
        self._labels = np.memmap(
            os.path.join(path, "labels.bin"), dtype=np.int64, mode=mode,
            shape=(total_nodes,))
        self._masks = np.memmap(
            os.path.join(path, "masks.bin"), dtype=np.uint8, mode=mode,
            shape=(total_nodes, 3))
        self._mutable = np.memmap(
            os.path.join(path, "mutable.bin"), dtype=np.float64,
            mode="r+" if writable else "r",
            shape=(self.num_clients, self.slot_size))

    # ------------------------------------------------------------------
    # Creation (single streaming pass)
    # ------------------------------------------------------------------
    @staticmethod
    def create(path: str, subgraphs: Iterable[Graph], spec: ModelSpec
               ) -> "ClientStore":
        """Stream client subgraphs into a new store directory.

        ``subgraphs`` may be a generator — exactly one subgraph is held in
        memory at a time, so a 10^5-client federation can be written with a
        flat RSS.  Every subgraph must share the feature width and global
        class count (the homogeneous-model contract).  The mutable arena is
        created as a sparse file: an untrained store costs index + graph
        bytes only.
        """
        os.makedirs(path, exist_ok=True)
        index_rows: List[Tuple[int, int, int, int, int]] = []
        node_start = edge_start = 0
        num_features = num_classes = None
        template_model = None
        with open(os.path.join(path, "features.bin"), "wb") as f_feat, \
                open(os.path.join(path, "indptr.bin"), "wb") as f_ptr, \
                open(os.path.join(path, "indices.bin"), "wb") as f_idx, \
                open(os.path.join(path, "data.bin"), "wb") as f_dat, \
                open(os.path.join(path, "labels.bin"), "wb") as f_lab, \
                open(os.path.join(path, "masks.bin"), "wb") as f_msk:
            for graph in subgraphs:
                if num_features is None:
                    num_features = graph.num_features
                    num_classes = graph.num_classes
                    template_model = spec.factory()(graph)
                elif graph.num_features != num_features:
                    raise ValueError(
                        "every stored subgraph must share the feature "
                        f"width (got {graph.num_features}, expected "
                        f"{num_features})")
                adj = sp.csr_matrix(graph.adjacency, dtype=np.float64)
                n, nnz = graph.num_nodes, int(adj.nnz)
                f_feat.write(np.ascontiguousarray(
                    graph.features, dtype=np.float64).tobytes())
                f_ptr.write(np.ascontiguousarray(
                    adj.indptr, dtype=np.int64).tobytes())
                f_idx.write(np.ascontiguousarray(
                    adj.indices, dtype=np.int64).tobytes())
                f_dat.write(np.ascontiguousarray(
                    adj.data, dtype=np.float64).tobytes())
                f_lab.write(np.ascontiguousarray(
                    graph.labels, dtype=np.int64).tobytes())
                masks = np.stack([graph.train_mask, graph.val_mask,
                                  graph.test_mask], axis=1)
                f_msk.write(np.ascontiguousarray(
                    masks, dtype=np.uint8).tobytes())
                samples = max(1, int(graph.train_mask.sum()))
                index_rows.append((node_start, edge_start, n, nnz, samples))
                node_start += n
                edge_start += nnz
        if not index_rows:
            raise ValueError("cannot create a ClientStore from zero clients")
        params = template_model.state_dict()
        param_total = sum(int(np.asarray(v).size) for v in params.values())
        from repro.federated.engine.backends import _module_rngs

        num_rngs = len(_module_rngs(template_model))
        slot_size = 2 + 3 * param_total + _RNG_WORDS * num_rngs
        index = np.asarray(index_rows, dtype=np.int64)
        np.save(os.path.join(path, "index.npy"), index)
        # Sparse mutable arena: seek-and-truncate allocates no data blocks.
        with open(os.path.join(path, "mutable.bin"), "wb") as f_mut:
            f_mut.truncate(len(index_rows) * slot_size * 8)
        meta = {
            "format": _FORMAT_VERSION,
            "spec": asdict(spec),
            "num_clients": len(index_rows),
            "num_features": int(num_features),
            "num_classes": int(num_classes),
            "total_nodes": int(node_start),
            "total_nnz": int(edge_start),
            "param_total": param_total,
            "param_shapes": {key: list(np.shape(value))
                             for key, value in params.items()},
            "num_rngs": num_rngs,
            "slot_size": slot_size,
        }
        with open(os.path.join(path, "meta.json"), "w") as f_meta:
            json.dump(meta, f_meta, indent=2)
        return ClientStore(path, meta, index)

    @staticmethod
    def open(path: str, writable: bool = True) -> "ClientStore":
        """Map an existing store; O(1) in the federation size."""
        with open(os.path.join(path, "meta.json")) as f_meta:
            meta = json.load(f_meta)
        if meta.get("format") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported ClientStore format {meta.get('format')!r}")
        index = np.load(os.path.join(path, "index.npy"))
        return ClientStore(path, meta, index, writable=writable)

    # ------------------------------------------------------------------
    # Per-client access
    # ------------------------------------------------------------------
    def num_samples(self, cid: int) -> int:
        """FedAvg weight of a client, read from the index (no page touch)."""
        return int(self.index[cid, 4])

    def graph(self, cid: int) -> Graph:
        """Rebuild one client subgraph from zero-copy memory-mapped views."""
        node_start, edge_start, n, nnz, _ = (int(v) for v in self.index[cid])
        indptr = self._indptr[node_start + cid:node_start + cid + n + 1]
        adjacency = sp.csr_matrix(
            (self._data[edge_start:edge_start + nnz],
             self._indices[edge_start:edge_start + nnz],
             np.asarray(indptr) - int(indptr[0])), shape=(n, n))
        return Graph(
            adjacency=adjacency,
            features=self._features[node_start:node_start + n],
            labels=self._labels[node_start:node_start + n],
            train_mask=self._masks[node_start:node_start + n, 0] != 0,
            val_mask=self._masks[node_start:node_start + n, 1] != 0,
            test_mask=self._masks[node_start:node_start + n, 2] != 0,
            name=f"store-{cid}",
            metadata={"num_classes": self.num_classes},
        )

    def materialize(self, cid: int, lr: float = 0.01,
                    weight_decay: float = 5e-4,
                    local_epochs: int = 3) -> Client:
        """Build the full client: graph views + model + restored state.

        A never-trained client gets the pristine spec-built model (identical
        across clients — shared seed, shared shapes); a trained one resumes
        its exact weights, Adam moments and dropout RNG streams.
        """
        graph = self.graph(cid)
        model = self.spec.factory()(graph)
        client = Client(cid, graph, model, lr=lr, weight_decay=weight_decay,
                        local_epochs=local_epochs,
                        array_backend=self.spec.array_backend)
        slot = self._mutable[cid]
        if slot[0] != 0.0:
            self._restore_mutable(client, slot)
        return client

    def _restore_mutable(self, client: Client, slot: np.ndarray) -> None:
        from repro.federated.engine.backends import _module_rngs

        p = self.param_total
        offset = 2
        state = {}
        for key, shape in self.meta["param_shapes"].items():
            size = int(np.prod(shape)) if shape else 1
            state[key] = slot[offset:offset + size].reshape(shape).copy()
            offset += size
        client.set_weights(state)
        opt = client.optimizer
        opt._step_count = int(slot[1])
        for moments in (opt._m, opt._v):
            for array in moments:
                array[...] = slot[offset:offset + array.size].reshape(
                    array.shape)
                offset += array.size
        words = np.asarray(
            slot[offset:offset + _RNG_WORDS * self.num_rngs]
        ).view(np.uint64)
        for position, rng in enumerate(_module_rngs(client.model)):
            rng.bit_generator.state = _unpack_rng_state(
                words[position * _RNG_WORDS:(position + 1) * _RNG_WORDS])
        assert offset + _RNG_WORDS * self.num_rngs == 2 + 3 * p \
            + _RNG_WORDS * self.num_rngs

    def save_mutable(self, client: Client) -> None:
        """Persist a trained client's mutable state back into its slot."""
        from repro.federated.engine.backends import _module_rngs

        slot = self._mutable[client.client_id]
        slot[0] = 1.0
        slot[1] = float(client.optimizer._step_count)
        offset = 2
        state = client.model.state_dict()
        for key in self.meta["param_shapes"]:
            value = np.asarray(state[key], dtype=np.float64)
            slot[offset:offset + value.size] = value.ravel()
            offset += value.size
        for moments in (client.optimizer._m, client.optimizer._v):
            for array in moments:
                slot[offset:offset + array.size] = \
                    np.asarray(array, dtype=np.float64).ravel()
                offset += array.size
        words = np.concatenate(
            [_pack_rng_state(rng.bit_generator.state)
             for rng in _module_rngs(client.model)]) \
            if self.num_rngs else np.empty(0, dtype=np.uint64)
        slot[offset:offset + words.size] = words.view(np.float64)

    def flush(self) -> None:
        """Push mutable-slot writes to disk (mmap pages are shared anyway)."""
        self._mutable.flush()


# ----------------------------------------------------------------------
# Worker-side shard functions (run through PersistentWorkerPool.call)
# ----------------------------------------------------------------------
def _store_handle(residents: Dict, path: str) -> ClientStore:
    """Open-once cache of the store mapping in a worker's resident registry.

    The registry normally maps ``client_id → Client``; the tuple key cannot
    collide with integer ids, so the handle rides along untouched by the
    adopt/train machinery.
    """
    key = ("__clientstore__", path)
    handle = residents.get(key)
    if handle is None:
        handle = residents[key] = ClientStore.open(path)
    return handle


def train_store_shard(residents: Dict, path: str, cids: Sequence[int],
                      broadcast: Optional[Dict[str, np.ndarray]],
                      fold_weights: Dict[int, float], lr: float,
                      weight_decay: float, local_epochs: int
                      ) -> Tuple[Dict[int, float], Dict]:
    """Edge-aggregate one shard: materialize, train, fold, persist, drop.

    Exactly one client is resident at a time; its trained state folds into
    the shard's :class:`DeterministicSum` with the coordinator-supplied
    coefficient and its mutable slot is written back before the next client
    materializes.  Returns ``(losses, partial)`` — O(parameters) regardless
    of shard size.
    """
    store = _store_handle(residents, path)
    acc = DeterministicSum()
    losses: Dict[int, float] = {}
    for cid in cids:
        client = store.materialize(int(cid), lr=lr,
                                   weight_decay=weight_decay,
                                   local_epochs=local_epochs)
        if broadcast is not None:
            client.set_weights(broadcast)
        losses[int(cid)] = client.local_train()
        acc.fold(client.get_weights(), fold_weights[int(cid)])
        store.save_mutable(client)
        del client
    return losses, acc.partial()


def eval_store_shard(residents: Dict, path: str, cids: Sequence[int],
                     broadcast: Dict[str, np.ndarray]
                     ) -> Dict[int, Tuple[float, int, float, int]]:
    """Evaluate shard clients on the current broadcast (stateless).

    Returns ``cid → (train_acc, train_count, test_acc, test_count)``.
    Evaluation runs in eval mode (no dropout, no RNG consumption) and never
    writes the mutable slot, so it cannot perturb training trajectories.
    """
    store = _store_handle(residents, path)
    out: Dict[int, Tuple[float, int, float, int]] = {}
    for cid in cids:
        client = store.materialize(int(cid))
        client.set_weights(broadcast)
        train_count = int(client.graph.train_mask.sum())
        test_count = int(client.graph.test_mask.sum())
        out[int(cid)] = (client.evaluate("train"), train_count,
                         client.evaluate("test"), test_count)
        del client
    return out


# ----------------------------------------------------------------------
# Store-backed hierarchical trainer
# ----------------------------------------------------------------------
class StoreFederatedTrainer:
    """Hierarchical FedAvg over a :class:`ClientStore` — scales past 10^5.

    The classic :class:`~repro.federated.trainer.FederatedTrainer` keeps
    every ``Client`` resident; this trainer keeps only the store mapping.
    Each round it draws participants from the dedicated subsampling stream,
    ships shards of **ids** (not clients) to the persistent workers, and
    merges one fixed-point edge aggregate per shard.  With ``num_workers=0``
    the same shard functions run in-process (the serial reference used by
    the parity tests).

    Histories are value-identical to flat FedAvg over resident clients with
    the same spec, seed and participation — the parity contract
    ``tests/test_scale.py`` pins at small N with ``loss_gap == 0.0``.
    """

    def __init__(self, store: ClientStore, rounds: int = 10,
                 local_epochs: int = 3, lr: float = 0.01,
                 weight_decay: float = 5e-4, participation: float = 1.0,
                 seed: int = 0, num_workers: int = 0, eval_every: int = 1,
                 eval_sample: Optional[int] = None):
        from repro.federated.trainer import participation_rng

        if not 0.0 < participation <= 1.0:
            raise ValueError("participation must be in (0, 1]")
        self.store = store
        self.rounds = int(rounds)
        self.local_epochs = int(local_epochs)
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self.participation = float(participation)
        self.seed = int(seed)
        self.num_workers = int(num_workers)
        self.eval_every = int(eval_every)
        self.eval_sample = eval_sample
        self.history = TrainingHistory()
        self.tracker = CommunicationTracker()
        self.global_state: Optional[Dict[str, np.ndarray]] = None
        self._participation_rng = participation_rng(self.seed)
        self._eval_rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, 0x45564C]))
        self._pool = None
        #: in-process (num_workers=0) stand-in for a worker's registry
        self._local_residents: Dict = {}

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        from repro.federated.engine.persistent import PersistentWorkerPool

        if self.num_workers >= 1 and self._pool is None:
            self._pool = PersistentWorkerPool(self.num_workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _shards(self, cids: Sequence[int]) -> Dict[int, List[int]]:
        workers = max(1, self.num_workers)
        shards: Dict[int, List[int]] = {}
        for cid in cids:
            shards.setdefault(int(cid) % workers, []).append(int(cid))
        return shards

    def _run_shards(self, func, per_shard_args: Dict[int, tuple]) -> List:
        """Run one shard function per worker (pooled or in-process)."""
        pool = self._ensure_pool()
        if pool is None:
            return [func(self._local_residents, *args)
                    for _, args in sorted(per_shard_args.items())]
        batches = {worker: [("call", (func, args))]
                   for worker, args in per_shard_args.items()}
        results = pool.run_batches(batches)
        return [results[worker][0] for worker in sorted(results)]

    # ------------------------------------------------------------------
    def run(self) -> TrainingHistory:
        try:
            for round_index in range(1, self.rounds + 1):
                self._run_round(round_index)
        finally:
            self.close()
            self.store.flush()
        return self.history

    def _run_round(self, round_index: int) -> None:
        from repro.federated.trainer import select_participant_ids

        participants = select_participant_ids(
            self._participation_rng, self.store.num_clients,
            self.participation)
        self.history.record_participants(round_index, participants)
        # Exact same normalization StreamingAggregate applies for flat
        # FedAvg — the parity contract needs the identical coefficients.
        base = np.asarray([self.store.num_samples(cid)
                           for cid in participants], dtype=np.float64)
        normalized = base / base.sum()
        fold_weights = {int(cid): float(normalized[pos])
                        for pos, cid in enumerate(participants)}

        shards = self._shards(participants)
        args = {worker: (self.store.path, ids, self.global_state,
                         {cid: fold_weights[cid] for cid in ids}, self.lr,
                         self.weight_decay, self.local_epochs)
                for worker, ids in shards.items()}
        acc = DeterministicSum()
        losses: Dict[int, float] = {}
        param_total = self.store.param_total
        for shard_losses, partial in self._run_shards(
                train_store_shard, args):
            acc.merge(partial)
            losses.update(shard_losses)
            # One broadcast down + one pre-aggregated partial up per edge
            # aggregator: O(workers) coordinator traffic.
            if self.global_state is not None:
                self.tracker.record_download("broadcast_weights",
                                             param_total)
            self.tracker.record_upload(
                "edge_aggregate",
                sum(hi.size + lo.size for hi, lo in partial.values()))
        self.global_state = acc.value()
        self.tracker.next_round()

        if round_index % self.eval_every == 0 or round_index == self.rounds:
            loss = float(np.mean([losses[cid] for cid in participants]))
            train_acc, test_acc, per_client = self._evaluate()
            self.history.record(round_index, train_acc, test_acc, loss,
                                per_client)

    def _evaluate(self) -> Tuple[float, float, Dict[int, float]]:
        """Broadcast-state accuracy over all clients (or a seeded sample).

        Accumulates ``accuracy × mask-count`` in ascending client order —
        the exact expression (and float evaluation order)
        ``FederatedTrainer.evaluate`` uses, so full-evaluation runs match
        the resident-client trainer bit for bit.
        """
        cids: Sequence[int] = range(self.store.num_clients)
        if self.eval_sample is not None \
                and self.eval_sample < self.store.num_clients:
            cids = np.sort(self._eval_rng.choice(
                self.store.num_clients, size=int(self.eval_sample),
                replace=False))
        reports: Dict[int, Tuple[float, int, float, int]] = {}
        args = {worker: (self.store.path, ids, self.global_state)
                for worker, ids in self._shards([int(c) for c in cids]).items()}
        for shard_report in self._run_shards(eval_store_shard, args):
            reports.update(shard_report)
        train_weight = test_weight = 0.0
        train_total = test_total = 0
        per_client: Dict[int, float] = {}
        for cid in sorted(reports):
            train_acc, train_count, test_acc, test_count = reports[cid]
            per_client[cid] = test_acc
            if train_count:
                train_weight += train_acc * train_count
                train_total += train_count
            if test_count:
                test_weight += test_acc * test_count
                test_total += test_count
        return (train_weight / train_total if train_total else 0.0,
                test_weight / test_total if test_total else 0.0,
                per_client)

"""Server-side model aggregation (Eq. 4 of the paper).

The weighted sum at the heart of FedAvg is computed through
:class:`DeterministicSum`, an order-independent fixed-point accumulator.
Each product ``w_i * state_i`` is snapped onto a 2**-84 grid and carried as
two ``int64`` limbs; integer addition is associative and commutative, so the
aggregate is bitwise identical no matter how the contributions are grouped
or ordered — a flat coordinator fold, a streaming out-of-order fold, and a
two-tier hierarchy of per-worker partial folds all produce the same bits.
That property is what lets edge aggregators pre-fold their shards and ship
one partial per round (see :mod:`repro.federated.engine.pipeline`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: hi limb unit is 2**-_HI_BITS model-weight units.
_HI_BITS = 32
#: lo limb unit is 2**-_LO_BITS; the residual snap error per fold is below
#: 2**-85, orders of magnitude under float64 round-off for typical weights.
_LO_BITS = 84
#: 2**_CARRY lo units equal one hi unit.
_CARRY = _LO_BITS - _HI_BITS

_HI_SCALE = float(2.0 ** _HI_BITS)
_HI_INV = float(2.0 ** -_HI_BITS)
_LO_SCALE = float(2.0 ** _LO_BITS)
_LO_INV = float(2.0 ** -_LO_BITS)


class DeterministicSum:
    """Order-independent weighted sum of state dicts.

    Folding ``(state, weight)`` pairs in any order — or merging partial
    accumulators built elsewhere — yields bitwise-identical results, because
    every product is converted once to fixed point (two int64 limbs per
    entry) and only integers are accumulated.  Magnitudes up to ``~2**20``
    per entry and tens of thousands of contributions fit with ample headroom;
    model weights and optimizer-scaled updates are far below that.
    """

    def __init__(self):
        self._hi: Optional[Dict[str, np.ndarray]] = None
        self._lo: Optional[Dict[str, np.ndarray]] = None

    @property
    def empty(self) -> bool:
        return self._hi is None

    def _ensure(self, state: Dict[str, np.ndarray]) -> None:
        if self._hi is None:
            self._hi = {key: np.zeros(np.shape(value), dtype=np.int64)
                        for key, value in state.items()}
            self._lo = {key: np.zeros(np.shape(value), dtype=np.int64)
                        for key, value in state.items()}

    def _normalize(self, key: str) -> None:
        # Keep lo within [0, 2**_CARRY) so repeated folds can never overflow
        # the limb; the arithmetic right shift floors for negatives too.
        carry = self._lo[key] >> _CARRY
        self._lo[key] -= carry << _CARRY
        self._hi[key] += carry

    def fold(self, state: Dict[str, np.ndarray], weight: float) -> None:
        """Accumulate ``weight * state`` (grid-snapped, order-independent)."""
        self._ensure(state)
        for key, value in state.items():
            v = weight * np.asarray(value, dtype=np.float64)
            hi = np.rint(v * _HI_SCALE)
            rem = v - hi * _HI_INV  # exact (Sterbenz)
            lo = np.rint(rem * _LO_SCALE)
            self._hi[key] += hi.astype(np.int64)
            self._lo[key] += lo.astype(np.int64)
            self._normalize(key)

    def partial(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """Export the raw limbs (for shipping a pre-aggregated shard up)."""
        if self._hi is None:
            raise RuntimeError("cannot export an empty DeterministicSum")
        return {key: (self._hi[key].copy(), self._lo[key].copy())
                for key in self._hi}

    def merge(self, partial: Dict[str, Tuple[np.ndarray, np.ndarray]]) -> None:
        """Fold another accumulator's :meth:`partial` into this one."""
        if self._hi is None:
            self._hi = {key: np.array(hi, dtype=np.int64, copy=True)
                        for key, (hi, _) in partial.items()}
            self._lo = {key: np.array(lo, dtype=np.int64, copy=True)
                        for key, (_, lo) in partial.items()}
            return
        if set(partial) != set(self._hi):
            raise KeyError("partial sums have mismatching parameter names")
        for key, (hi, lo) in partial.items():
            self._hi[key] += np.asarray(hi, dtype=np.int64)
            self._lo[key] += np.asarray(lo, dtype=np.int64)
            self._normalize(key)

    def value(self) -> Dict[str, np.ndarray]:
        """Convert back to float64 (one deterministic rounding per entry)."""
        if self._hi is None:
            raise RuntimeError("cannot read an empty DeterministicSum")
        return {key: self._hi[key].astype(np.float64) * _HI_INV
                + self._lo[key].astype(np.float64) * _LO_INV
                for key in self._hi}


def fedavg_aggregate(states: Sequence[Dict[str, np.ndarray]],
                     weights: Optional[Sequence[float]] = None
                     ) -> Dict[str, np.ndarray]:
    """Weighted average of client state dicts (FedAvg, Eq. 4).

    ``weights`` default to uniform; they are normalised internally.  The sum
    runs through :class:`DeterministicSum`, so any regrouping of the same
    contributions (streaming folds, hierarchical partials) is bitwise equal.
    """
    if not states:
        raise ValueError("fedavg_aggregate needs at least one state dict")
    if weights is None:
        weights = [1.0] * len(states)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape[0] != len(states):
        raise ValueError("weights and states must have the same length")
    if weights.sum() <= 0:
        raise ValueError("aggregation weights must sum to a positive value")
    weights = weights / weights.sum()

    keys = set(states[0])
    for state in states[1:]:
        if set(state) != keys:
            raise KeyError("client state dicts have mismatching parameter names")

    acc = DeterministicSum()
    for weight, state in zip(weights, states):
        acc.fold(state, float(weight))
    return acc.value()


class Server:
    """Central coordinator holding the current global model state.

    How states are *combined* is decided by an
    :class:`~repro.federated.engine.AggregationStrategy`; the server itself
    only stores the result (:meth:`commit`).  :meth:`aggregate` remains as
    the FedAvg convenience used by standalone code and tests.
    """

    def __init__(self):
        self.global_state: Optional[Dict[str, np.ndarray]] = None
        self.round = 0

    def commit(self, state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Store an already-aggregated global state and advance the round."""
        self.global_state = state
        self.round += 1
        return self.global_state

    def aggregate(self, states: List[Dict[str, np.ndarray]],
                  weights: Optional[List[float]] = None) -> Dict[str, np.ndarray]:
        """FedAvg-aggregate uploaded client states into a new global state."""
        return self.commit(fedavg_aggregate(states, weights))

    def broadcast(self) -> Dict[str, np.ndarray]:
        """Return a copy of the global state to send to a client."""
        if self.global_state is None:
            raise RuntimeError("no global model has been aggregated yet")
        return {key: value.copy() for key, value in self.global_state.items()}

"""Server-side model aggregation (Eq. 4 of the paper)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np


def fedavg_aggregate(states: Sequence[Dict[str, np.ndarray]],
                     weights: Optional[Sequence[float]] = None
                     ) -> Dict[str, np.ndarray]:
    """Weighted average of client state dicts (FedAvg, Eq. 4).

    ``weights`` default to uniform; they are normalised internally.
    """
    if not states:
        raise ValueError("fedavg_aggregate needs at least one state dict")
    if weights is None:
        weights = [1.0] * len(states)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape[0] != len(states):
        raise ValueError("weights and states must have the same length")
    if weights.sum() <= 0:
        raise ValueError("aggregation weights must sum to a positive value")
    weights = weights / weights.sum()

    keys = set(states[0])
    for state in states[1:]:
        if set(state) != keys:
            raise KeyError("client state dicts have mismatching parameter names")

    aggregated: Dict[str, np.ndarray] = {}
    for key in states[0]:
        aggregated[key] = sum(w * state[key] for w, state in zip(weights, states))
    return aggregated


class Server:
    """Central coordinator holding the current global model state.

    How states are *combined* is decided by an
    :class:`~repro.federated.engine.AggregationStrategy`; the server itself
    only stores the result (:meth:`commit`).  :meth:`aggregate` remains as
    the FedAvg convenience used by standalone code and tests.
    """

    def __init__(self):
        self.global_state: Optional[Dict[str, np.ndarray]] = None
        self.round = 0

    def commit(self, state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Store an already-aggregated global state and advance the round."""
        self.global_state = state
        self.round += 1
        return self.global_state

    def aggregate(self, states: List[Dict[str, np.ndarray]],
                  weights: Optional[List[float]] = None) -> Dict[str, np.ndarray]:
        """FedAvg-aggregate uploaded client states into a new global state."""
        return self.commit(fedavg_aggregate(states, weights))

    def broadcast(self) -> Dict[str, np.ndarray]:
        """Return a copy of the global state to send to a client."""
        if self.global_state is None:
            raise RuntimeError("no global model has been aggregated yet")
        return {key: value.copy() for key, value in self.global_state.items()}

"""Federated learning framework: clients, server, engine, trainer."""

from repro.federated.client import Client
from repro.federated.server import DeterministicSum, Server, fedavg_aggregate
from repro.federated.engine import (
    AggregationContext,
    AggregationStrategy,
    BatchedBackend,
    ClientStore,
    ExecutionBackend,
    FedAdamAggregation,
    ModelSpec,
    ProcessPoolBackend,
    SerialBackend,
    StoreFederatedTrainer,
    list_aggregations,
    list_backends,
    make_aggregation,
    make_backend,
)
from repro.federated.trainer import FederatedTrainer, FederatedConfig
from repro.federated.communication import CommunicationTracker

__all__ = [
    "Client",
    "Server",
    "DeterministicSum",
    "fedavg_aggregate",
    "ClientStore",
    "ModelSpec",
    "StoreFederatedTrainer",
    "FederatedTrainer",
    "FederatedConfig",
    "CommunicationTracker",
    "AggregationContext",
    "AggregationStrategy",
    "ExecutionBackend",
    "FedAdamAggregation",
    "SerialBackend",
    "ProcessPoolBackend",
    "BatchedBackend",
    "list_aggregations",
    "list_backends",
    "make_aggregation",
    "make_backend",
]

"""Federated learning framework: clients, server, engine, trainer."""

from repro.federated.client import Client
from repro.federated.server import Server, fedavg_aggregate
from repro.federated.engine import (
    AggregationContext,
    AggregationStrategy,
    BatchedBackend,
    ExecutionBackend,
    FedAdamAggregation,
    ProcessPoolBackend,
    SerialBackend,
    list_aggregations,
    list_backends,
    make_aggregation,
    make_backend,
)
from repro.federated.trainer import FederatedTrainer, FederatedConfig
from repro.federated.communication import CommunicationTracker

__all__ = [
    "Client",
    "Server",
    "fedavg_aggregate",
    "FederatedTrainer",
    "FederatedConfig",
    "CommunicationTracker",
    "AggregationContext",
    "AggregationStrategy",
    "ExecutionBackend",
    "FedAdamAggregation",
    "SerialBackend",
    "ProcessPoolBackend",
    "BatchedBackend",
    "list_aggregations",
    "list_backends",
    "make_aggregation",
    "make_backend",
]

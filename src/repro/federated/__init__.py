"""Federated learning framework: clients, server, FedAvg trainer."""

from repro.federated.client import Client
from repro.federated.server import Server, fedavg_aggregate
from repro.federated.trainer import FederatedTrainer, FederatedConfig
from repro.federated.communication import CommunicationTracker

__all__ = [
    "Client",
    "Server",
    "fedavg_aggregate",
    "FederatedTrainer",
    "FederatedConfig",
    "CommunicationTracker",
]

"""Repository-level pytest configuration: benchmark markers.

Tier-1 verification (``PYTHONPATH=src python -m pytest -x -q``) must stay
fast and deterministic, so tests marked ``bench`` (the timing harness) are
skipped unless explicitly requested with ``--run-bench`` or
``REPRO_RUN_BENCH=1``.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--run-bench", action="store_true", default=False,
        help="run tests marked 'bench' (timing benchmark harness)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench: timing benchmark harness; skipped unless --run-bench or "
        "REPRO_RUN_BENCH=1")
    config.addinivalue_line(
        "markers",
        "slow: long-running test; may be deselected with -m 'not slow'")
    config.addinivalue_line(
        "markers", "integration: end-to-end integration test")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-bench") or \
            os.environ.get("REPRO_RUN_BENCH", "0") == "1":
        return
    skip_bench = pytest.mark.skip(
        reason="timing harness: pass --run-bench or set REPRO_RUN_BENCH=1")
    for item in items:
        if "bench" in item.keywords:
            item.add_marker(skip_bench)

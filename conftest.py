"""Repository-level pytest configuration: benchmark markers, hang guard.

Tier-1 verification (``PYTHONPATH=src python -m pytest -x -q``) must stay
fast and deterministic, so tests marked ``bench`` (the timing harness) are
skipped unless explicitly requested with ``--run-bench`` or
``REPRO_RUN_BENCH=1``.

A per-test wall-clock guard (SIGALRM, main-thread Unix only — the
environment has no ``pytest-timeout`` plugin) fails any test that exceeds
``REPRO_TEST_TIMEOUT`` seconds (default 300), so a hung persistent-pool
worker or a deadlocked pipe can never stall the suite forever.  Set
``REPRO_TEST_TIMEOUT=0`` to disable.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    use_alarm = (
        _TEST_TIMEOUT > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"test exceeded REPRO_TEST_TIMEOUT={_TEST_TIMEOUT:.0f}s "
            "(hang guard)")

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def pytest_addoption(parser):
    parser.addoption(
        "--run-bench", action="store_true", default=False,
        help="run tests marked 'bench' (timing benchmark harness)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench: timing benchmark harness; skipped unless --run-bench or "
        "REPRO_RUN_BENCH=1")
    config.addinivalue_line(
        "markers",
        "slow: long-running test; may be deselected with -m 'not slow'")
    config.addinivalue_line(
        "markers", "integration: end-to-end integration test")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-bench") or \
            os.environ.get("REPRO_RUN_BENCH", "0") == "1":
        return
    skip_bench = pytest.mark.skip(
        reason="timing harness: pass --run-bench or set REPRO_RUN_BENCH=1")
    for item in items:
        if "bench" in item.keywords:
            item.add_marker(skip_bench)

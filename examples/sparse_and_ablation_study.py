"""Ablation and sparse-setting study for AdaFGL (Tables VI/VII, Fig. 10).

Runs every single-component ablation of AdaFGL (without knowledge preserving,
without the topology-independent feature embedding, without learnable message
passing, without local topology optimisation, without HCS) and evaluates the
full model under feature/edge/label sparsity.

Run with::

    python examples/sparse_and_ablation_study.py [dataset]
"""

import sys

from repro.core import AdaFGL, ablation_variants
from repro.datasets import load_dataset
from repro.experiments import ExperimentSettings, format_table, prepare_clients
from repro.simulation import edge_sparsity, feature_sparsity, label_sparsity


def run_adafgl(clients, config):
    trainer = AdaFGL(clients, config)
    trainer.run()
    return trainer.evaluate("test")


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "computer"
    settings = ExperimentSettings(seed=0)
    graph = load_dataset(dataset, seed=0)
    clients = prepare_clients(dataset, "structure", settings, graph=graph)

    # --- ablation study -------------------------------------------------
    rows = []
    for label, config in ablation_variants(settings.adafgl_config()).items():
        rows.append([label, run_adafgl(clients, config)])
    print(format_table(["variant", "test accuracy"], rows,
                       title=f"AdaFGL ablation on {dataset} (structure Non-iid)"))
    print()

    # --- sparse settings --------------------------------------------------
    base_config = settings.adafgl_config()
    sparse_rows = [["dense baseline", run_adafgl(clients, base_config)]]
    sparse_rows.append([
        "50% missing features",
        run_adafgl([feature_sparsity(c, 0.5, seed=0) for c in clients],
                   base_config)])
    sparse_rows.append([
        "50% missing edges",
        run_adafgl([edge_sparsity(c, 0.5, seed=0) for c in clients],
                   base_config)])
    sparse_rows.append([
        "5% labelled nodes",
        run_adafgl([label_sparsity(c, 0.05, seed=0) for c in clients],
                   base_config)])
    print(format_table(["setting", "test accuracy"], sparse_rows,
                       title=f"AdaFGL under sparsity on {dataset}"))


if __name__ == "__main__":
    main()

"""Reproduce the paper's motivating study (Fig. 1 / Fig. 2) on one dataset.

Shows how the two data-simulation strategies differ:

* the community split keeps every client's topology consistent with the
  homophilous global graph;
* the structure Non-iid split injects homophilous or heterophilous edges per
  client, creating the topology heterogeneity that breaks standard FGL.

The script prints per-client label distributions, homophily statistics and
the accuracy of a federated GCN under both strategies.

Run with::

    python examples/topology_heterogeneity_study.py [dataset]
"""

import sys

from repro import community_split, load_dataset, structure_noniid_split
from repro.experiments import format_table
from repro.federated import FederatedConfig
from repro.fgl import build_baseline
from repro.metrics import client_label_distribution, client_topology_distribution


def describe(split_name, clients, num_classes):
    labels = client_label_distribution(clients, num_classes=num_classes)
    topology = client_topology_distribution(clients)
    print(format_table(
        ["client", "nodes", "edges", "node homophily", "edge homophily"]
        + [f"class{c}" for c in range(num_classes)],
        [[i, c.num_nodes, c.num_edges, topology[i, 0], topology[i, 1]]
         + labels[i].tolist() for i, c in enumerate(clients)],
        title=f"{split_name} split: per-client statistics"))
    print()


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "cora"
    graph = load_dataset(dataset, seed=0)
    print(f"global graph: {graph}\n")

    config = FederatedConfig(rounds=20, local_epochs=3, seed=0)
    accuracies = {}
    for split_name, splitter in (("community", community_split),
                                 ("structure Non-iid", structure_noniid_split)):
        clients = splitter(graph, 10, seed=0)
        describe(split_name, clients, graph.num_classes)
        trainer = build_baseline("fedgcn", clients, config=config)
        trainer.run()
        accuracies[split_name] = trainer.evaluate("test")

    print(format_table(
        ["simulation strategy", "FedGCN test accuracy"],
        [[k, v] for k, v in accuracies.items()],
        title="Topology heterogeneity hurts standard federated GNNs"))


if __name__ == "__main__":
    main()

"""Compare every federated baseline against AdaFGL on one dataset.

This is a miniature version of Table II: it runs the federated GNN baselines
(FedGCN, FedGCNII, FedGloGNN, ...), the FGL methods (FedGL, GCFL+, FedSage+,
FED-PUB) and AdaFGL on a chosen dataset under both data-simulation
strategies, then prints the comparison and the communication volume of each
method.

Run with::

    python examples/benchmark_comparison.py [dataset] [num_clients]
"""

import sys

from repro.datasets import load_dataset
from repro.experiments import (
    ExperimentSettings,
    compare_methods,
    format_table,
    prepare_clients,
)


METHODS = ["fedgcn", "fedgcnii", "fedgprgnn", "fedglognn", "fedgl", "gcfl+",
           "fedsage+", "fed-pub", "adafgl"]


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "citeseer"
    num_clients = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    settings = ExperimentSettings(num_clients=num_clients, seed=0)
    graph = load_dataset(dataset, seed=0)
    print(f"dataset: {graph}\n")

    for split in ("community", "structure"):
        clients = prepare_clients(dataset, split, settings, graph=graph)
        results = compare_methods(METHODS, clients, settings)
        rows = [[method,
                 results[method]["accuracy"],
                 results[method]["train_accuracy"],
                 results[method]["communication"]["per_round"]]
                for method in METHODS]
        print(format_table(
            ["method", "test acc", "train acc", "floats/round"],
            rows, title=f"{dataset} — {split} split ({num_clients} clients)"))
        best = max(METHODS, key=lambda m: results[m]["accuracy"])
        print(f"best method: {best}\n")


if __name__ == "__main__":
    main()

"""Quickstart: federated node classification with AdaFGL in ~40 lines.

Loads the Cora stand-in dataset, simulates 5 clients with the structure
Non-iid split, runs the two-step AdaFGL paradigm and compares it against a
federated GCN baseline.

Run with::

    python examples/quickstart.py
"""

from repro import AdaFGL, AdaFGLConfig, load_dataset, structure_noniid_split
from repro.experiments import format_table
from repro.federated import FederatedConfig
from repro.fgl import build_baseline


def main() -> None:
    # 1. Load a dataset (a synthetic stand-in matching Cora's statistics).
    graph = load_dataset("cora", seed=0)
    print(f"loaded {graph}")

    # 2. Simulate the federated setting: Metis partition + edge injection.
    clients = structure_noniid_split(graph, num_clients=5, seed=0)
    print(f"created {len(clients)} client subgraphs "
          f"({[c.num_nodes for c in clients]} nodes)")

    # 3. Baseline: a federated GCN trained with FedAvg.
    baseline = build_baseline(
        "fedgcn", clients,
        config=FederatedConfig(rounds=20, local_epochs=3, seed=0))
    baseline.run()

    # 4. AdaFGL: Step 1 federated knowledge extractor + Step 2 personalized
    #    propagation on every client.
    adafgl = AdaFGL(clients, AdaFGLConfig(rounds=20, local_epochs=3,
                                          personalized_epochs=60, seed=0))
    adafgl.run()

    # 5. Compare.
    print()
    print(format_table(
        ["method", "test accuracy"],
        [["FedGCN", baseline.evaluate("test")],
         ["AdaFGL", adafgl.evaluate("test")]],
        title="Structure Non-iid split on Cora (5 clients)"))

    print("\nper-client Homophily Confidence Scores:")
    for client_id, hcs in sorted(adafgl.client_hcs().items()):
        print(f"  client {client_id}: HCS = {hcs:.2f}")


if __name__ == "__main__":
    main()

"""Timing benchmark harness for the federated perf engine.

Three suites (``--suite``), each writing a JSON artifact under
``benchmarks/results/`` so the perf trajectory is tracked in-repo:

* ``step2`` (``BENCH_step2.json``) — dense vs sparse personalized training:
  Step-2 epochs/sec, peak P̃ memory and accuracy parity on growing cSBM
  graphs (PR 1);
* ``step1`` (``BENCH_step1.json``) — Step-1 federated collaborative-training
  rounds/sec for every execution backend (``serial`` / ``process_pool`` /
  ``batched``) on a many-small-clients split, including speedups over serial
  and a loss-parity check (PR 2; the process pool is the persistent-worker
  engine since PR 3 — resident clients, delta-only IPC, intra-worker shard
  fusion — and ``--model sgc|gamlp|gprgnn`` exercises the batched
  propagation/decoupled-hop families).  Since PR 4 the same artifact also
  carries a ``straggler`` section (pipelined sync rounds under simulated
  heterogeneous worker speeds, with a worker-utilization/straggler-wait
  metric), a ``step1_async`` section (bounded-staleness async rounds:
  throughput, utilization, per-client round lag, accuracy vs sync) and a
  ``delta_codec`` section (lossless bit-delta vs lossy top-k and quantised
  top-k upload transport: accuracy vs bytes); since PR 5 a ``models``
  section times serial vs batched GAMLP / GPR-GNN on the same split
  (decoupled-hop plans, ``loss_gap`` must be 0.0);
* ``topk`` (``BENCH_topk.json``) — accuracy-vs-k curve for
  ``propagation_top_k``, against the dense reference, to pick per-dataset
  defaults;
* ``faults`` (``BENCH_faults.json``) — fault-tolerance cost model (PR 6):
  recovery overhead and history parity for a targeted worker crash under
  the ``restart`` / ``redistribute`` policies, a seeded chaos sweep over
  crash rates, and round-timeout degradation under a stalled worker.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_perf.py --suite all

A small smoke version runs under pytest via ``test_bench_perf.py`` when the
``bench`` marker is enabled (``pytest --run-bench`` or ``REPRO_RUN_BENCH=1``);
plain tier-1 runs skip it.
"""

from __future__ import annotations

import argparse
import dataclasses
import time
import tracemalloc
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.core import AdaFGL, AdaFGLConfig, FederatedKnowledgeExtractor
from repro.core.adafgl import PersonalizedClient
from repro.datasets import CSBMConfig, generate_csbm, make_split_masks
from repro.federated import FederatedConfig
from repro.federated.engine import FaultEvent, FaultPlan
from repro.fgl.fedgnn import FederatedGNN

try:  # imported as benchmarks.bench_perf (pytest) or run as a script
    from benchmarks.bench_utils import record_json
except ImportError:  # pragma: no cover - script mode
    from bench_utils import record_json

NUM_FEATURES = 128
NUM_CLASSES = 5


def make_graph(num_nodes: int, seed: int = 0,
               num_features: int = NUM_FEATURES):
    config = CSBMConfig(
        num_nodes=num_nodes, num_classes=NUM_CLASSES,
        num_features=num_features, avg_degree=10.0, edge_homophily=0.6,
        feature_signal=1.0, blocks_per_class=2, seed=seed,
        name=f"bench-{num_nodes}")
    graph = generate_csbm(config)
    make_split_masks(graph, 0.5, 0.25, 0.25, seed=seed)
    graph.metadata["num_classes"] = NUM_CLASSES
    return graph


def matrix_megabytes(matrix) -> float:
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        nbytes = csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes
    else:
        nbytes = np.asarray(matrix).nbytes
    return nbytes / 2 ** 20


def bench_step1(graph, rounds: int, seed: int = 0):
    """Time the federated knowledge extractor; returns (rounds/sec, P̂)."""
    extractor = FederatedKnowledgeExtractor(
        [graph], hidden=64,
        config=FederatedConfig(rounds=rounds, local_epochs=2, seed=seed))
    start = time.perf_counter()
    extractor.run()
    elapsed = time.perf_counter() - start
    probs = extractor.client_probabilities()[0]
    return rounds / elapsed, probs


def bench_client(graph, probs, config: AdaFGLConfig, epochs: int) -> Dict:
    """Build one Step-2 client and time setup + training epochs."""
    tracemalloc.start()
    start = time.perf_counter()
    client = PersonalizedClient(0, graph, probs, config)
    if client.prop_cache is not None:
        # Fold the one-off block precompute into setup, where it belongs.
        client.prop_cache.concatenated(config.k_prop)
    setup_sec = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    start = time.perf_counter()
    for _ in range(epochs):
        client.train_epoch()
    train_sec = time.perf_counter() - start

    return {
        "setup_sec": round(setup_sec, 4),
        "setup_peak_mb": round(peak_bytes / 2 ** 20, 3),
        "matrix_mb": round(matrix_megabytes(client.propagation), 3),
        "sec_per_epoch": round(train_sec / epochs, 4),
        "epochs_per_sec": round(epochs / train_sec, 3),
        "test_accuracy": round(client.evaluate("test"), 4),
    }


def run_benchmark(sizes: List[int], epochs: int = 10, step1_rounds: int = 5,
                  top_k: int = 32, seed: int = 0,
                  output_name: str = "BENCH_step2",
                  pool_kwargs: Optional[Dict] = None) -> Dict:
    base = AdaFGLConfig(hidden=64, seed=seed)
    dense_config = dataclasses.replace(
        base, sparse_propagation=False, use_propagation_cache=False)
    sparse_config = dataclasses.replace(
        base, sparse_propagation=True, propagation_top_k=top_k,
        use_propagation_cache=True)

    report: Dict = {
        "config": {
            "epochs": epochs, "step1_rounds": step1_rounds, "top_k": top_k,
            "num_features": NUM_FEATURES, "num_classes": NUM_CLASSES,
            "k_prop": base.k_prop, "seed": seed,
        },
        "sizes": [],
    }
    for num_nodes in sizes:
        graph = make_graph(num_nodes, seed=seed)
        rounds_per_sec, probs = bench_step1(graph, step1_rounds, seed=seed)
        dense = bench_client(graph, probs, dense_config, epochs)
        sparse = bench_client(graph, probs, sparse_config, epochs)
        entry = {
            "num_nodes": num_nodes,
            "step1_rounds_per_sec": round(rounds_per_sec, 3),
            "dense": dense,
            "sparse": sparse,
            "epoch_speedup": round(
                dense["sec_per_epoch"] / sparse["sec_per_epoch"], 2),
            "matrix_memory_ratio": round(
                dense["matrix_mb"] / max(sparse["matrix_mb"], 1e-9), 2),
            "accuracy_gap": round(
                dense["test_accuracy"] - sparse["test_accuracy"], 4),
        }
        report["sizes"].append(entry)
        print(f"n={num_nodes:>6}  step1 {rounds_per_sec:6.2f} r/s  "
              f"dense {dense['sec_per_epoch']:.3f}s/ep  "
              f"sparse {sparse['sec_per_epoch']:.3f}s/ep  "
              f"speedup {entry['epoch_speedup']:.2f}x  "
              f"mem {dense['matrix_mb']:.1f}->{sparse['matrix_mb']:.1f} MB  "
              f"acc {dense['test_accuracy']:.3f}/{sparse['test_accuracy']:.3f}")

    # Step-2 persistent-pool timing + exact parity (PR 3).
    report["step2_pool"] = run_step2_pool(seed=seed, **(pool_kwargs or {}))

    record_json(output_name, report)
    return report


def _timed_step1_run(graphs, model: str, hidden: int,
                     config: FederatedConfig):
    """Train one Step-1 federation; return (trainer, history, rounds/sec)."""
    trainer = FederatedGNN(graphs, model, hidden=hidden, config=config)
    start = time.perf_counter()
    history = trainer.run()
    elapsed = time.perf_counter() - start
    return trainer, history, config.rounds / elapsed


def run_step1_backends(num_clients: int = 50, nodes_per_client: int = 40,
                       rounds: int = 10, local_epochs: int = 5,
                       hidden: int = 32, num_features: int = 32,
                       num_workers: int = 2, model: str = "gcn",
                       seed: int = 0,
                       worker_speeds: Sequence[float] = (1.0, 0.7),
                       output_name: str = "BENCH_step1") -> Dict:
    """Step-1 rounds/sec for every execution backend on one client split.

    Uses a many-small-clients split (the regime real cross-silo federations
    live in, and where per-client Python overhead dominates) with the same
    federated GCN the AdaFGL knowledge extractor trains (``model="sgc"``
    benchmarks the batched SGC/propagation family instead).  Every backend
    must reproduce the serial training history; ``loss_gap`` records the
    largest per-round deviation as a parity check.

    The written artifact additionally carries the ``straggler`` (pipelined
    sync under skewed worker speeds), ``step1_async`` (bounded-staleness
    rounds) and ``delta_codec`` (lossy top-k transport) sections — all on
    the same client split so the numbers are comparable.
    """
    graphs = [make_graph(nodes_per_client, seed=seed + index,
                         num_features=num_features)
              for index in range(num_clients)]
    backends = [("serial", 0), ("process_pool", num_workers), ("batched", 0)]

    report: Dict = {
        "config": {
            "num_clients": num_clients, "nodes_per_client": nodes_per_client,
            "rounds": rounds, "local_epochs": local_epochs, "hidden": hidden,
            "num_features": num_features, "num_workers": num_workers,
            "model": model, "seed": seed,
        },
        "backends": {},
    }
    # Backends are interleaved over ``repeats`` passes and each reports its
    # best throughput: single-shot pairings on a shared timing host load-bias
    # whichever arm hits a noisy window, while per-arm best over interleaved
    # repeats is a stable estimator.  Parity checks run on every pass.
    repeats = 3
    reference_loss: Optional[List[float]] = None
    best: Dict[str, float] = {}
    accuracy: Dict[str, float] = {}
    loss_gaps: Dict[str, float] = {}
    for _ in range(repeats):
        for backend, workers in backends:
            config = FederatedConfig(
                rounds=rounds, local_epochs=local_epochs, seed=seed,
                backend=backend, num_workers=workers, eval_every=rounds)
            trainer, history, rounds_per_sec = _timed_step1_run(
                graphs, model, hidden, config)
            if reference_loss is None:
                reference_loss = history.loss
            best[backend] = max(best.get(backend, 0.0), rounds_per_sec)
            accuracy[backend] = round(trainer.evaluate("test"), 4)
            loss_gaps[backend] = max(
                loss_gaps.get(backend, 0.0),
                float(np.max(np.abs(np.asarray(history.loss)
                                    - np.asarray(reference_loss)))))
    serial_rps = best["serial"]
    for backend, _ in backends:
        rounds_per_sec = best[backend]
        entry = {
            "rounds_per_sec": round(rounds_per_sec, 3),
            "sec_per_round": round(elapsed_per_round(rounds_per_sec), 4),
            "speedup_vs_serial": round(rounds_per_sec / serial_rps, 2),
            "test_accuracy": accuracy[backend],
            "loss_gap": loss_gaps[backend],
        }
        report["backends"][backend] = entry
        print(f"step1 {backend:12s} {rounds_per_sec:7.2f} rounds/s  "
              f"({entry['speedup_vs_serial']:.2f}x serial)  "
              f"acc {entry['test_accuracy']:.3f}  "
              f"loss_gap {entry['loss_gap']:.2e}")

    # Twice the backend-suite rounds: the straggler suite measures the
    # steady-state pipelined round loop, so the one-time pool spawn +
    # resident bootstrap should amortize out of the per-round figure.
    report["straggler"] = run_step1_straggler(
        graphs, rounds=2 * rounds, local_epochs=local_epochs, hidden=hidden,
        num_workers=num_workers, model=model, seed=seed,
        worker_speeds=worker_speeds)
    # Same 2×rounds as the straggler suite: one async seal corresponds to
    # one sync round here (B=1 merges every shard report), so the
    # accuracy_gap_vs_sync comparison is round-for-round.
    report["step1_async"] = run_step1_async(
        graphs, rounds=2 * rounds, local_epochs=local_epochs, hidden=hidden,
        num_workers=num_workers, model=model, seed=seed,
        worker_speeds=worker_speeds,
        sync_accuracy=report["straggler"]["process_pool"]["test_accuracy"])
    report["delta_codec"] = run_delta_codec(
        graphs, rounds=rounds, local_epochs=local_epochs, hidden=hidden,
        num_workers=num_workers, model=model, seed=seed)
    # Decoupled-hop plan families (PR 5): serial vs batched GAMLP/GPR-GNN
    # on the same client split, with the hard loss_gap=0.0 parity bar.
    report["models"] = run_step1_models(
        graphs, rounds=rounds, local_epochs=local_epochs, hidden=hidden,
        seed=seed)
    # Array-backend arms (PR 8): the fastest execution backend (batched)
    # under numpy vs jit kernels, bitwise parity enforced.
    report["array_backend"] = run_step1_array_backends(
        graphs, rounds=rounds, local_epochs=local_epochs, hidden=hidden,
        model=model, seed=seed)

    record_json(output_name, report)
    return report


def run_step1_array_backends(graphs, rounds: int = 10, local_epochs: int = 5,
                             hidden: int = 32, model: str = "gcn",
                             seed: int = 0, repeats: int = 3) -> Dict:
    """Batched-engine rounds/sec under each array backend (numpy vs jit).

    Same interleaved best-of-``repeats`` protocol as the backend suite.
    The training history must be **bitwise identical** across arms — the
    jit backend's default kernel set is parity-safe (numba CSR kernels
    reproduce scipy's loop nest exactly; without numba the scipy fallbacks
    serve) — so ``loss_bitwise_equal`` is a hard gate, not a tolerance.
    ``numba_available`` is recorded so a fallback-regime number (jit ≈
    numpy, the compiled kernels being the entire difference) is never
    mistaken for a compiled-kernel result.
    """
    from repro.autograd import numba_available

    section: Dict = {"numba_available": numba_available()}
    best: Dict[str, float] = {}
    losses: Dict[str, List[float]] = {}
    accuracy: Dict[str, float] = {}
    for _ in range(repeats):
        for name in ("numpy", "jit"):
            config = FederatedConfig(
                rounds=rounds, local_epochs=local_epochs, seed=seed,
                backend="batched", array_backend=name, eval_every=rounds)
            trainer, history, rounds_per_sec = _timed_step1_run(
                graphs, model, hidden, config)
            best[name] = max(best.get(name, 0.0), rounds_per_sec)
            losses[name] = history.loss
            accuracy[name] = round(trainer.evaluate("test"), 4)
    for name in ("numpy", "jit"):
        section[name] = {
            "rounds_per_sec": round(best[name], 3),
            "sec_per_round": round(elapsed_per_round(best[name]), 4),
            "test_accuracy": accuracy[name],
        }
        print(f"step1 batched/{name:6s} {best[name]:7.2f} rounds/s  "
              f"acc {accuracy[name]:.3f}")
    section["speedup_jit_vs_numpy"] = round(best["jit"] / best["numpy"], 2)
    section["loss_bitwise_equal"] = bool(losses["numpy"] == losses["jit"])
    assert section["loss_bitwise_equal"], \
        "jit array backend diverged bitwise from the numpy reference"
    return section


def run_step1_models(graphs, models: Sequence[str] = ("gamlp", "gprgnn"),
                     rounds: int = 10, local_epochs: int = 5,
                     hidden: int = 32, seed: int = 0,
                     repeats: int = 3) -> Dict:
    """Serial vs batched rounds/sec for the decoupled-hop model families.

    GAMLP precomputes the constant hop stack once per plan (zero sparse work
    in the epoch loop); GPR-GNN fuses its k differentiable hops into one
    block-diagonal spmm each.  As everywhere in this artifact, arms are
    interleaved over ``repeats`` passes, each reports its best throughput,
    and ``loss_gap`` (checked on every pass) must be exactly 0.0 — the
    batched plans change scheduling, never results.
    """
    section: Dict = {}
    for model in models:
        best = {"serial": 0.0, "batched": 0.0}
        accuracy: Dict[str, float] = {}
        loss_gap = 0.0
        for _ in range(max(1, repeats)):
            reference: Optional[List[float]] = None
            for backend in ("serial", "batched"):
                config = FederatedConfig(
                    rounds=rounds, local_epochs=local_epochs, seed=seed,
                    backend=backend, eval_every=rounds)
                trainer, history, rounds_per_sec = _timed_step1_run(
                    graphs, model, hidden, config)
                if backend == "batched" and \
                        trainer.backend.last_fallback is not None:
                    # Fail loudly: a silent serial fallback would be
                    # recorded as a ~1x "batched" speedup.
                    raise RuntimeError(
                        f"batched {model} fell back to serial: "
                        f"{trainer.backend.last_fallback}")
                if reference is None:
                    reference = history.loss
                loss_gap = max(loss_gap, float(np.max(np.abs(
                    np.asarray(history.loss) - np.asarray(reference)))))
                best[backend] = max(best[backend], rounds_per_sec)
                accuracy[backend] = round(trainer.evaluate("test"), 4)
        section[model] = {
            "serial": {"rounds_per_sec": round(best["serial"], 3),
                       "test_accuracy": accuracy["serial"]},
            "batched": {
                "rounds_per_sec": round(best["batched"], 3),
                "speedup_vs_serial": round(
                    best["batched"] / best["serial"], 2),
                "test_accuracy": accuracy["batched"],
                "loss_gap": loss_gap,
            },
        }
        entry = section[model]["batched"]
        print(f"step1 {model:8s} batched {entry['rounds_per_sec']:7.2f} "
              f"rounds/s  ({entry['speedup_vs_serial']:.2f}x serial)  "
              f"loss_gap {entry['loss_gap']:.2e}")
    return section


def elapsed_per_round(rounds_per_sec: float) -> float:
    return 1.0 / rounds_per_sec if rounds_per_sec else float("inf")


def run_step1_straggler(graphs, rounds: int = 10, local_epochs: int = 5,
                        hidden: int = 32, num_workers: int = 2,
                        model: str = "gcn", seed: int = 0,
                        worker_speeds: Sequence[float] = (1.0, 0.7),
                        repeats: int = 3) -> Dict:
    """Pipelined sync rounds under simulated straggler skew, vs serial.

    Per-round evaluation (``eval_every=1``, the library default) makes the
    coordinator-side work visible: the pipelined loop hides it behind worker
    training, the serial loop pays it in line.  One worker runs at a
    fraction of full speed, so the streaming fold's straggler overlap is
    measured rather than asserted.  ``loss_gap`` must stay 0.0 — pipelining
    and simulated slowness change timing, never results.

    Serial and pipelined runs are interleaved ``repeats`` times and each
    arm reports its best throughput: the timing host is shared, so a single
    pairing can land on a load spike for either arm; per-arm best over
    interleaved repeats is the standard noise-robust estimator, and the
    parity check still runs on every repeat.
    """
    serial_config = FederatedConfig(
        rounds=rounds, local_epochs=local_epochs, seed=seed,
        backend="serial", eval_every=1)
    pool_config = FederatedConfig(
        rounds=rounds, local_epochs=local_epochs, seed=seed,
        backend="process_pool", num_workers=num_workers, eval_every=1,
        worker_speeds=list(worker_speeds))

    serial_rps = rounds_per_sec = 0.0
    loss_gap = 0.0
    trainer = stats = None
    for _ in range(max(1, repeats)):
        _, serial_history, serial_trial = _timed_step1_run(
            graphs, model, hidden, serial_config)
        trial_trainer, history, pool_trial = _timed_step1_run(
            graphs, model, hidden, pool_config)
        loss_gap = max(loss_gap, float(np.max(np.abs(
            np.asarray(history.loss) - np.asarray(serial_history.loss)))))
        serial_rps = max(serial_rps, serial_trial)
        if pool_trial >= rounds_per_sec:
            rounds_per_sec = pool_trial
            trainer = trial_trainer
            stats = trial_trainer.backend.last_pipeline_stats or {}

    section = {
        "worker_speeds": list(worker_speeds),
        "eval_every": 1,
        "rounds": rounds,
        "repeats": max(1, repeats),
        "serial": {
            "rounds_per_sec": round(serial_rps, 3),
        },
        "process_pool": {
            "rounds_per_sec": round(rounds_per_sec, 3),
            "speedup_vs_serial": round(rounds_per_sec / serial_rps, 2),
            "test_accuracy": round(trainer.evaluate("test"), 4),
            "worker_utilization": round(
                stats.get("worker_utilization", 0.0), 3),
            "straggler_wait_sec": round(
                stats.get("straggler_wait_sec", 0.0), 4),
            "loss_gap": loss_gap,
        },
    }
    entry = section["process_pool"]
    print(f"step1 straggler   {rounds_per_sec:7.2f} rounds/s  "
          f"({entry['speedup_vs_serial']:.2f}x serial)  "
          f"util {entry['worker_utilization']:.2f}  "
          f"loss_gap {entry['loss_gap']:.2e}")
    return section


def run_step1_async(graphs, rounds: int = 10, local_epochs: int = 5,
                    hidden: int = 32, num_workers: int = 2,
                    model: str = "gcn", seed: int = 0,
                    async_buffer: int = 1, staleness_cap: int = 3,
                    worker_speeds: Sequence[float] = (1.0, 0.7),
                    sync_accuracy: Optional[float] = None) -> Dict:
    """Bounded-staleness async rounds: throughput, utilization, lag profile.

    Workers never wait for a round barrier — the server seals an aggregate
    after ``async_buffer`` shard reports and stale reports are merged with
    discounted weight — so a slow worker costs lag, not wall-clock.  The
    per-client round-lag distribution comes from the recorded history;
    ``accuracy_gap_vs_sync`` closes the loop against the synchronous run on
    the same split.
    """
    config = FederatedConfig(
        rounds=rounds, local_epochs=local_epochs, seed=seed,
        backend="process_pool", num_workers=num_workers, eval_every=1,
        round_mode="async", async_buffer=async_buffer,
        staleness_cap=staleness_cap, worker_speeds=list(worker_speeds))
    trainer, history, rounds_per_sec = _timed_step1_run(
        graphs, model, hidden, config)
    stats = trainer.backend.last_pipeline_stats or {}

    last_lag = history.client_lag[-1] if history.client_lag else {}
    accuracy = trainer.evaluate("test")
    section = {
        "config": {
            "async_buffer": async_buffer, "staleness_cap": staleness_cap,
            "worker_speeds": list(worker_speeds), "rounds": rounds,
        },
        "rounds_per_sec": round(rounds_per_sec, 3),
        "test_accuracy": round(accuracy, 4),
        "worker_utilization": round(stats.get("worker_utilization", 0.0), 3),
        "reports_merged": stats.get("reports_merged", 0),
        "reports_dropped": stats.get("reports_dropped", 0),
        "mean_report_lag": round(stats.get("mean_report_lag", 0.0), 3),
        "max_report_lag": stats.get("max_report_lag", 0),
        "per_client_lag": {str(cid): lag
                           for cid, lag in sorted(last_lag.items())},
    }
    if sync_accuracy is not None:
        section["accuracy_gap_vs_sync"] = round(sync_accuracy - accuracy, 4)
    print(f"step1 async       {rounds_per_sec:7.2f} seals/s   "
          f"util {section['worker_utilization']:.2f}  "
          f"lag mean {section['mean_report_lag']:.2f} "
          f"max {section['max_report_lag']}  "
          f"acc {section['test_accuracy']:.3f}")
    return section


def run_delta_codec(graphs, rounds: int = 10, local_epochs: int = 5,
                    hidden: int = 32, num_workers: int = 2,
                    model: str = "gcn", seed: int = 0,
                    top_ks: Sequence[int] = (16, 64),
                    bits_grid: Sequence[int] = (4, 8)) -> Dict:
    """Accuracy-vs-bytes for the upload transport codecs.

    The lossless bit-delta ships one 8-byte word per parameter per round;
    ``delta_codec="topk"`` ships only the k largest-magnitude delta entries
    (index + value words) with worker-side error feedback, and
    ``delta_codec="qtopk"`` additionally packs the kept values into
    ``delta_bits``-per-value uniform-grid words (the ``bits_grid`` axis, at
    the largest ``top_ks`` sparsity so the two lossy stages compose).
    Bytes are read off the same ``backend.transport`` accounting the engine
    always keeps, so the trade-off point is measured, not estimated.
    """
    quant_k = int(max(top_ks))
    section: Dict = {"codecs": []}
    for label, codec, k, bits in (
            [("bitdelta", "bitdelta", 0, 0)]
            + [(f"topk_{k}", "topk", int(k), 0) for k in top_ks]
            + [(f"qtopk_{quant_k}_b{bits}", "qtopk", quant_k, int(bits))
               for bits in bits_grid]):
        config = FederatedConfig(
            rounds=rounds, local_epochs=local_epochs, seed=seed,
            backend="process_pool", num_workers=num_workers,
            eval_every=rounds, delta_codec=codec,
            delta_top_k=max(1, k), delta_bits=max(2, bits))
        trainer, history, _ = _timed_step1_run(graphs, model, hidden, config)
        uploaded_values = trainer.backend.transport.uploaded[
            "parameter_delta"]
        entry = {
            "codec": label,
            "upload_mb_total": round(uploaded_values * 8 / 2 ** 20, 3),
            "upload_values_per_round": round(uploaded_values / rounds, 1),
            "test_accuracy": round(trainer.evaluate("test"), 4),
            "final_loss": round(history.loss[-1], 4),
        }
        if codec == "qtopk":
            entry["delta_bits"] = int(bits)
        section["codecs"].append(entry)
        print(f"step1 codec {label:10s} "
              f"{entry['upload_mb_total']:7.3f} MB up  "
              f"acc {entry['test_accuracy']:.3f}")
    reference = section["codecs"][0]
    for entry in section["codecs"][1:]:
        entry["bytes_ratio_vs_bitdelta"] = round(
            entry["upload_mb_total"]
            / max(reference["upload_mb_total"], 1e-9), 3)
        entry["accuracy_gap_vs_bitdelta"] = round(
            reference["test_accuracy"] - entry["test_accuracy"], 4)

    # qtopk index transport: sorted top-k indices ship delta+LEB128 packed
    # instead of as raw int64 words.  Measured on the top-k index structure
    # of the last trained global state (real magnitudes, real shapes).
    from repro.federated.engine.persistent import pack_indices

    raw_words = packed_words = 0
    for value in trainer.server.global_state.values():
        flat = np.abs(np.asarray(value, dtype=np.float64)).ravel()
        k = min(quant_k, flat.size)
        keep = np.sort(np.argpartition(flat, flat.size - k)[flat.size - k:])
        packed = pack_indices(keep)
        raw_words += k
        packed_words += -(-packed.nbytes // 8)
    section["index_transport"] = {
        "top_k": quant_k,
        "raw_index_words": int(raw_words),
        "varint_index_words": int(packed_words),
        "index_bytes_ratio": round(packed_words / max(raw_words, 1), 3),
    }
    print(f"step1 codec index varint: {raw_words} -> {packed_words} words "
          f"({section['index_transport']['index_bytes_ratio']:.2f}x)")
    return section


def run_step2_pool(num_clients: int = 8, nodes_per_client: int = 250,
                   epochs: int = 10, step1_rounds: int = 3,
                   num_workers: int = 2, seed: int = 0) -> Dict:
    """Step-2 serial vs persistent-pool timing plus an exact parity check.

    Step 1 is pinned serial on both sides so the comparison isolates the
    Step-2 execution path.  ``report_gap`` is the largest per-client accuracy
    deviation between the two paths — the persistent pool must reproduce the
    serial ``client_reports`` exactly (0.0).
    """
    graphs = [make_graph(nodes_per_client, seed=seed + index)
              for index in range(num_clients)]
    base = AdaFGLConfig(hidden=64, seed=seed, rounds=step1_rounds,
                        local_epochs=2, personalized_epochs=epochs,
                        sparse_propagation=True, propagation_top_k=32,
                        step1_backend="serial")

    section: Dict = {
        "config": {
            "num_clients": num_clients,
            "nodes_per_client": nodes_per_client, "epochs": epochs,
            "step1_rounds": step1_rounds, "num_workers": num_workers,
            "seed": seed,
        },
    }
    reports = {}
    for label, workers in (("serial", 0), ("persistent_pool", num_workers)):
        method = AdaFGL(graphs, dataclasses.replace(base,
                                                    num_workers=workers))
        method.run_step1()
        start = time.perf_counter()
        method.run_step2()
        elapsed = time.perf_counter() - start
        reports[label] = [r.accuracy for r in method.client_reports()]
        section[label] = {
            "step2_sec": round(elapsed, 4),
            "epochs_per_sec": round(epochs / elapsed, 3),
            "test_accuracy": round(method.evaluate("test"), 4),
        }
    section["speedup_vs_serial"] = round(
        section["serial"]["step2_sec"]
        / section["persistent_pool"]["step2_sec"], 2)
    section["report_gap"] = float(np.max(np.abs(
        np.asarray(reports["serial"])
        - np.asarray(reports["persistent_pool"]))))
    print(f"step2 serial {section['serial']['step2_sec']:.2f}s  "
          f"pool {section['persistent_pool']['step2_sec']:.2f}s  "
          f"({section['speedup_vs_serial']:.2f}x)  "
          f"report_gap {section['report_gap']:.2e}")
    return section


def run_faults_suite(num_clients: int = 8, nodes_per_client: int = 60,
                     rounds: int = 6, local_epochs: int = 3,
                     hidden: int = 32, num_features: int = 32,
                     num_workers: int = 2, model: str = "gcn", seed: int = 0,
                     crash_rates: Sequence[float] = (0.05, 0.15, 0.3),
                     stall_duration: float = 0.5,
                     round_timeout: float = 0.25,
                     output_name: str = "BENCH_faults") -> Dict:
    """Fault-tolerance cost model for the persistent-worker engine.

    Three sections against a fault-free baseline on one client split:

    * ``recovery`` — a single targeted worker crash under the ``restart``
      and ``redistribute`` policies.  ``loss_gap`` must be 0.0: recovery
      snapshots roll the lost residents back exactly, so the crash costs
      wall-clock (``overhead_sec``) but never accuracy.
    * ``chaos`` — :meth:`FaultPlan.seeded` sweeps over crash rates under
      ``restart``: survival, recovery counts and accuracy delta per rate.
    * ``timeout`` — one stalled worker against ``round_timeout``: the round
      drops the late shard and reweights, trading accuracy for latency
      (dropped report counts and the accuracy delta are recorded).
    """
    graphs = [make_graph(nodes_per_client, seed=seed + index,
                         num_features=num_features)
              for index in range(num_clients)]

    def run(fault_plan=None, **kwargs):
        config = FederatedConfig(
            rounds=rounds, local_epochs=local_epochs, seed=seed,
            backend="process_pool", num_workers=num_workers,
            intra_worker="serial", fault_plan=fault_plan, **kwargs)
        trainer, history, rounds_per_sec = _timed_step1_run(
            graphs, model, hidden, config)
        stats = dict(getattr(trainer.backend, "fault_stats", {}) or {})
        return trainer, history, rounds_per_sec, stats

    baseline_trainer, baseline, baseline_rps, _ = run()
    report: Dict = {
        "num_clients": num_clients,
        "rounds": rounds,
        "num_workers": num_workers,
        "model": model,
        "baseline": {
            "rounds_per_sec": round(baseline_rps, 3),
            "test_accuracy": round(baseline_trainer.evaluate("test"), 4),
        },
    }

    report["recovery"] = {}
    for policy in ("restart", "redistribute"):
        plan = FaultPlan([FaultEvent(worker=0, dispatch=2, kind="crash")])
        trainer, history, rps, stats = run(fault_plan=plan,
                                           on_worker_failure=policy)
        loss_gap = float(np.max(np.abs(
            np.asarray(history.loss) - np.asarray(baseline.loss))))
        entry = {
            "rounds_per_sec": round(rps, 3),
            "overhead_sec": round(
                elapsed_per_round(rps) * rounds
                - elapsed_per_round(baseline_rps) * rounds, 4),
            "test_accuracy": round(trainer.evaluate("test"), 4),
            "loss_gap": loss_gap,
            "fault_stats": stats,
        }
        report["recovery"][policy] = entry
        print(f"faults {policy:>12}  {rps:6.2f} r/s  "
              f"overhead {entry['overhead_sec']:+.3f}s  "
              f"loss_gap {loss_gap:.2e}")

    report["chaos"] = []
    for rate in crash_rates:
        plan = FaultPlan.seeded(seed, num_workers, dispatches=rounds,
                                crash_rate=rate)
        scheduled = plan.remaining
        trainer, history, rps, stats = run(fault_plan=plan,
                                           on_worker_failure="restart")
        entry = {
            "crash_rate": rate,
            "scheduled": scheduled,
            "fired": plan.fired_counts(),
            "rounds_per_sec": round(rps, 3),
            "test_accuracy": round(trainer.evaluate("test"), 4),
            "accuracy_delta": round(
                trainer.evaluate("test")
                - report["baseline"]["test_accuracy"], 4),
            "fault_stats": stats,
        }
        report["chaos"].append(entry)
        print(f"faults chaos p={rate:<5} crashes {stats.get('crashes', 0)}  "
              f"{rps:6.2f} r/s  acc {entry['test_accuracy']:.3f} "
              f"({entry['accuracy_delta']:+.3f})")

    stall_plan = FaultPlan([FaultEvent(worker=0, dispatch=2, kind="stall",
                                       duration=stall_duration)])
    trainer, history, rps, stats = run(fault_plan=stall_plan,
                                       on_worker_failure="restart",
                                       round_timeout=round_timeout)
    report["timeout"] = {
        "stall_duration": stall_duration,
        "round_timeout": round_timeout,
        "rounds_per_sec": round(rps, 3),
        "test_accuracy": round(trainer.evaluate("test"), 4),
        "accuracy_delta": round(
            trainer.evaluate("test")
            - report["baseline"]["test_accuracy"], 4),
        "dropped_reports": stats.get("dropped_reports", 0),
        "fault_stats": stats,
    }
    print(f"faults timeout    {rps:6.2f} r/s  "
          f"dropped {report['timeout']['dropped_reports']}  "
          f"acc {report['timeout']['test_accuracy']:.3f} "
          f"({report['timeout']['accuracy_delta']:+.3f})")

    record_json(output_name, report)
    return report


def run_topk_curve(num_nodes: int = 1000,
                   ks: Sequence[int] = (4, 8, 16, 32, 64),
                   epochs: int = 10, step1_rounds: int = 5, seed: int = 0,
                   output_name: str = "BENCH_topk") -> Dict:
    """Accuracy-vs-k curve for ``propagation_top_k`` (dense as reference).

    Reuses one Step-1 run per graph size, then trains a Step-2 client per
    sparsity level, recording test accuracy, epoch time and P̃ memory so a
    per-dataset default k can be read off the curve.
    """
    graph = make_graph(num_nodes, seed=seed)
    _, probs = bench_step1(graph, step1_rounds, seed=seed)
    base = AdaFGLConfig(hidden=64, seed=seed)

    dense = bench_client(graph, probs, dataclasses.replace(
        base, sparse_propagation=False, use_propagation_cache=False), epochs)
    report: Dict = {
        "config": {"num_nodes": num_nodes, "epochs": epochs,
                   "step1_rounds": step1_rounds, "seed": seed,
                   "k_prop": base.k_prop},
        "dense": dense,
        "curve": [],
    }
    print(f"topk  dense      acc {dense['test_accuracy']:.3f}  "
          f"{dense['sec_per_epoch']:.3f}s/ep  {dense['matrix_mb']:.1f} MB")
    for k in ks:
        sparse = bench_client(graph, probs, dataclasses.replace(
            base, sparse_propagation=True, propagation_top_k=int(k),
            use_propagation_cache=True), epochs)
        entry = {
            "top_k": int(k),
            **sparse,
            "accuracy_gap_vs_dense": round(
                dense["test_accuracy"] - sparse["test_accuracy"], 4),
            "epoch_speedup_vs_dense": round(
                dense["sec_per_epoch"] / sparse["sec_per_epoch"], 2),
        }
        report["curve"].append(entry)
        print(f"topk  k={k:<8d} acc {sparse['test_accuracy']:.3f}  "
              f"{sparse['sec_per_epoch']:.3f}s/ep  "
              f"{sparse['matrix_mb']:.2f} MB  "
              f"gap {entry['accuracy_gap_vs_dense']:+.4f}")

    record_json(output_name, report)
    return report


def main(argv: Optional[List[str]] = None) -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="step2",
                        choices=["step2", "step1", "step1_async", "topk",
                                 "faults", "all"])
    parser.add_argument("--nodes", default="500,1000,2000",
                        help="comma-separated cSBM sizes (step2 suite)")
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--step1-rounds", type=int, default=5)
    parser.add_argument("--top-k", type=int, default=32)
    parser.add_argument("--top-k-grid", default="4,8,16,32,64",
                        help="comma-separated k values (topk suite)")
    parser.add_argument("--clients", type=int, default=50,
                        help="client count (step1 suite)")
    parser.add_argument("--client-nodes", type=int, default=40,
                        help="nodes per client (step1 suite)")
    parser.add_argument("--rounds", type=int, default=10,
                        help="federated rounds (step1 suite)")
    parser.add_argument("--local-epochs", type=int, default=5,
                        help="local epochs per round (step1 suite)")
    parser.add_argument("--workers", type=int, default=2,
                        help="process-pool width (step1 suite)")
    parser.add_argument("--model", default="gcn",
                        choices=["gcn", "sgc", "gamlp", "gprgnn"],
                        help="federated model (step1 suite; sgc/gamlp/"
                             "gprgnn exercise the batched propagation and "
                             "decoupled-hop families)")
    parser.add_argument("--async-buffer", type=int, default=1,
                        help="shard reports per server seal "
                             "(step1_async suite)")
    parser.add_argument("--staleness-cap", type=int, default=3,
                        help="drop reports older than this many server "
                             "rounds (step1_async suite)")
    parser.add_argument("--worker-speeds", default="1.0,0.7",
                        help="comma-separated simulated worker speeds "
                             "(straggler/async suites)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output-name", default=None,
                        help="override the JSON artifact name")
    args = parser.parse_args(argv)

    def parse_ints(text: str, flag: str) -> List[int]:
        try:
            values = [int(part) for part in text.split(",") if part]
        except ValueError:
            parser.error(f"{flag} expects comma-separated integers, "
                         f"got {text!r}")
        if not values:
            parser.error(f"{flag} must name at least one value")
        return values

    if args.top_k < 1:
        parser.error("--top-k must be >= 1")

    results: Dict = {}
    if args.suite in ("step2", "all"):
        sizes = parse_ints(args.nodes, "--nodes")
        results["step2"] = run_benchmark(
            sizes, epochs=args.epochs, step1_rounds=args.step1_rounds,
            top_k=args.top_k, seed=args.seed,
            output_name=(args.output_name if args.suite == "step2"
                         and args.output_name else "BENCH_step2"))
    if args.suite in ("step1", "all"):
        results["step1"] = run_step1_backends(
            num_clients=args.clients, nodes_per_client=args.client_nodes,
            rounds=args.rounds, local_epochs=args.local_epochs,
            num_workers=args.workers, model=args.model, seed=args.seed,
            worker_speeds=[float(part)
                           for part in args.worker_speeds.split(",") if part],
            output_name=(args.output_name if args.suite == "step1"
                         and args.output_name else "BENCH_step1"))
    if args.suite == "step1_async":
        # Standalone async iteration loop; the canonical numbers land in
        # BENCH_step1.json via the full step1 suite above.
        speeds = [float(part) for part in args.worker_speeds.split(",")
                  if part]
        graphs = [make_graph(args.client_nodes, seed=args.seed + index,
                             num_features=32)
                  for index in range(args.clients)]
        results["step1_async"] = run_step1_async(
            graphs, rounds=args.rounds, local_epochs=args.local_epochs,
            num_workers=args.workers, model=args.model, seed=args.seed,
            async_buffer=args.async_buffer,
            staleness_cap=args.staleness_cap, worker_speeds=speeds)
        record_json(args.output_name or "BENCH_step1_async",
                    results["step1_async"])
    if args.suite in ("faults", "all"):
        results["faults"] = run_faults_suite(
            num_clients=args.clients, nodes_per_client=args.client_nodes,
            rounds=args.rounds, local_epochs=args.local_epochs,
            num_workers=args.workers, model=args.model, seed=args.seed,
            output_name=(args.output_name if args.suite == "faults"
                         and args.output_name else "BENCH_faults"))
    if args.suite in ("topk", "all"):
        results["topk"] = run_topk_curve(
            ks=parse_ints(args.top_k_grid, "--top-k-grid"),
            epochs=args.epochs, step1_rounds=args.step1_rounds,
            seed=args.seed,
            output_name=(args.output_name if args.suite == "topk"
                         and args.output_name else "BENCH_topk"))
    return results if args.suite == "all" else results[args.suite]


if __name__ == "__main__":
    main()

"""Timing benchmark harness for the sparse-first propagation engine.

Measures, on cSBM graphs of growing size:

* **Step-1 rounds/sec** — federated collaborative training throughput of the
  knowledge extractor;
* **Step-2 epochs/sec** — personalized training throughput of one client,
  for the seed-equivalent *dense* path (dense P̃, no precompute cache) and
  for the *sparse engine* (top-k CSR P̃ + :class:`PropagationCache`);
* **peak P̃ memory** — tracemalloc peak during client construction plus the
  exact byte size of the stored propagation matrix;
* **accuracy parity** — transductive test accuracy of both paths after the
  same number of epochs.

Results are written to ``benchmarks/results/BENCH_step2.json`` so the perf
trajectory is tracked in-repo from this PR onward.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_perf.py --nodes 500,1000,2000

A small smoke version runs under pytest via ``test_bench_perf.py`` when the
``bench`` marker is enabled (``pytest --run-bench`` or ``REPRO_RUN_BENCH=1``);
plain tier-1 runs skip it.
"""

from __future__ import annotations

import argparse
import dataclasses
import time
import tracemalloc
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.core import AdaFGLConfig, FederatedKnowledgeExtractor
from repro.core.adafgl import PersonalizedClient
from repro.datasets import CSBMConfig, generate_csbm, make_split_masks
from repro.federated import FederatedConfig

try:  # imported as benchmarks.bench_perf (pytest) or run as a script
    from benchmarks.bench_utils import record_json
except ImportError:  # pragma: no cover - script mode
    from bench_utils import record_json

NUM_FEATURES = 128
NUM_CLASSES = 5


def make_graph(num_nodes: int, seed: int = 0):
    config = CSBMConfig(
        num_nodes=num_nodes, num_classes=NUM_CLASSES,
        num_features=NUM_FEATURES, avg_degree=10.0, edge_homophily=0.6,
        feature_signal=1.0, blocks_per_class=2, seed=seed,
        name=f"bench-{num_nodes}")
    graph = generate_csbm(config)
    make_split_masks(graph, 0.5, 0.25, 0.25, seed=seed)
    graph.metadata["num_classes"] = NUM_CLASSES
    return graph


def matrix_megabytes(matrix) -> float:
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        nbytes = csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes
    else:
        nbytes = np.asarray(matrix).nbytes
    return nbytes / 2 ** 20


def bench_step1(graph, rounds: int, seed: int = 0):
    """Time the federated knowledge extractor; returns (rounds/sec, P̂)."""
    extractor = FederatedKnowledgeExtractor(
        [graph], hidden=64,
        config=FederatedConfig(rounds=rounds, local_epochs=2, seed=seed))
    start = time.perf_counter()
    extractor.run()
    elapsed = time.perf_counter() - start
    probs = extractor.client_probabilities()[0]
    return rounds / elapsed, probs


def bench_client(graph, probs, config: AdaFGLConfig, epochs: int) -> Dict:
    """Build one Step-2 client and time setup + training epochs."""
    tracemalloc.start()
    start = time.perf_counter()
    client = PersonalizedClient(0, graph, probs, config)
    if client.prop_cache is not None:
        # Fold the one-off block precompute into setup, where it belongs.
        client.prop_cache.concatenated(config.k_prop)
    setup_sec = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    start = time.perf_counter()
    for _ in range(epochs):
        client.train_epoch()
    train_sec = time.perf_counter() - start

    return {
        "setup_sec": round(setup_sec, 4),
        "setup_peak_mb": round(peak_bytes / 2 ** 20, 3),
        "matrix_mb": round(matrix_megabytes(client.propagation), 3),
        "sec_per_epoch": round(train_sec / epochs, 4),
        "epochs_per_sec": round(epochs / train_sec, 3),
        "test_accuracy": round(client.evaluate("test"), 4),
    }


def run_benchmark(sizes: List[int], epochs: int = 10, step1_rounds: int = 5,
                  top_k: int = 32, seed: int = 0,
                  output_name: str = "BENCH_step2") -> Dict:
    base = AdaFGLConfig(hidden=64, seed=seed)
    dense_config = dataclasses.replace(
        base, sparse_propagation=False, use_propagation_cache=False)
    sparse_config = dataclasses.replace(
        base, sparse_propagation=True, propagation_top_k=top_k,
        use_propagation_cache=True)

    report: Dict = {
        "config": {
            "epochs": epochs, "step1_rounds": step1_rounds, "top_k": top_k,
            "num_features": NUM_FEATURES, "num_classes": NUM_CLASSES,
            "k_prop": base.k_prop, "seed": seed,
        },
        "sizes": [],
    }
    for num_nodes in sizes:
        graph = make_graph(num_nodes, seed=seed)
        rounds_per_sec, probs = bench_step1(graph, step1_rounds, seed=seed)
        dense = bench_client(graph, probs, dense_config, epochs)
        sparse = bench_client(graph, probs, sparse_config, epochs)
        entry = {
            "num_nodes": num_nodes,
            "step1_rounds_per_sec": round(rounds_per_sec, 3),
            "dense": dense,
            "sparse": sparse,
            "epoch_speedup": round(
                dense["sec_per_epoch"] / sparse["sec_per_epoch"], 2),
            "matrix_memory_ratio": round(
                dense["matrix_mb"] / max(sparse["matrix_mb"], 1e-9), 2),
            "accuracy_gap": round(
                dense["test_accuracy"] - sparse["test_accuracy"], 4),
        }
        report["sizes"].append(entry)
        print(f"n={num_nodes:>6}  step1 {rounds_per_sec:6.2f} r/s  "
              f"dense {dense['sec_per_epoch']:.3f}s/ep  "
              f"sparse {sparse['sec_per_epoch']:.3f}s/ep  "
              f"speedup {entry['epoch_speedup']:.2f}x  "
              f"mem {dense['matrix_mb']:.1f}->{sparse['matrix_mb']:.1f} MB  "
              f"acc {dense['test_accuracy']:.3f}/{sparse['test_accuracy']:.3f}")

    record_json(output_name, report)
    return report


def main(argv: Optional[List[str]] = None) -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", default="500,1000,2000",
                        help="comma-separated cSBM sizes")
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--step1-rounds", type=int, default=5)
    parser.add_argument("--top-k", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output-name", default="BENCH_step2")
    args = parser.parse_args(argv)
    try:
        sizes = [int(part) for part in args.nodes.split(",") if part]
    except ValueError:
        parser.error(f"--nodes expects comma-separated integers, "
                     f"got {args.nodes!r}")
    if not sizes:
        parser.error("--nodes must name at least one size")
    if args.top_k < 1:
        parser.error("--top-k must be >= 1")
    return run_benchmark(sizes, epochs=args.epochs,
                         step1_rounds=args.step1_rounds, top_k=args.top_k,
                         seed=args.seed, output_name=args.output_name)


if __name__ == "__main__":
    main()

"""Timing benchmark harness for the federated perf engine.

Three suites (``--suite``), each writing a JSON artifact under
``benchmarks/results/`` so the perf trajectory is tracked in-repo:

* ``step2`` (``BENCH_step2.json``) — dense vs sparse personalized training:
  Step-2 epochs/sec, peak P̃ memory and accuracy parity on growing cSBM
  graphs (PR 1);
* ``step1`` (``BENCH_step1.json``) — Step-1 federated collaborative-training
  rounds/sec for every execution backend (``serial`` / ``process_pool`` /
  ``batched``) on a many-small-clients split, including speedups over serial
  and a loss-parity check (PR 2; the process pool is the persistent-worker
  engine since PR 3 — resident clients, delta-only IPC, intra-worker shard
  fusion — and ``--model sgc`` exercises the batched SGC family);
* ``topk`` (``BENCH_topk.json``) — accuracy-vs-k curve for
  ``propagation_top_k``, against the dense reference, to pick per-dataset
  defaults.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_perf.py --suite all

A small smoke version runs under pytest via ``test_bench_perf.py`` when the
``bench`` marker is enabled (``pytest --run-bench`` or ``REPRO_RUN_BENCH=1``);
plain tier-1 runs skip it.
"""

from __future__ import annotations

import argparse
import dataclasses
import time
import tracemalloc
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.core import AdaFGL, AdaFGLConfig, FederatedKnowledgeExtractor
from repro.core.adafgl import PersonalizedClient
from repro.datasets import CSBMConfig, generate_csbm, make_split_masks
from repro.federated import FederatedConfig
from repro.fgl.fedgnn import FederatedGNN

try:  # imported as benchmarks.bench_perf (pytest) or run as a script
    from benchmarks.bench_utils import record_json
except ImportError:  # pragma: no cover - script mode
    from bench_utils import record_json

NUM_FEATURES = 128
NUM_CLASSES = 5


def make_graph(num_nodes: int, seed: int = 0,
               num_features: int = NUM_FEATURES):
    config = CSBMConfig(
        num_nodes=num_nodes, num_classes=NUM_CLASSES,
        num_features=num_features, avg_degree=10.0, edge_homophily=0.6,
        feature_signal=1.0, blocks_per_class=2, seed=seed,
        name=f"bench-{num_nodes}")
    graph = generate_csbm(config)
    make_split_masks(graph, 0.5, 0.25, 0.25, seed=seed)
    graph.metadata["num_classes"] = NUM_CLASSES
    return graph


def matrix_megabytes(matrix) -> float:
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        nbytes = csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes
    else:
        nbytes = np.asarray(matrix).nbytes
    return nbytes / 2 ** 20


def bench_step1(graph, rounds: int, seed: int = 0):
    """Time the federated knowledge extractor; returns (rounds/sec, P̂)."""
    extractor = FederatedKnowledgeExtractor(
        [graph], hidden=64,
        config=FederatedConfig(rounds=rounds, local_epochs=2, seed=seed))
    start = time.perf_counter()
    extractor.run()
    elapsed = time.perf_counter() - start
    probs = extractor.client_probabilities()[0]
    return rounds / elapsed, probs


def bench_client(graph, probs, config: AdaFGLConfig, epochs: int) -> Dict:
    """Build one Step-2 client and time setup + training epochs."""
    tracemalloc.start()
    start = time.perf_counter()
    client = PersonalizedClient(0, graph, probs, config)
    if client.prop_cache is not None:
        # Fold the one-off block precompute into setup, where it belongs.
        client.prop_cache.concatenated(config.k_prop)
    setup_sec = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    start = time.perf_counter()
    for _ in range(epochs):
        client.train_epoch()
    train_sec = time.perf_counter() - start

    return {
        "setup_sec": round(setup_sec, 4),
        "setup_peak_mb": round(peak_bytes / 2 ** 20, 3),
        "matrix_mb": round(matrix_megabytes(client.propagation), 3),
        "sec_per_epoch": round(train_sec / epochs, 4),
        "epochs_per_sec": round(epochs / train_sec, 3),
        "test_accuracy": round(client.evaluate("test"), 4),
    }


def run_benchmark(sizes: List[int], epochs: int = 10, step1_rounds: int = 5,
                  top_k: int = 32, seed: int = 0,
                  output_name: str = "BENCH_step2",
                  pool_kwargs: Optional[Dict] = None) -> Dict:
    base = AdaFGLConfig(hidden=64, seed=seed)
    dense_config = dataclasses.replace(
        base, sparse_propagation=False, use_propagation_cache=False)
    sparse_config = dataclasses.replace(
        base, sparse_propagation=True, propagation_top_k=top_k,
        use_propagation_cache=True)

    report: Dict = {
        "config": {
            "epochs": epochs, "step1_rounds": step1_rounds, "top_k": top_k,
            "num_features": NUM_FEATURES, "num_classes": NUM_CLASSES,
            "k_prop": base.k_prop, "seed": seed,
        },
        "sizes": [],
    }
    for num_nodes in sizes:
        graph = make_graph(num_nodes, seed=seed)
        rounds_per_sec, probs = bench_step1(graph, step1_rounds, seed=seed)
        dense = bench_client(graph, probs, dense_config, epochs)
        sparse = bench_client(graph, probs, sparse_config, epochs)
        entry = {
            "num_nodes": num_nodes,
            "step1_rounds_per_sec": round(rounds_per_sec, 3),
            "dense": dense,
            "sparse": sparse,
            "epoch_speedup": round(
                dense["sec_per_epoch"] / sparse["sec_per_epoch"], 2),
            "matrix_memory_ratio": round(
                dense["matrix_mb"] / max(sparse["matrix_mb"], 1e-9), 2),
            "accuracy_gap": round(
                dense["test_accuracy"] - sparse["test_accuracy"], 4),
        }
        report["sizes"].append(entry)
        print(f"n={num_nodes:>6}  step1 {rounds_per_sec:6.2f} r/s  "
              f"dense {dense['sec_per_epoch']:.3f}s/ep  "
              f"sparse {sparse['sec_per_epoch']:.3f}s/ep  "
              f"speedup {entry['epoch_speedup']:.2f}x  "
              f"mem {dense['matrix_mb']:.1f}->{sparse['matrix_mb']:.1f} MB  "
              f"acc {dense['test_accuracy']:.3f}/{sparse['test_accuracy']:.3f}")

    # Step-2 persistent-pool timing + exact parity (PR 3).
    report["step2_pool"] = run_step2_pool(seed=seed, **(pool_kwargs or {}))

    record_json(output_name, report)
    return report


def run_step1_backends(num_clients: int = 50, nodes_per_client: int = 40,
                       rounds: int = 10, local_epochs: int = 5,
                       hidden: int = 32, num_features: int = 32,
                       num_workers: int = 2, model: str = "gcn",
                       seed: int = 0,
                       output_name: str = "BENCH_step1") -> Dict:
    """Step-1 rounds/sec for every execution backend on one client split.

    Uses a many-small-clients split (the regime real cross-silo federations
    live in, and where per-client Python overhead dominates) with the same
    federated GCN the AdaFGL knowledge extractor trains (``model="sgc"``
    benchmarks the batched SGC/propagation family instead).  Every backend
    must reproduce the serial training history; ``loss_gap`` records the
    largest per-round deviation as a parity check.
    """
    graphs = [make_graph(nodes_per_client, seed=seed + index,
                         num_features=num_features)
              for index in range(num_clients)]
    backends = [("serial", 0), ("process_pool", num_workers), ("batched", 0)]

    report: Dict = {
        "config": {
            "num_clients": num_clients, "nodes_per_client": nodes_per_client,
            "rounds": rounds, "local_epochs": local_epochs, "hidden": hidden,
            "num_features": num_features, "num_workers": num_workers,
            "model": model, "seed": seed,
        },
        "backends": {},
    }
    reference_loss: Optional[List[float]] = None
    serial_rps: Optional[float] = None
    for backend, workers in backends:
        config = FederatedConfig(
            rounds=rounds, local_epochs=local_epochs, seed=seed,
            backend=backend, num_workers=workers, eval_every=rounds)
        trainer = FederatedGNN(graphs, model, hidden=hidden, config=config)
        start = time.perf_counter()
        history = trainer.run()
        elapsed = time.perf_counter() - start
        rounds_per_sec = rounds / elapsed
        if reference_loss is None:
            reference_loss = history.loss
        if serial_rps is None:
            serial_rps = rounds_per_sec
        entry = {
            "rounds_per_sec": round(rounds_per_sec, 3),
            "sec_per_round": round(elapsed / rounds, 4),
            "speedup_vs_serial": round(rounds_per_sec / serial_rps, 2),
            "test_accuracy": round(trainer.evaluate("test"), 4),
            "loss_gap": float(np.max(np.abs(
                np.asarray(history.loss) - np.asarray(reference_loss)))),
        }
        report["backends"][backend] = entry
        print(f"step1 {backend:12s} {rounds_per_sec:7.2f} rounds/s  "
              f"({entry['speedup_vs_serial']:.2f}x serial)  "
              f"acc {entry['test_accuracy']:.3f}  "
              f"loss_gap {entry['loss_gap']:.2e}")

    record_json(output_name, report)
    return report


def run_step2_pool(num_clients: int = 8, nodes_per_client: int = 250,
                   epochs: int = 10, step1_rounds: int = 3,
                   num_workers: int = 2, seed: int = 0) -> Dict:
    """Step-2 serial vs persistent-pool timing plus an exact parity check.

    Step 1 is pinned serial on both sides so the comparison isolates the
    Step-2 execution path.  ``report_gap`` is the largest per-client accuracy
    deviation between the two paths — the persistent pool must reproduce the
    serial ``client_reports`` exactly (0.0).
    """
    graphs = [make_graph(nodes_per_client, seed=seed + index)
              for index in range(num_clients)]
    base = AdaFGLConfig(hidden=64, seed=seed, rounds=step1_rounds,
                        local_epochs=2, personalized_epochs=epochs,
                        sparse_propagation=True, propagation_top_k=32,
                        step1_backend="serial")

    section: Dict = {
        "config": {
            "num_clients": num_clients,
            "nodes_per_client": nodes_per_client, "epochs": epochs,
            "step1_rounds": step1_rounds, "num_workers": num_workers,
            "seed": seed,
        },
    }
    reports = {}
    for label, workers in (("serial", 0), ("persistent_pool", num_workers)):
        method = AdaFGL(graphs, dataclasses.replace(base,
                                                    num_workers=workers))
        method.run_step1()
        start = time.perf_counter()
        method.run_step2()
        elapsed = time.perf_counter() - start
        reports[label] = [r.accuracy for r in method.client_reports()]
        section[label] = {
            "step2_sec": round(elapsed, 4),
            "epochs_per_sec": round(epochs / elapsed, 3),
            "test_accuracy": round(method.evaluate("test"), 4),
        }
    section["speedup_vs_serial"] = round(
        section["serial"]["step2_sec"]
        / section["persistent_pool"]["step2_sec"], 2)
    section["report_gap"] = float(np.max(np.abs(
        np.asarray(reports["serial"])
        - np.asarray(reports["persistent_pool"]))))
    print(f"step2 serial {section['serial']['step2_sec']:.2f}s  "
          f"pool {section['persistent_pool']['step2_sec']:.2f}s  "
          f"({section['speedup_vs_serial']:.2f}x)  "
          f"report_gap {section['report_gap']:.2e}")
    return section


def run_topk_curve(num_nodes: int = 1000,
                   ks: Sequence[int] = (4, 8, 16, 32, 64),
                   epochs: int = 10, step1_rounds: int = 5, seed: int = 0,
                   output_name: str = "BENCH_topk") -> Dict:
    """Accuracy-vs-k curve for ``propagation_top_k`` (dense as reference).

    Reuses one Step-1 run per graph size, then trains a Step-2 client per
    sparsity level, recording test accuracy, epoch time and P̃ memory so a
    per-dataset default k can be read off the curve.
    """
    graph = make_graph(num_nodes, seed=seed)
    _, probs = bench_step1(graph, step1_rounds, seed=seed)
    base = AdaFGLConfig(hidden=64, seed=seed)

    dense = bench_client(graph, probs, dataclasses.replace(
        base, sparse_propagation=False, use_propagation_cache=False), epochs)
    report: Dict = {
        "config": {"num_nodes": num_nodes, "epochs": epochs,
                   "step1_rounds": step1_rounds, "seed": seed,
                   "k_prop": base.k_prop},
        "dense": dense,
        "curve": [],
    }
    print(f"topk  dense      acc {dense['test_accuracy']:.3f}  "
          f"{dense['sec_per_epoch']:.3f}s/ep  {dense['matrix_mb']:.1f} MB")
    for k in ks:
        sparse = bench_client(graph, probs, dataclasses.replace(
            base, sparse_propagation=True, propagation_top_k=int(k),
            use_propagation_cache=True), epochs)
        entry = {
            "top_k": int(k),
            **sparse,
            "accuracy_gap_vs_dense": round(
                dense["test_accuracy"] - sparse["test_accuracy"], 4),
            "epoch_speedup_vs_dense": round(
                dense["sec_per_epoch"] / sparse["sec_per_epoch"], 2),
        }
        report["curve"].append(entry)
        print(f"topk  k={k:<8d} acc {sparse['test_accuracy']:.3f}  "
              f"{sparse['sec_per_epoch']:.3f}s/ep  "
              f"{sparse['matrix_mb']:.2f} MB  "
              f"gap {entry['accuracy_gap_vs_dense']:+.4f}")

    record_json(output_name, report)
    return report


def main(argv: Optional[List[str]] = None) -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="step2",
                        choices=["step2", "step1", "topk", "all"])
    parser.add_argument("--nodes", default="500,1000,2000",
                        help="comma-separated cSBM sizes (step2 suite)")
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--step1-rounds", type=int, default=5)
    parser.add_argument("--top-k", type=int, default=32)
    parser.add_argument("--top-k-grid", default="4,8,16,32,64",
                        help="comma-separated k values (topk suite)")
    parser.add_argument("--clients", type=int, default=50,
                        help="client count (step1 suite)")
    parser.add_argument("--client-nodes", type=int, default=40,
                        help="nodes per client (step1 suite)")
    parser.add_argument("--rounds", type=int, default=10,
                        help="federated rounds (step1 suite)")
    parser.add_argument("--local-epochs", type=int, default=5,
                        help="local epochs per round (step1 suite)")
    parser.add_argument("--workers", type=int, default=2,
                        help="process-pool width (step1 suite)")
    parser.add_argument("--model", default="gcn", choices=["gcn", "sgc"],
                        help="federated model (step1 suite; sgc exercises "
                             "the batched SGC/propagation family)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output-name", default=None,
                        help="override the JSON artifact name")
    args = parser.parse_args(argv)

    def parse_ints(text: str, flag: str) -> List[int]:
        try:
            values = [int(part) for part in text.split(",") if part]
        except ValueError:
            parser.error(f"{flag} expects comma-separated integers, "
                         f"got {text!r}")
        if not values:
            parser.error(f"{flag} must name at least one value")
        return values

    if args.top_k < 1:
        parser.error("--top-k must be >= 1")

    results: Dict = {}
    if args.suite in ("step2", "all"):
        sizes = parse_ints(args.nodes, "--nodes")
        results["step2"] = run_benchmark(
            sizes, epochs=args.epochs, step1_rounds=args.step1_rounds,
            top_k=args.top_k, seed=args.seed,
            output_name=(args.output_name if args.suite == "step2"
                         and args.output_name else "BENCH_step2"))
    if args.suite in ("step1", "all"):
        results["step1"] = run_step1_backends(
            num_clients=args.clients, nodes_per_client=args.client_nodes,
            rounds=args.rounds, local_epochs=args.local_epochs,
            num_workers=args.workers, model=args.model, seed=args.seed,
            output_name=(args.output_name if args.suite == "step1"
                         and args.output_name else "BENCH_step1"))
    if args.suite in ("topk", "all"):
        results["topk"] = run_topk_curve(
            ks=parse_ints(args.top_k_grid, "--top-k-grid"),
            epochs=args.epochs, step1_rounds=args.step1_rounds,
            seed=args.seed,
            output_name=(args.output_name if args.suite == "topk"
                         and args.output_name else "BENCH_topk"))
    return results if args.suite == "all" else results[args.suite]


if __name__ == "__main__":
    main()

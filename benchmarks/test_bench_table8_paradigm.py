"""Table VIII — paradigm comparison: measured communication volume per method.

The paper's Table VIII is qualitative (which quantities each FGL method
exchanges).  Here we regenerate it quantitatively from the communication
tracker: total floats uploaded/downloaded per round and the kinds of payloads
exchanged.
"""

from repro.experiments import format_table, prepare_clients, run_method

from benchmarks.bench_utils import load_bench_dataset, record, settings

METHODS = ["fedgcn", "fedgl", "gcfl+", "fedsage+", "fed-pub", "adafgl"]


def test_table8_paradigm_communication(benchmark):
    config = settings()
    graph = load_bench_dataset("cora")
    clients = prepare_clients("cora", "structure", config, graph=graph)

    def run():
        results = {}
        for method in METHODS:
            summary = run_method(method, clients, config)
            results[method] = summary["communication"]
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    rows = [[method, comm["per_round"], comm["uploaded"], comm["downloaded"],
             ", ".join(comm["kinds"])]
            for method, comm in results.items()]
    record("table8_paradigm",
           format_table(["method", "floats/round", "uploaded", "downloaded",
                         "payload kinds"],
                        rows, title="Table VIII — communication comparison",
                        float_format="{:.0f}"))

    # AdaFGL only exchanges model parameters and should not communicate more
    # per round than the cross-client interaction methods FedGL and FedSage+.
    assert results["adafgl"]["per_round"] <= results["fedgl"]["per_round"] + 1
    assert set(results["adafgl"]["kinds"]) == {"model_parameters"}

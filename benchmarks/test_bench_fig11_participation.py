"""Fig. 11 — accuracy under sparse client participation (20-client split)."""

from repro.experiments import format_series, prepare_clients, run_method

from benchmarks.bench_utils import full_grid, load_bench_dataset, record, settings

DATASETS = ["arxiv-year"] if not full_grid() else ["arxiv-year", "flickr",
                                                   "reddit"]
METHODS = ["fedgcn", "fedgl", "fed-pub", "adafgl"]
PARTICIPATION = [0.3, 0.6, 1.0]


def test_fig11_client_participation(benchmark):
    config = settings(num_clients=10)

    def run():
        results = {}
        for dataset in DATASETS:
            graph = load_bench_dataset(dataset)
            for split in ("community", "structure"):
                clients = prepare_clients(dataset, split, config, graph=graph)
                for participation in PARTICIPATION:
                    run_config = settings(num_clients=10,
                                          participation=participation)
                    for method in METHODS:
                        acc = run_method(method, clients,
                                         run_config)["accuracy"]
                        results.setdefault((dataset, split), {}).setdefault(
                            participation, {})[method] = acc
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    blocks = []
    for (dataset, split), by_ratio in results.items():
        for method in METHODS:
            blocks.append(format_series(
                f"Fig 11 {dataset} ({split}) — {method}",
                sorted(by_ratio), [by_ratio[r][method]
                                   for r in sorted(by_ratio)]))
    record("fig11_participation", "\n\n".join(blocks))

    # Personalized methods (AdaFGL) should degrade gracefully: accuracy at the
    # lowest participation stays within a margin of full participation.
    for key, by_ratio in results.items():
        full = by_ratio[1.0]["adafgl"]
        low = by_ratio[min(PARTICIPATION)]["adafgl"]
        assert low >= full - 0.15

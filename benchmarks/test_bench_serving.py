"""Pytest entry point for the serving harness (marker: bench).

Skipped by tier-1 runs; enable with ``pytest --run-bench`` or
``REPRO_RUN_BENCH=1``.  Runs the suite at smoke scale — the checked-in
``BENCH_serving.json`` artifact is produced by running ``bench_serving.py``
directly at the full grid.
"""

import pytest

from benchmarks.bench_serving import run_serving_suite


@pytest.mark.bench
def test_serving_harness_smoke():
    report = run_serving_suite(smoke=True, array_backend="numpy",
                               output_name="BENCH_serving_smoke")
    # The hard bars: served answers are bitwise-exact, both query regimes.
    assert report["parity"]["transductive_bitwise_equal"]
    assert report["parity"]["inductive_fused_equals_serial"]
    assert report["parity"]["inductive_fused_path_answers"] > 0
    assert report["headline"]["achieved_qps"] > 0
    for point in report["transductive"] + report["inductive"]:
        assert point["queries"] > 0
        assert point["p50_ms"] <= point["p99_ms"]
    # Inductive cells actually exercised the subgraph LRU.
    assert any(point["cache"]["hits"] + point["cache"]["misses"] > 0
               for point in report["inductive"])

"""Fig. 2 — empirical analysis on Cora with 10 clients.

(a) per-client label distributions, (b) per-client topology distributions,
(c) round-wise accuracy curves, (d) per-client accuracy, for community split
vs structure Non-iid split.
"""

import numpy as np

from repro.experiments import format_series, format_table, prepare_clients, run_method
from repro.metrics import client_label_distribution, client_topology_distribution

from benchmarks.bench_utils import load_bench_dataset, record, settings


def _analyse(split: str, graph, config):
    clients = prepare_clients("cora", split, config, graph=graph)
    labels = client_label_distribution(clients, num_classes=graph.num_classes)
    topology = client_topology_distribution(clients)
    summary = run_method("fedgcn", clients, config)
    reports = summary["trainer"].client_reports()
    return clients, labels, topology, summary, reports


def test_fig2_empirical_analysis(benchmark):
    config = settings(num_clients=10)
    graph = load_bench_dataset("cora")

    def run():
        return {split: _analyse(split, graph, config)
                for split in ("community", "structure")}

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    blocks = []
    for split, (clients, labels, topology, summary, reports) in results.items():
        blocks.append(format_table(
            ["client"] + [f"class{c}" for c in range(graph.num_classes)],
            [[i] + row.tolist() for i, row in enumerate(labels)],
            title=f"Fig 2(a) label distribution — {split}"))
        blocks.append(format_table(
            ["client", "node homophily", "edge homophily"],
            [[i, row[0], row[1]] for i, row in enumerate(topology)],
            title=f"Fig 2(b) topology distribution — {split}"))
        history = summary["history"]
        blocks.append(format_series(f"Fig 2(c) FedGCN accuracy/round — {split}",
                                    history.rounds, history.test_accuracy))
        blocks.append(format_table(
            ["client", "accuracy", "edge homophily"],
            [[r.client_id, r.accuracy, r.homophily] for r in reports],
            title=f"Fig 2(d) per-client accuracy — {split}"))
    record("fig2_empirical", "\n\n".join(blocks))

    # Claim: structure Non-iid produces more diverse client topologies.
    community_topology = results["community"][2]
    noniid_topology = results["structure"][2]
    assert noniid_topology[:, 1].std() >= community_topology[:, 1].std() - 0.02

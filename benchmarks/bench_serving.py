"""Serving load harness: throughput and tail latency of the query engine.

Measures the online serving subsystem the way serving systems are measured:
open-loop Poisson arrivals at configured rates, reporting achieved
queries/sec and p50/p99 latency across a **batch-size × arrival-rate ×
array-backend grid**, a dedicated **inductive-query section** (fused
batched subgraph inference, with the LRU's hit rate), and a **parity bar**
asserting that served answers are bitwise-equal to offline
``Client.predict`` on the numpy backend (and fused inductive answers
bitwise-equal to per-query serial forwards).

Usage::

    PYTHONPATH=src:. python benchmarks/bench_serving.py            # full grid
    PYTHONPATH=src:. python benchmarks/bench_serving.py --smoke    # CI smoke

The full run writes ``benchmarks/results/BENCH_serving.json``; ``--smoke``
writes ``BENCH_serving_smoke.json`` (restricted by ``--array-backend``
when given).
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

import numpy as np

from benchmarks.bench_utils import record_json
from repro.autograd import list_array_backends
from repro.datasets import load_dataset
from repro.federated import FederatedConfig
from repro.fgl import build_baseline
from repro.serving import (
    InductiveQuery,
    QueryEngine,
    ServingSnapshot,
    build_query_mix,
    run_open_loop,
)
from repro.simulation import community_split


def build_serving_snapshot(num_nodes: int = 600, num_clients: int = 5,
                           rounds: int = 3, seed: int = 0,
                           model: str = "fedgcn"):
    """Train a small federation and freeze it; returns (snapshot, trainer)."""
    graph = load_dataset("cora", seed=seed, num_nodes=num_nodes)
    subgraphs = community_split(graph, num_clients, seed=seed)
    trainer = build_baseline(
        model, subgraphs,
        config=FederatedConfig(rounds=rounds, local_epochs=1, seed=seed),
        hidden=32)
    trainer.run()
    return ServingSnapshot.from_trainer(trainer), trainer


def run_rate_grid(snapshot, *, backends: Sequence[str],
                  max_batches: Sequence[int], rates: Sequence[float],
                  queries_per_cell: int, inductive_fraction: float = 0.0,
                  max_delay_ms: float = 2.0, seed: int = 0) -> List[Dict]:
    """One open-loop run per (backend, max_batch, rate) cell."""
    points = []
    for backend in backends:
        for max_batch in max_batches:
            for rate in rates:
                queries = build_query_mix(
                    snapshot, queries_per_cell,
                    inductive_fraction=inductive_fraction, seed=seed)
                with QueryEngine(snapshot, max_batch=max_batch,
                                 max_delay_ms=max_delay_ms,
                                 array_backend=backend) as engine:
                    report = run_open_loop(engine, queries, rate, seed=seed)
                    cache = engine.cache
                point = {"backend": backend, "max_batch": max_batch,
                         "inductive_fraction": inductive_fraction,
                         **report.as_dict()}
                point["cache"] = {"hits": cache.hits,
                                  "misses": cache.misses,
                                  "evictions": cache.evictions}
                points.append(point)
                print(f"  backend={backend} batch={max_batch} "
                      f"rate={rate:.0f}: "
                      f"{report.achieved_qps:.0f} qps, "
                      f"p50 {report.p50_ms:.2f} ms, "
                      f"p99 {report.p99_ms:.2f} ms")
    return points


def run_parity_bar(snapshot, trainer, *, probes: int = 64,
                   seed: int = 0) -> Dict:
    """Bitwise parity of served answers vs offline references (numpy).

    * transductive: engine answers == a fresh serial ``Client.predict``
      recomputed offline (cache invalidated first);
    * inductive: fused batched answers == per-query serial forwards.
    """
    rng = np.random.default_rng(seed)
    offline = {}
    for client in trainer.clients:
        client.invalidate_cache()
        offline[client.client_id] = np.array(client.predict(), copy=True)

    transductive_checked = 0
    transductive_equal = True
    queries = build_query_mix(snapshot, probes, inductive_fraction=0.0,
                              seed=seed)
    with QueryEngine(snapshot, max_batch=16, max_delay_ms=1.0,
                     array_backend="numpy") as engine:
        for query in queries:
            served = engine.query(query, timeout=60)
            expected = offline[query.client_id][query.node_id]
            transductive_equal &= bool(
                np.array_equal(served.probs, expected))
            transductive_checked += 1

    inductive_queries = [
        query for query in build_query_mix(
            snapshot, probes, inductive_fraction=1.0, seed=seed + 1)
        if isinstance(query, InductiveQuery)]
    with QueryEngine(snapshot, max_batch=len(inductive_queries),
                     max_delay_ms=500.0, array_backend="numpy") as engine:
        futures = [engine.submit(query) for query in inductive_queries]
        fused = [future.result(timeout=60) for future in futures]
    with QueryEngine(snapshot, max_batch=1, max_delay_ms=0.0,
                     array_backend="numpy") as engine:
        serial = [engine.query(query, timeout=60)
                  for query in inductive_queries]
    inductive_equal = all(
        np.array_equal(fused_r.probs, serial_r.probs)
        for fused_r, serial_r in zip(fused, serial))
    fused_used = sum(1 for result in fused if result.path == "fused")
    parity = {
        "transductive_bitwise_equal": bool(transductive_equal),
        "transductive_probes": transductive_checked,
        "inductive_fused_equals_serial": bool(inductive_equal),
        "inductive_probes": len(inductive_queries),
        "inductive_fused_path_answers": fused_used,
    }
    print(f"  parity: transductive bitwise={transductive_equal} "
          f"({transductive_checked} probes), "
          f"inductive fused==serial={inductive_equal} "
          f"({len(inductive_queries)} probes, {fused_used} fused)")
    return parity


def run_serving_suite(*, smoke: bool = False,
                      array_backend: Optional[str] = None,
                      output_name: Optional[str] = None, seed: int = 0
                      ) -> Dict:
    backends = [array_backend] if array_backend \
        else [name for name in ("numpy", "jit")
              if name in list_array_backends()]
    if smoke:
        num_nodes, num_clients, rounds = 300, 3, 2
        max_batches = [1, 16]
        transductive_rates = [2000.0]
        inductive_rates = [300.0]
        queries_per_cell = 150
    else:
        num_nodes, num_clients, rounds = 600, 5, 3
        max_batches = [1, 8, 32]
        transductive_rates = [1000.0, 4000.0, 16000.0]
        inductive_rates = [100.0, 400.0, 1600.0]
        queries_per_cell = 800

    print(f"building snapshot ({num_nodes} nodes, {num_clients} clients)...")
    snapshot, trainer = build_serving_snapshot(
        num_nodes=num_nodes, num_clients=num_clients, rounds=rounds,
        seed=seed)

    print("transductive grid:")
    transductive = run_rate_grid(
        snapshot, backends=backends, max_batches=max_batches,
        rates=transductive_rates, queries_per_cell=queries_per_cell,
        inductive_fraction=0.0, seed=seed)
    print("inductive grid:")
    inductive = run_rate_grid(
        snapshot, backends=backends, max_batches=max_batches,
        rates=inductive_rates,
        queries_per_cell=max(queries_per_cell // 4, 50),
        inductive_fraction=1.0, seed=seed)
    print("parity bar:")
    parity = run_parity_bar(snapshot, trainer,
                            probes=32 if smoke else 64, seed=seed)

    best = max(transductive, key=lambda point: point["achieved_qps"])
    report = {
        "setup": {"dataset": "cora", "num_nodes": num_nodes,
                  "num_clients": num_clients, "rounds": rounds,
                  "model_family": snapshot.model_family,
                  "backends": backends, "max_batches": list(max_batches),
                  "transductive_rates": list(transductive_rates),
                  "inductive_rates": list(inductive_rates),
                  "queries_per_cell": queries_per_cell, "seed": seed},
        "transductive": transductive,
        "inductive": inductive,
        "parity": parity,
        "headline": {"achieved_qps": best["achieved_qps"],
                     "p50_ms": best["p50_ms"], "p99_ms": best["p99_ms"],
                     "backend": best["backend"],
                     "max_batch": best["max_batch"]},
    }
    name = output_name or ("BENCH_serving_smoke" if smoke
                           else "BENCH_serving")
    record_json(name, report)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="serving engine qps / latency harness")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid for CI (BENCH_serving_smoke.json)")
    parser.add_argument("--array-backend", default=None,
                        choices=list_array_backends(),
                        help="restrict the backend axis to one backend")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    report = run_serving_suite(smoke=args.smoke,
                               array_backend=args.array_backend,
                               seed=args.seed)
    assert report["parity"]["transductive_bitwise_equal"]
    assert report["parity"]["inductive_fused_equals_serial"]
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

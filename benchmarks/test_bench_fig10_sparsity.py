"""Fig. 10 — performance under feature, edge and label sparsity (Computer)."""

from repro.experiments import format_series, prepare_clients, run_method
from repro.simulation import edge_sparsity, feature_sparsity, label_sparsity

from benchmarks.bench_utils import load_bench_dataset, record, settings

METHODS = ["fedgcn", "fedsage+", "fed-pub", "adafgl"]
LEVELS = [0.0, 0.5, 0.9]


def _apply(kind, clients, level, seed):
    if level == 0.0:
        return clients
    if kind == "feature":
        return [feature_sparsity(c, level, seed=seed) for c in clients]
    if kind == "edge":
        return [edge_sparsity(c, level, seed=seed) for c in clients]
    # Label sparsity: keep `1 - level` of the default training fraction.
    ratio = max(0.02, 0.2 * (1.0 - level))
    return [label_sparsity(c, ratio, seed=seed) for c in clients]


def test_fig10_sparse_settings(benchmark):
    config = settings()
    graph = load_bench_dataset("computer")

    def run():
        results = {}
        for split in ("community", "structure"):
            base_clients = prepare_clients("computer", split, config,
                                           graph=graph)
            for kind in ("feature", "edge", "label"):
                for level in LEVELS:
                    clients = _apply(kind, base_clients, level, config.seed)
                    for method in METHODS:
                        acc = run_method(method, clients, config)["accuracy"]
                        results.setdefault((split, kind), {}).setdefault(
                            level, {})[method] = acc
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    blocks = []
    for (split, kind), by_level in results.items():
        for method in METHODS:
            blocks.append(format_series(
                f"Fig 10 computer {kind} sparsity ({split}) — {method}",
                sorted(by_level), [by_level[l][method]
                                   for l in sorted(by_level)]))
    record("fig10_sparsity", "\n\n".join(blocks))

    # AdaFGL should stay above chance even at the harshest sparsity level and
    # should never be the single worst method there.
    num_classes = graph.num_classes
    for (split, kind), by_level in results.items():
        harsh = by_level[max(LEVELS)]
        assert harsh["adafgl"] > 1.0 / num_classes
        assert harsh["adafgl"] >= min(harsh.values())

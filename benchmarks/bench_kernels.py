"""Per-kernel microbenchmarks for the array-backend dispatch layer.

Times every registered hot-path kernel (``spmm`` forward/backward,
``spmm_batched``, ``sddmm`` forward/backward, ``spmm_pattern`` forward +
both backwards, dropout mask/apply) under the **numpy** reference backend
vs the **jit** backend, at shapes sampled from the real execution plans:

* client-subgraph propagation (serial Step-1 / Step-2 knowledge smoothing):
  a ~10-average-degree CSR against 16/32-wide features;
* the batched engine's block-diagonal operator (50 stacked 40-node
  clients at hidden width 32);
* Step-2 sparse message passing (``sddmm`` / ``spmm_pattern`` on a top-k
  support at class-logit width).

The jit backend compiles numba CSR kernels when numba is importable and
otherwise serves its scipy fallbacks — most notably the **scatter-free
sddmm backward** (CSR-reassembly + two sparse products), which replaces the
reference ``np.add.at`` scatter and is the headline win even without numba.
``numba_available`` is recorded in the artifact so a number can never
masquerade as coming from the compiled kernels when it did not.

The ``gates`` section evaluates the ≥2× acceptance targets (spmm and sddmm
backward).  The spmm gate needs the compiled prange kernels on a multicore
host — the CI backend-matrix job (numba installed) is where it is expected
to hold; on a fallback-only host the entry records ``met: false`` with the
reason rather than a fabricated number.

Run from the repository root::

    PYTHONPATH=src:. python benchmarks/bench_kernels.py           # full
    PYTHONPATH=src:. python benchmarks/bench_kernels.py --smoke   # CI smoke

The full run writes ``benchmarks/results/BENCH_kernels.json``; the smoke
run shrinks every shape, skips the artifact write and asserts the
sddmm-backward gate (met in every regime) so CI fails loudly if the
scatter-free path regresses.
"""

from __future__ import annotations

import argparse
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.autograd.backend import get_backend, numba_available

try:  # imported as benchmarks.bench_kernels (pytest) or run as a script
    from benchmarks.bench_utils import record_json
except ImportError:  # pragma: no cover
    from bench_utils import record_json


NUMPY = get_backend("numpy")
JIT = get_backend("jit")


def _best_seconds(fn: Callable[[], object], repeats: int) -> float:
    fn()  # warm-up (also triggers numba compilation on the jit arm)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _graph_csr(nodes: int, degree: float, seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    matrix = sp.random(nodes, nodes, density=min(degree / nodes, 0.5),
                       format="csr", random_state=rng, dtype=np.float64)
    matrix.sort_indices()
    return matrix


def _support(pattern: sp.csr_matrix):
    rows = np.repeat(np.arange(pattern.shape[0]), np.diff(pattern.indptr))
    return rows, pattern.indices


def _compare(name: str, shape_label: str, reference: Callable[[], object],
             candidate: Callable[[], object], repeats: int) -> Dict:
    ref_sec = _best_seconds(reference, repeats)
    jit_sec = _best_seconds(candidate, repeats)
    entry = {
        "kernel": name,
        "shape": shape_label,
        "numpy_us": round(ref_sec * 1e6, 1),
        "jit_us": round(jit_sec * 1e6, 1),
        "speedup": round(ref_sec / jit_sec, 2),
    }
    print(f"{name:28s} {shape_label:34s} numpy {entry['numpy_us']:10.1f}us  "
          f"jit {entry['jit_us']:10.1f}us  {entry['speedup']:6.2f}x")
    return entry


def run_kernel_suite(scale: float = 1.0, repeats: int = 20) -> List[Dict]:
    """Time every kernel numpy-vs-jit; returns one entry per (kernel, shape)."""
    rng = np.random.default_rng(0)
    rows_entries: List[Dict] = []

    def shapes(*dims):
        return [tuple(max(1, int(d * scale)) for d in shape) for shape in dims]

    # -- spmm forward/backward: client-subgraph propagation shapes --------
    for nodes, degree, width in shapes((3000, 10, 16), (8000, 12, 32)):
        adjacency = _graph_csr(nodes, degree, seed=nodes)
        dense = rng.standard_normal((nodes, width))
        grad = rng.standard_normal((nodes, width))
        label = f"n={nodes} deg~{degree} f={width}"
        rows_entries.append(_compare(
            "spmm", label,
            lambda: NUMPY.spmm(adjacency, dense),
            lambda: JIT.spmm(adjacency, dense), repeats))
        rows_entries.append(_compare(
            "spmm_backward", label,
            lambda: NUMPY.spmm_backward(adjacency, None, grad),
            lambda: JIT.spmm_backward(adjacency, None, grad), repeats))

    # -- spmm_batched: the batched engine's block-diagonal operator -------
    (batch, nodes, width), = shapes((50, 40, 32))
    block = sp.block_diag(
        [_graph_csr(nodes, 6, seed=100 + b) for b in range(batch)],
        format="csr")
    stacked = rng.standard_normal((batch, nodes, width))
    rows_entries.append(_compare(
        "spmm_batched", f"B={batch} n={nodes} f={width}",
        lambda: NUMPY.spmm_batched(block, stacked),
        lambda: JIT.spmm_batched(block, stacked), repeats))

    # -- sddmm + spmm_pattern: Step-2 sparse message passing --------------
    for nodes, degree, width in shapes((3000, 10, 16), (2000, 20, 8)):
        pattern = _graph_csr(nodes, degree, seed=nodes + 1)
        support_rows, support_cols = _support(pattern)
        a = rng.standard_normal((nodes, width))
        b = rng.standard_normal((nodes, width))
        edge_grad = rng.standard_normal(pattern.nnz)
        values = rng.standard_normal(pattern.nnz)
        dense_grad = rng.standard_normal((nodes, width))
        label = f"n={nodes} nnz={pattern.nnz} f={width}"
        rows_entries.append(_compare(
            "sddmm", label,
            lambda: NUMPY.sddmm(support_rows, support_cols, a, b),
            lambda: JIT.sddmm(support_rows, support_cols, a, b), repeats))
        rows_entries.append(_compare(
            "sddmm_backward", label,
            lambda: NUMPY.sddmm_backward(support_rows, support_cols, a, b,
                                         edge_grad, True, True),
            lambda: JIT.sddmm_backward(support_rows, support_cols, a, b,
                                       edge_grad, True, True), repeats))
        _, matrix = NUMPY.spmm_pattern(pattern, values, b)
        rows_entries.append(_compare(
            "spmm_pattern", label,
            lambda: NUMPY.spmm_pattern(pattern, values, b),
            lambda: JIT.spmm_pattern(pattern, values, b), repeats))
        rows_entries.append(_compare(
            "spmm_pattern_backward_values", label,
            lambda: NUMPY.spmm_pattern_backward_values(pattern, dense_grad, b),
            lambda: JIT.spmm_pattern_backward_values(pattern, dense_grad, b),
            repeats))
        rows_entries.append(_compare(
            "spmm_pattern_backward_dense", label,
            lambda: NUMPY.spmm_pattern_backward_dense(matrix, dense_grad),
            lambda: JIT.spmm_pattern_backward_dense(matrix, dense_grad),
            repeats))

    # -- dropout mask/apply (memory-bound; parity sanity, not a speedup) --
    (nodes, width), = shapes((4000, 32))
    x = rng.standard_normal((nodes, width))
    mask = NUMPY.dropout_mask(np.random.default_rng(0), x.shape, 0.5)
    rows_entries.append(_compare(
        "dropout_mask", f"shape=({nodes},{width}) p=0.5",
        lambda: NUMPY.dropout_mask(np.random.default_rng(0), x.shape, 0.5),
        lambda: JIT.dropout_mask(np.random.default_rng(0), x.shape, 0.5),
        repeats))
    rows_entries.append(_compare(
        "apply_mask", f"shape=({nodes},{width})",
        lambda: NUMPY.apply_mask(x, mask),
        lambda: JIT.apply_mask(x, mask), repeats))
    return rows_entries


def evaluate_gates(entries: Sequence[Dict]) -> Dict:
    """The ≥2× acceptance targets on spmm and sddmm backward."""
    def best_speedup(kernel: str) -> float:
        return max((e["speedup"] for e in entries if e["kernel"] == kernel),
                   default=0.0)

    gates: Dict = {}
    for kernel in ("spmm", "sddmm_backward"):
        speedup = best_speedup(kernel)
        gate = {"target": 2.0, "best_speedup": speedup,
                "met": bool(speedup >= 2.0)}
        if kernel == "spmm" and not gate["met"] and not numba_available():
            gate["note"] = ("numba unavailable on this host: the jit spmm "
                            "serves the scipy fallback (bitwise-identical to "
                            "the reference, ~1x); the compiled prange kernel "
                            "is exercised by the CI backend-matrix job")
        gates[kernel] = gate
    return gates


def run_e2e_section(seed: int = 0) -> Dict:
    """End-to-end numpy-vs-jit on the sddmm-heavy Step-2 sparse path.

    Step-2 personalized training with ``sparse_propagation`` spends its
    backward in ``sddmm_backward`` — the kernel the jit backend replaces
    with the scatter-free path — so epochs/sec here shows the user-visible
    effect of ``--array-backend jit`` even in the fallback regime.
    """
    from benchmarks.bench_perf import make_graph
    from repro.core import AdaFGL, AdaFGLConfig

    graphs = [make_graph(220, seed=seed + i, num_features=24)
              for i in range(3)]
    section: Dict = {}
    losses = {}
    for name in ("numpy", "jit"):
        config = AdaFGLConfig(rounds=2, local_epochs=2,
                              personalized_epochs=8, hidden=16, seed=seed,
                              sparse_propagation=True, array_backend=name)
        trainer = AdaFGL([g for g in graphs], config)
        start = time.perf_counter()
        history = trainer.run()
        elapsed = time.perf_counter() - start
        epochs_per_sec = config.personalized_epochs / elapsed
        losses[name] = history.loss
        section[name] = {
            "step2_epochs_per_sec": round(epochs_per_sec, 3),
            "test_accuracy": round(trainer.evaluate("test"), 4),
        }
        print(f"e2e step2 {name:6s} {epochs_per_sec:7.2f} epochs/s  "
              f"acc {section[name]['test_accuracy']:.3f}")
    section["speedup_jit_vs_numpy"] = round(
        section["jit"]["step2_epochs_per_sec"]
        / section["numpy"]["step2_epochs_per_sec"], 2)
    section["loss_bitwise_equal"] = bool(losses["numpy"] == losses["jit"])
    return section


def main(argv: Optional[List[str]] = None) -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny shapes, no artifact write (CI)")
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    # Smoke keeps ~1/3-size shapes: small enough for CI seconds, large
    # enough that the sddmm-backward gate is still measured in the
    # scatter-dominated regime it exists for (at toy nnz the CSR-assembly
    # constant term wins and the comparison is meaningless).
    scale = 0.3 if args.smoke else 1.0
    repeats = args.repeats or (3 if args.smoke else 20)
    print(f"array-backend kernels bench  numba_available={numba_available()}")
    entries = run_kernel_suite(scale=scale, repeats=repeats)
    gates = evaluate_gates(entries)
    report = {
        "numba_available": numba_available(),
        "kernels": entries,
        "gates": gates,
    }
    if args.smoke:
        # The scatter-free sddmm backward must win in every regime.
        assert gates["sddmm_backward"]["met"], gates
        print("smoke OK:", {k: v["met"] for k, v in gates.items()})
        return report
    report["e2e"] = run_e2e_section()
    record_json("BENCH_kernels", report)
    return report


if __name__ == "__main__":
    main()

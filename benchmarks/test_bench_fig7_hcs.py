"""Fig. 7 — client-dependent HCS vs true subgraph homophily."""

import numpy as np

from repro.core import AdaFGL
from repro.experiments import format_table, prepare_clients
from repro.graph import edge_homophily

from benchmarks.bench_utils import full_grid, load_bench_dataset, record, settings

DATASETS = ["cora", "chameleon"] if not full_grid() else [
    "cora", "citeseer", "pubmed", "chameleon", "squirrel", "actor"]


def test_fig7_hcs_tracks_homophily(benchmark):
    config = settings()

    def run():
        results = {}
        for dataset in DATASETS:
            graph = load_bench_dataset(dataset)
            for split in ("community", "structure"):
                clients = prepare_clients(dataset, split, config, graph=graph)
                trainer = AdaFGL(clients, config.adafgl_config())
                trainer.run()
                hcs = trainer.client_hcs()
                homophily = {c.metadata["client_id"]:
                             edge_homophily(c.adjacency, c.labels)
                             for c in clients}
                results[(dataset, split)] = (hcs, homophily)
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    blocks = []
    gaps = []
    for (dataset, split), (hcs, homophily) in results.items():
        rows = [[cid, hcs[cid], homophily[cid]] for cid in sorted(hcs)]
        blocks.append(format_table(
            ["client", "HCS", "edge homophily"], rows,
            title=f"Fig 7 — {dataset} ({split})"))
        gaps.extend(abs(hcs[cid] - homophily[cid]) for cid in hcs)
    record("fig7_hcs", "\n\n".join(blocks))

    # HCS approximates the local homophily (paper: "approximately equal in
    # most cases").
    assert float(np.mean(gaps)) < 0.35

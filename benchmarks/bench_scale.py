"""Scaling harness: store-backed hierarchical federation at 10^3-10^5 clients.

Measures the three axes the hierarchical engine is built for:

* ``curve`` — rounds/sec for client counts {1k, 10k, 100k} at a fixed
  cohort of ~256 sampled participants per round (``participation`` shrinks
  as N grows, the regime real cross-device federations run in).
* coordinator peak RSS (``resource.getrusage(RUSAGE_SELF).ru_maxrss``)
  after each point.  The store is built in a forked child and local
  training runs inside pool workers, so the coordinator only ever holds
  the global state, shard id lists and one fixed-point partial per worker
  — its RSS must stay (sub)linear-free as N grows 10k -> 100k.
* ``parity`` — the hard correctness bar at small N: hierarchical
  process-pool rounds and the store trainer must both reproduce flat
  FedAvg with ``loss_gap == 0.0``.

Run directly for the full checked-in artifact
(``benchmarks/results/BENCH_scale.json``)::

    PYTHONPATH=src python benchmarks/bench_scale.py

or at smoke scale through pytest (``test_bench_scale.py``, marker
``bench``).
"""

from __future__ import annotations

import argparse
import multiprocessing
import resource
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.federated import FederatedConfig
from repro.federated.engine import ClientStore, ModelSpec, StoreFederatedTrainer
from repro.fgl.fedgnn import FederatedGNN
from repro.graph import Graph

try:  # imported as benchmarks.bench_scale (pytest) or run as a script
    from benchmarks.bench_utils import record_json
except ImportError:  # pragma: no cover - script mode
    from bench_utils import record_json

NUM_FEATURES = 16
NUM_CLASSES = 3
NODES_PER_CLIENT = 8
HIDDEN = 8
SPEC_SEED = 7


def make_tiny_graph(seed: int, num_nodes: int = NODES_PER_CLIENT) -> Graph:
    """One cross-device-sized client: a ring graph with label-signal features.

    Built directly with numpy (no CSBM machinery) so streaming 10^5 of them
    into a store is generator-bound, not graph-generation-bound.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, NUM_CLASSES, size=num_nodes)
    features = rng.normal(size=(num_nodes, NUM_FEATURES))
    features[np.arange(num_nodes), labels % NUM_FEATURES] += 1.5
    row = np.repeat(np.arange(num_nodes), 2)
    col = np.concatenate([((np.arange(num_nodes) + 1) % num_nodes)[:, None],
                          ((np.arange(num_nodes) - 1) % num_nodes)[:, None]],
                         axis=1).ravel()
    adjacency = sp.csr_matrix(
        (np.ones(row.size), (row, col)), shape=(num_nodes, num_nodes))
    masks = np.zeros((num_nodes, 3), dtype=bool)
    masks[:num_nodes // 2, 0] = True          # train
    masks[num_nodes // 2:3 * num_nodes // 4, 1] = True  # val
    masks[3 * num_nodes // 4:, 2] = True      # test
    return Graph(adjacency=adjacency, features=features, labels=labels,
                 train_mask=masks[:, 0], val_mask=masks[:, 1],
                 test_mask=masks[:, 2], name=f"scale-{seed}",
                 metadata={"num_classes": NUM_CLASSES})


def _spec() -> ModelSpec:
    return ModelSpec(model_name="gcn", hidden=HIDDEN, dropout=0.5,
                     seed=SPEC_SEED)


def _client_stream(num_clients: int, seed: int, templates: int = 64):
    """Yield ``num_clients`` graphs cycling a small pool of templates."""
    pool = [make_tiny_graph(seed + index) for index in range(templates)]
    for index in range(num_clients):
        yield pool[index % templates]


def _create_store_job(path: str, num_clients: int, seed: int) -> None:
    ClientStore.create(path, _client_stream(num_clients, seed), _spec())


def create_store_detached(path: str, num_clients: int, seed: int) -> float:
    """Build the store in a forked child; returns creation seconds.

    Writing the arenas dirties every page, so doing it in-process would
    push the coordinator's ru_maxrss high-water mark to the full arena
    size and mask the flat-RSS property the curve is meant to measure.
    """
    start = time.perf_counter()
    ctx = multiprocessing.get_context("fork")
    worker = ctx.Process(target=_create_store_job,
                         args=(path, num_clients, seed))
    worker.start()
    worker.join()
    if worker.exitcode != 0:
        raise RuntimeError(
            f"store creation failed (exit code {worker.exitcode})")
    return time.perf_counter() - start


def _rss_mb(who: int) -> float:
    return resource.getrusage(who).ru_maxrss / 1024.0


def run_scale_curve(client_counts: Sequence[int] = (1_000, 10_000, 100_000),
                    cohort: int = 256, rounds: int = 2,
                    local_epochs: int = 1, num_workers: int = 4,
                    seed: int = 0, eval_sample: int = 64,
                    store_root: Optional[str] = None) -> Dict:
    """Rounds/sec + coordinator RSS over the client-count axis."""
    root = Path(store_root or tempfile.mkdtemp(prefix="bench_scale_"))
    owns_root = store_root is None
    section: Dict = {
        "config": {
            "cohort": cohort, "rounds": rounds, "local_epochs": local_epochs,
            "num_workers": num_workers, "nodes_per_client": NODES_PER_CLIENT,
            "num_features": NUM_FEATURES, "hidden": HIDDEN, "seed": seed,
        },
        "points": [],
    }
    try:
        for num_clients in client_counts:
            path = str(root / f"store_{num_clients}")
            create_sec = create_store_detached(path, num_clients, seed)
            store = ClientStore.open(path)
            participation = min(1.0, cohort / num_clients)
            trainer = StoreFederatedTrainer(
                store, rounds=rounds, local_epochs=local_epochs,
                participation=participation, seed=seed,
                num_workers=num_workers, eval_every=rounds,
                eval_sample=eval_sample)
            start = time.perf_counter()
            history = trainer.run()
            train_sec = time.perf_counter() - start
            trainer.close()
            store_bytes = sum(f.stat().st_size
                              for f in Path(path).iterdir() if f.is_file())
            participants = sorted(history.participants)
            entry = {
                "num_clients": num_clients,
                "participation": round(participation, 6),
                "participants_per_round": len(
                    history.participants[participants[0]])
                if participants else 0,
                "store_create_sec": round(create_sec, 3),
                "store_mb_on_disk": round(store_bytes / 2 ** 20, 2),
                "rounds_per_sec": round(rounds / train_sec, 4),
                "sec_per_round": round(train_sec / rounds, 4),
                "test_accuracy": round(history.test_accuracy[-1], 4)
                if history.test_accuracy else None,
                "coordinator_peak_rss_mb": round(
                    _rss_mb(resource.RUSAGE_SELF), 1),
                "children_peak_rss_mb": round(
                    _rss_mb(resource.RUSAGE_CHILDREN), 1),
            }
            section["points"].append(entry)
            print(f"scale N={num_clients:>7}  create {create_sec:6.1f}s  "
                  f"{entry['sec_per_round']:7.2f} s/round  "
                  f"coordinator RSS {entry['coordinator_peak_rss_mb']:.0f} MB "
                  f"({entry['store_mb_on_disk']:.0f} MB on disk)")
            shutil.rmtree(path, ignore_errors=True)
    finally:
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)

    by_count = {entry["num_clients"]: entry for entry in section["points"]}
    if 10_000 in by_count and 100_000 in by_count:
        # ru_maxrss is a lifetime high-water mark, so with ascending counts
        # the ratio upper-bounds the true growth: 1.0 == perfectly flat.
        section["rss_growth_10k_to_100k"] = round(
            by_count[100_000]["coordinator_peak_rss_mb"]
            / max(by_count[10_000]["coordinator_peak_rss_mb"], 1e-9), 3)
    return section


def run_parity(num_clients: int = 8, rounds: int = 3, local_epochs: int = 2,
               num_workers: int = 2, seed: int = 0,
               store_root: Optional[str] = None) -> Dict:
    """Small-N exactness bar: hierarchical and store paths vs flat FedAvg."""
    graphs = [make_tiny_graph(seed + index, num_nodes=24)
              for index in range(num_clients)]

    def run_flat(**overrides):
        config = FederatedConfig(rounds=rounds, local_epochs=local_epochs,
                                 seed=SPEC_SEED, eval_every=1, **overrides)
        trainer = FederatedGNN(graphs, "gcn", hidden=HIDDEN, config=config)
        return trainer.run()

    flat = run_flat(backend="serial")
    hierarchical = run_flat(backend="process_pool", num_workers=num_workers,
                            intra_worker="serial", hierarchical=True)

    root = Path(store_root or tempfile.mkdtemp(prefix="bench_scale_parity_"))
    owns_root = store_root is None
    try:
        store = ClientStore.create(
            str(root / "parity"), (graph for graph in graphs), _spec())
        trainer = StoreFederatedTrainer(store, rounds=rounds,
                                        local_epochs=local_epochs,
                                        seed=SPEC_SEED,
                                        num_workers=num_workers)
        store_history = trainer.run()
        trainer.close()
    finally:
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)

    def gap(other):
        return float(np.max(np.abs(np.asarray(flat.loss)
                                   - np.asarray(other.loss))))

    section = {
        "num_clients": num_clients, "rounds": rounds,
        "hierarchical_loss_gap": gap(hierarchical),
        "store_trainer_loss_gap": gap(store_history),
        "test_accuracy": round(flat.test_accuracy[-1], 4),
    }
    print(f"parity  hierarchical loss_gap {section['hierarchical_loss_gap']:.1e}  "
          f"store loss_gap {section['store_trainer_loss_gap']:.1e}")
    return section


def run_scale_suite(client_counts: Sequence[int] = (1_000, 10_000, 100_000),
                    cohort: int = 256, rounds: int = 2,
                    local_epochs: int = 1, num_workers: int = 4,
                    seed: int = 0,
                    output_name: str = "BENCH_scale") -> Dict:
    report: Dict = {
        "parity": run_parity(num_workers=min(2, max(1, num_workers)),
                             seed=seed),
        "curve": run_scale_curve(client_counts=client_counts, cohort=cohort,
                                 rounds=rounds, local_epochs=local_epochs,
                                 num_workers=num_workers, seed=seed),
    }
    points = report["curve"]["points"]
    if points:
        top = points[-1]
        report["headline"] = {
            "num_clients": top["num_clients"],
            "sec_per_round": top["sec_per_round"],
            "coordinator_peak_rss_mb": top["coordinator_peak_rss_mb"],
            "participants_per_round": top["participants_per_round"],
        }
    record_json(output_name, report)
    return report


def main(argv: Optional[List[str]] = None) -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--counts", type=int, nargs="+",
                        default=[1_000, 10_000, 100_000])
    parser.add_argument("--cohort", type=int, default=256)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=1)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="BENCH_scale")
    args = parser.parse_args(argv)
    return run_scale_suite(client_counts=args.counts, cohort=args.cohort,
                           rounds=args.rounds, local_epochs=args.epochs,
                           num_workers=args.workers, seed=args.seed,
                           output_name=args.output)


if __name__ == "__main__":
    main()

"""Table V — inductive accuracy under random- vs meta-injection
(Flickr and Reddit analogues, structure Non-iid split)."""

from repro.experiments import format_table, prepare_clients, run_method

from benchmarks.bench_utils import load_bench_dataset, record, settings

METHODS = ["fedgl", "gcfl+", "fedsage+", "fed-pub", "adafgl"]
DATASETS = ["flickr", "reddit"]


def test_table5_injection_inductive(benchmark):
    config = settings()

    def run():
        results = {}
        for dataset in DATASETS:
            graph = load_bench_dataset(dataset)
            for injection in ("random", "meta"):
                clients = prepare_clients(dataset, "structure", config,
                                          graph=graph, injection=injection)
                for method in METHODS:
                    summary = run_method(method, clients, config)
                    results.setdefault(dataset, {}).setdefault(injection, {})[
                        method] = summary["accuracy"]
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    headers = ["method"] + [f"{d}/{i}" for d in DATASETS
                            for i in ("random", "meta")]
    rows = [[m] + [results[d][i][m] for d in DATASETS
                   for i in ("random", "meta")] for m in METHODS]
    record("table5_injection_inductive",
           format_table(headers, rows,
                        title="Table V — injection strategies (inductive)"))

    # On the homophilous Reddit analogue AdaFGL must stay near the best
    # method; on the heterophilous Flickr analogue the small-client caveat of
    # EXPERIMENTS.md applies, so we only require clearly-above-chance and not
    # being an outlier far below the field.
    for injection in ("random", "meta"):
        best_reddit = max(results["reddit"][injection].values())
        assert results["reddit"][injection]["adafgl"] >= best_reddit - 0.08
        flickr = results["flickr"][injection]
        assert flickr["adafgl"] > 1.0 / 9
        assert flickr["adafgl"] >= min(flickr.values()) - 0.12

"""Fig. 5 — accuracy under varying topology heterogeneity.

Sweeps the random-injection sampling ratio and the meta-injection budget on
the PubMed and Flickr analogues and reports each method's accuracy.
"""

from repro.experiments import format_series, prepare_clients, run_method
from repro.simulation import structure_noniid_split

from benchmarks.bench_utils import SWEEP_METHODS, full_grid, load_bench_dataset, record, settings

DATASETS = ["pubmed", "flickr"] if not full_grid() else ["pubmed", "flickr",
                                                         "reddit"]
SAMPLING_RATIOS = [0.0, 0.5, 1.0]
META_BUDGETS = [0.0, 0.2, 0.4]
METHODS = ["fedgcn", "fed-pub", "adafgl"]


def test_fig5_topology_heterogeneity(benchmark):
    config = settings()

    def run():
        results = {}
        for dataset in DATASETS:
            graph = load_bench_dataset(dataset)
            for ratio in SAMPLING_RATIOS:
                clients = structure_noniid_split(
                    graph, config.num_clients, seed=config.seed,
                    injection="random", sampling_ratio=ratio)
                for method in METHODS:
                    acc = run_method(method, clients, config)["accuracy"]
                    results.setdefault(dataset, {}).setdefault(
                        ("random", ratio), {})[method] = acc
            for budget in META_BUDGETS:
                clients = structure_noniid_split(
                    graph, config.num_clients, seed=config.seed,
                    injection="meta", meta_budget=budget)
                for method in METHODS:
                    acc = run_method(method, clients, config)["accuracy"]
                    results.setdefault(dataset, {}).setdefault(
                        ("meta", budget), {})[method] = acc
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    blocks = []
    for dataset, sweeps in results.items():
        for method in METHODS:
            keys = sorted(sweeps)
            blocks.append(format_series(
                f"Fig 5 {dataset} — {method}",
                [f"{kind}:{value}" for kind, value in keys],
                [sweeps[k][method] for k in keys]))
    record("fig5_heterogeneity", "\n\n".join(blocks))

    # AdaFGL should never be the worst method at the strongest perturbation.
    for dataset in DATASETS:
        strongest = results[dataset][("random", 1.0)]
        assert strongest["adafgl"] >= min(strongest.values())

"""Table III — inductive accuracy on Flickr and Reddit."""

from repro.experiments import format_table

from benchmarks.bench_utils import record, run_grid, settings

METHODS = ["fedgcnii", "fedglognn", "fedgl", "gcfl+", "fedsage+", "fed-pub",
           "adafgl"]
DATASETS = ["flickr", "reddit"]


def test_table3_inductive_performance(benchmark):
    config = settings()
    results = benchmark.pedantic(
        lambda: run_grid(DATASETS, METHODS, ["community", "structure"], config),
        iterations=1, rounds=1)

    blocks = []
    for split in ("community", "structure"):
        rows = [[m] + [results[split][d][m] for d in DATASETS] for m in METHODS]
        blocks.append(format_table(["method"] + DATASETS, rows,
                                   title=f"Table III — {split} split"))
    record("table3_inductive", "\n\n".join(blocks))

    # AdaFGL should be competitive (within a margin of the best baseline) on
    # the homophilous Reddit analogue in both splits.
    for split in ("community", "structure"):
        best = max(results[split]["reddit"].values())
        assert results[split]["reddit"]["adafgl"] >= best - 0.06

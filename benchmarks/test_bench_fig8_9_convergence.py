"""Fig. 8 and Fig. 9 — convergence curves of AdaFGL vs baselines under both
data-simulation strategies."""

from repro.experiments import format_series, prepare_clients, run_method

from benchmarks.bench_utils import full_grid, load_bench_dataset, record, settings

DATASETS = ["cora", "squirrel"] if not full_grid() else [
    "cora", "citeseer", "pubmed", "chameleon", "squirrel", "actor"]
METHODS = ["fedgcn", "fed-pub", "adafgl"]


def test_fig8_9_convergence_curves(benchmark):
    config = settings()

    def run():
        results = {}
        for dataset in DATASETS:
            graph = load_bench_dataset(dataset)
            for split in ("community", "structure"):
                clients = prepare_clients(dataset, split, config, graph=graph)
                for method in METHODS:
                    summary = run_method(method, clients, config)
                    results[(dataset, split, method)] = summary["history"]
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    blocks = []
    for (dataset, split, method), history in results.items():
        blocks.append(format_series(
            f"Fig 8/9 {dataset} ({split}) — {method}",
            history.rounds, history.test_accuracy))
    record("fig8_9_convergence", "\n\n".join(blocks))

    # AdaFGL's final accuracy should not be below its own early accuracy
    # (stable convergence) and should end near the top of the compared set.
    for dataset in DATASETS:
        for split in ("community", "structure"):
            ada = results[(dataset, split, "adafgl")]
            assert ada.final_test_accuracy >= ada.test_accuracy[0] - 0.05
            finals = [results[(dataset, split, m)].final_test_accuracy
                      for m in METHODS]
            assert ada.final_test_accuracy >= min(finals)

"""Pytest entry point for the perf-engine timing harness (marker: bench).

Skipped by tier-1 runs; enable with ``pytest --run-bench`` or
``REPRO_RUN_BENCH=1``.  Uses small graphs so CI-scale machines finish in
seconds — the CI ``bench-smoke`` job runs exactly this subset, so backend
perf regressions (a broken pool, a non-batching plan, lost parity) fail
loudly instead of rotting in the checked-in JSON artifacts, which are
produced by running ``bench_perf.py`` directly at full size.
"""

import pytest

from benchmarks.bench_perf import run_benchmark


@pytest.mark.bench
def test_perf_harness_smoke():
    report = run_benchmark([200, 400], epochs=4, step1_rounds=2, top_k=16,
                           output_name="BENCH_step2_smoke",
                           pool_kwargs=dict(num_clients=4,
                                            nodes_per_client=80, epochs=4,
                                            step1_rounds=2))
    assert len(report["sizes"]) == 2
    for entry in report["sizes"]:
        assert entry["epoch_speedup"] > 0
        assert entry["dense"]["matrix_mb"] >= entry["sparse"]["matrix_mb"]
        assert 0.0 <= entry["sparse"]["test_accuracy"] <= 1.0
    # The persistent-pool Step 2 reproduces serial client reports exactly.
    assert report["step2_pool"]["report_gap"] == 0.0


@pytest.mark.bench
@pytest.mark.parametrize("model", ["gcn", "sgc"])
def test_step1_backend_harness_smoke(model):
    from benchmarks.bench_perf import run_step1_backends

    report = run_step1_backends(num_clients=6, nodes_per_client=40,
                                rounds=2, local_epochs=2, num_workers=2,
                                model=model,
                                output_name=f"BENCH_step1_smoke_{model}")
    assert set(report["backends"]) == {"serial", "process_pool", "batched"}
    for entry in report["backends"].values():
        assert entry["rounds_per_sec"] > 0
        # Every backend reproduces the serial training history.
        assert entry["loss_gap"] < 1e-9
    # Pipelined sync rounds under straggler skew stay exact.
    assert report["straggler"]["process_pool"]["loss_gap"] == 0.0
    assert report["straggler"]["process_pool"]["worker_utilization"] > 0
    # The async section recorded a full lag/utilization profile.
    assert report["step1_async"]["reports_merged"] > 0
    assert report["step1_async"]["per_client_lag"]
    # The codec section measured the lossless point, ≥1 lossy top-k point
    # and ≥1 quantised (qtopk) point on the bits axis.
    codecs = {entry["codec"]: entry
              for entry in report["delta_codec"]["codecs"]}
    assert "bitdelta" in codecs and len(codecs) >= 2
    quantised = [entry for entry in codecs.values()
                 if entry["codec"].startswith("qtopk")]
    assert quantised and all("delta_bits" in entry for entry in quantised)
    # The decoupled-hop plans hold the hard parity bar at toy scale too.
    for family, entry in report["models"].items():
        assert entry["batched"]["loss_gap"] == 0.0, family
        assert entry["batched"]["rounds_per_sec"] > 0


@pytest.mark.bench
def test_step1_decoupled_models_smoke():
    """Toy-scale batched GAMLP / GPR-GNN suite (CI bench-smoke coverage)."""
    from benchmarks.bench_perf import make_graph, run_step1_models

    graphs = [make_graph(40, seed=index, num_features=32)
              for index in range(6)]
    section = run_step1_models(graphs, rounds=2, local_epochs=2, repeats=1)
    assert set(section) == {"gamlp", "gprgnn"}
    for family, entry in section.items():
        assert entry["batched"]["loss_gap"] == 0.0, family
        assert entry["serial"]["rounds_per_sec"] > 0
        assert entry["batched"]["rounds_per_sec"] > 0


@pytest.mark.bench
def test_step1_async_harness_smoke():
    """Toy-scale bounded-staleness async suite (CI bench-smoke coverage)."""
    from benchmarks.bench_perf import make_graph, run_step1_async

    graphs = [make_graph(40, seed=index, num_features=32)
              for index in range(6)]
    section = run_step1_async(graphs, rounds=3, local_epochs=2,
                              num_workers=2, seed=0, async_buffer=1,
                              staleness_cap=2, worker_speeds=(1.0, 0.5))
    assert section["rounds_per_sec"] > 0
    assert section["reports_merged"] >= 3
    assert 0.0 <= section["worker_utilization"] <= 1.0
    assert section["max_report_lag"] >= 0
    assert section["per_client_lag"]
    assert 0.0 <= section["test_accuracy"] <= 1.0


@pytest.mark.bench
def test_faults_harness_smoke():
    """Toy-scale fault-tolerance cost model (CI bench-smoke coverage)."""
    from benchmarks.bench_perf import run_faults_suite

    report = run_faults_suite(num_clients=4, nodes_per_client=40,
                              rounds=3, local_epochs=2, num_workers=2,
                              crash_rates=(0.3,), stall_duration=1.0,
                              round_timeout=0.3,
                              output_name="BENCH_faults_smoke")
    # Targeted crash recovery is wall-clock-only: histories stay bitwise.
    for policy in ("restart", "redistribute"):
        entry = report["recovery"][policy]
        assert entry["loss_gap"] == 0.0, policy
        assert entry["fault_stats"]["crashes"] == 1
    # The seeded chaos sweep survived and accounted for every fired event.
    for entry in report["chaos"]:
        assert entry["fault_stats"]["crashes"] == \
            entry["fired"].get("crash", 0)
        assert 0.0 <= entry["test_accuracy"] <= 1.0
    # The stalled shard was dropped, not waited for.
    assert report["timeout"]["fault_stats"]["timeouts"] >= 1
    assert report["timeout"]["dropped_reports"] >= 1


@pytest.mark.bench
def test_topk_curve_harness_smoke():
    from benchmarks.bench_perf import run_topk_curve

    report = run_topk_curve(num_nodes=200, ks=(4, 16), epochs=3,
                            step1_rounds=2, output_name="BENCH_topk_smoke")
    assert len(report["curve"]) == 2
    for entry in report["curve"]:
        assert 0.0 <= entry["test_accuracy"] <= 1.0
        assert entry["matrix_mb"] <= report["dense"]["matrix_mb"]

"""Pytest entry point for the sparse-engine timing harness (marker: bench).

Skipped by tier-1 runs; enable with ``pytest --run-bench`` or
``REPRO_RUN_BENCH=1``.  Uses small graphs so CI-scale machines finish in
seconds; the checked-in ``BENCH_step2.json`` is produced by running
``bench_perf.py`` directly at full size.
"""

import pytest

from benchmarks.bench_perf import run_benchmark


@pytest.mark.bench
def test_perf_harness_smoke():
    report = run_benchmark([200, 400], epochs=4, step1_rounds=2, top_k=16,
                           output_name="BENCH_step2_smoke")
    assert len(report["sizes"]) == 2
    for entry in report["sizes"]:
        assert entry["epoch_speedup"] > 0
        assert entry["dense"]["matrix_mb"] >= entry["sparse"]["matrix_mb"]
        assert 0.0 <= entry["sparse"]["test_accuracy"] <= 1.0

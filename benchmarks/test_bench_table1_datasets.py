"""Table I — dataset statistics of the 12 benchmarks (paper-scale vs generated)."""

from repro.datasets import dataset_statistics, list_datasets
from repro.experiments import format_table

from benchmarks.bench_utils import record


def test_table1_dataset_statistics(benchmark):
    def build():
        return [dataset_statistics(name, seed=0) for name in list_datasets()]

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    table = format_table(
        ["dataset", "nodes", "edges", "classes", "E.Homo", "target", "task",
         "paper nodes", "paper edges"],
        [[r["name"], r["nodes"], r["edges"], r["classes"],
          r["edge_homophily"], r["target_edge_homophily"], r["task"],
          r["paper_nodes"], r["paper_edges"]] for r in rows],
        title="Table I: dataset statistics (generated stand-ins)")
    record("table1_datasets", table)
    assert len(rows) == 12
    # Homophilous datasets stay homophilous, heterophilous stay heterophilous.
    by_name = {r["name"]: r for r in rows}
    assert by_name["cora"]["edge_homophily"] > 0.6
    assert by_name["squirrel"]["edge_homophily"] < 0.35

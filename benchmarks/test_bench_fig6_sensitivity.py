"""Fig. 6 — sensitivity of AdaFGL to the α (topology optimisation) and
β (learnable propagation) hyperparameters."""

from repro.core import AdaFGL
from repro.experiments import format_table, prepare_clients

from benchmarks.bench_utils import load_bench_dataset, record, settings

ALPHAS = [0.1, 0.5, 0.9]
BETAS = [0.1, 0.5, 0.9]
DATASETS = ["cora", "chameleon"]


def test_fig6_alpha_beta_sensitivity(benchmark):
    config = settings()

    def run():
        results = {}
        for dataset in DATASETS:
            graph = load_bench_dataset(dataset)
            for split in ("community", "structure"):
                clients = prepare_clients(dataset, split, config, graph=graph)
                for alpha in ALPHAS:
                    for beta in BETAS:
                        variant = config.adafgl_config(alpha=alpha, beta=beta)
                        trainer = AdaFGL(clients, variant)
                        trainer.run()
                        results.setdefault((dataset, split), {})[(alpha, beta)] \
                            = trainer.evaluate("test")
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    blocks = []
    for (dataset, split), grid in results.items():
        rows = [[f"alpha={alpha}"] + [grid[(alpha, beta)] for beta in BETAS]
                for alpha in ALPHAS]
        blocks.append(format_table(
            ["alpha \\ beta"] + [str(b) for b in BETAS], rows,
            title=f"Fig 6 — {dataset} ({split})"))
    record("fig6_sensitivity", "\n\n".join(blocks))

    # Sanity: every configuration trains to something better than chance.
    for (dataset, _), grid in results.items():
        floor = 1.0 / (7 if dataset == "cora" else 5)
        assert max(grid.values()) > floor

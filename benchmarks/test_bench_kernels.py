"""Pytest entry point for the array-backend kernels bench (marker: bench).

Skipped by tier-1 runs; enable with ``pytest --run-bench`` or
``REPRO_RUN_BENCH=1``.  The CI backend-matrix job additionally runs
``bench_kernels.py --smoke`` directly (with numba installed), so the
compiled-kernel arm is exercised there; this wrapper keeps the harness
importable and the scatter-free sddmm-backward gate honest at pytest
scale in every environment.
"""

import pytest

from benchmarks.bench_kernels import evaluate_gates, run_kernel_suite


@pytest.mark.bench
def test_kernel_suite_smoke():
    entries = run_kernel_suite(scale=0.3, repeats=3)
    kernels = {entry["kernel"] for entry in entries}
    assert {"spmm", "spmm_backward", "spmm_batched", "sddmm",
            "sddmm_backward", "spmm_pattern", "spmm_pattern_backward_values",
            "spmm_pattern_backward_dense", "dropout_mask",
            "apply_mask"} <= kernels
    for entry in entries:
        assert entry["numpy_us"] > 0 and entry["jit_us"] > 0
    gates = evaluate_gates(entries)
    # The scatter-free sddmm backward wins with or without numba.
    assert gates["sddmm_backward"]["met"], gates


@pytest.mark.bench
def test_e2e_step2_parity_smoke():
    from benchmarks.bench_kernels import run_e2e_section

    section = run_e2e_section()
    assert section["loss_bitwise_equal"] is True
    assert section["numpy"]["step2_epochs_per_sec"] > 0
    assert section["jit"]["step2_epochs_per_sec"] > 0

"""Table VII — AdaFGL ablation on heterophilous datasets (arxiv-year, Flickr)."""

import numpy as np

from repro.experiments import format_table

from benchmarks.bench_utils import record, settings
from benchmarks.test_bench_table6_ablation_homophilous import _run_ablation

DATASETS = ["arxiv-year", "flickr"]


def test_table7_ablation_heterophilous(benchmark):
    config = settings()
    results = benchmark.pedantic(lambda: _run_ablation(DATASETS, config),
                                 iterations=1, rounds=1)

    labels = ["w/o K.P.", "w/o T.F.", "w/o L.M.", "w/o L.T.", "w/o HCS",
              "AdaFGL"]
    headers = ["component"] + [f"{d}/{s}" for d in DATASETS
                               for s in ("community", "structure")]
    rows = [[label] + [results[d][s][label] for d in DATASETS
                       for s in ("community", "structure")]
            for label in labels]
    record("table7_ablation_heterophilous",
           format_table(headers, rows,
                        title="Table VII — ablation on heterophilous datasets"))

    full = np.mean([results[d][s]["AdaFGL"] for d in DATASETS
                    for s in ("community", "structure")])
    for label in labels[:-1]:
        ablated = np.mean([results[d][s][label] for d in DATASETS
                           for s in ("community", "structure")])
        assert full >= ablated - 0.06

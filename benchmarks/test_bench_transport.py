"""Pytest entry point for the transport harness (marker: bench).

Skipped by tier-1 runs; enable with ``pytest --run-bench`` or
``REPRO_RUN_BENCH=1``.  Runs the suite at smoke scale — the checked-in
``BENCH_transport.json`` artifact is produced by running
``bench_transport.py`` directly at the full grid.
"""

import pytest

from benchmarks.bench_transport import run_transport_suite


@pytest.mark.bench
def test_transport_harness_smoke():
    report = run_transport_suite(smoke=True,
                                 output_name="BENCH_transport_smoke")
    # The hard bar: tcp reproduces pipe bitwise on localhost.
    assert report["transport_parity"]["bitwise_equal"]
    assert report["transport_parity"]["tcp"]["wire"]["frames_sent"] > 0
    sweep = report["wan_codec_sweep"]
    assert len(sweep) == 4      # 2 links x 2 codecs
    for point in sweep:
        assert point["rounds_per_sec"] > 0
        assert point["uploaded_floats"] > 0
    # Lossless cells reproduce the reference history on every link.
    for point in sweep:
        if point["codec"] == "bitdelta":
            assert point["bitwise_vs_reference"]
    # The quantised codec uploads strictly fewer floats than bitdelta.
    by_codec = {(point["link"], point["codec"]): point for point in sweep}
    for link in ("loopback", "wan"):
        assert by_codec[(link, "qtopk")]["uploaded_floats"] < \
            by_codec[(link, "bitdelta")]["uploaded_floats"]
    # Every cell ran over the real framed channel with a clean wire.
    for point in sweep:
        assert point["wire"]["frames_sent"] > 0
        assert point["wire"]["crc_failures"] == 0

"""Table VI — AdaFGL ablation on homophilous datasets (Computer, Reddit)."""

from repro.core import AdaFGL, ablation_variants
from repro.experiments import format_table, prepare_clients

from benchmarks.bench_utils import load_bench_dataset, record, settings

DATASETS = ["computer", "reddit"]


def _run_ablation(datasets, config):
    results = {}
    base = config.adafgl_config()
    variants = ablation_variants(base)
    for dataset in datasets:
        graph = load_bench_dataset(dataset)
        for split in ("community", "structure"):
            clients = prepare_clients(dataset, split, config, graph=graph)
            for label, variant in variants.items():
                trainer = AdaFGL(clients, variant)
                trainer.run()
                results.setdefault(dataset, {}).setdefault(split, {})[label] \
                    = trainer.evaluate("test")
    return results


def test_table6_ablation_homophilous(benchmark):
    config = settings()
    results = benchmark.pedantic(lambda: _run_ablation(DATASETS, config),
                                 iterations=1, rounds=1)

    labels = ["w/o K.P.", "w/o T.F.", "w/o L.M.", "w/o L.T.", "w/o HCS",
              "AdaFGL"]
    headers = ["component"] + [f"{d}/{s}" for d in DATASETS
                               for s in ("community", "structure")]
    rows = [[label] + [results[d][s][label] for d in DATASETS
                       for s in ("community", "structure")]
            for label in labels]
    record("table6_ablation_homophilous",
           format_table(headers, rows,
                        title="Table VI — ablation on homophilous datasets"))

    # The full model should not be substantially worse than any ablation on
    # average (components help or are at least neutral).
    import numpy as np
    full = np.mean([results[d][s]["AdaFGL"] for d in DATASETS
                    for s in ("community", "structure")])
    for label in labels[:-1]:
        ablated = np.mean([results[d][s][label] for d in DATASETS
                           for s in ("community", "structure")])
        assert full >= ablated - 0.05

"""Table IV — transductive accuracy under random- vs meta-injection
(Physics and Penn94 analogues, structure Non-iid split)."""

from repro.experiments import format_table, prepare_clients, run_method

from benchmarks.bench_utils import load_bench_dataset, record, settings

METHODS = ["fedgl", "gcfl+", "fedsage+", "fed-pub", "adafgl"]
DATASETS = ["physics", "penn94"]


def test_table4_injection_transductive(benchmark):
    config = settings()

    def run():
        results = {}
        for dataset in DATASETS:
            graph = load_bench_dataset(dataset)
            for injection in ("random", "meta"):
                clients = prepare_clients(dataset, "structure", config,
                                          graph=graph, injection=injection)
                for method in METHODS:
                    summary = run_method(method, clients, config)
                    results.setdefault(dataset, {}).setdefault(injection, {})[
                        method] = summary["accuracy"]
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    headers = ["method"] + [f"{d}/{i}" for d in DATASETS
                            for i in ("random", "meta")]
    rows = [[m] + [results[d][i][m] for d in DATASETS
                   for i in ("random", "meta")] for m in METHODS]
    record("table4_injection_transductive",
           format_table(headers, rows,
                        title="Table IV — injection strategies (transductive)"))

    # AdaFGL should be at or near the top under both injection techniques.
    for dataset in DATASETS:
        for injection in ("random", "meta"):
            best = max(results[dataset][injection].values())
            assert results[dataset][injection]["adafgl"] >= best - 0.08

"""Transport harness: codec bytes → wall-clock rounds/sec under real links.

Two sections:

* **transport_parity** — the same sync Step-1 training over ``pipe`` and
  ``tcp`` on localhost, asserting the histories are **bitwise-equal** (the
  tentpole bar) and reporting the wire statistics (frames, bytes,
  retransmits) the framed channel accumulates;
* **wan_codec_sweep** — a grid of simulated WAN presets (LAN, WAN,
  slow/thin, lossy) × upload delta codecs (``bitdelta``/``topk``/``qtopk``)
  over the TCP transport, reporting wall-clock rounds/sec, the codec's
  communicated float volume and the wire counters, so the plot "fewer codec
  bytes → more rounds/sec as the link thins" falls straight out of
  ``BENCH_transport.json``.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_transport.py            # full
    PYTHONPATH=src:. python benchmarks/bench_transport.py --smoke    # CI

The full run writes ``benchmarks/results/BENCH_transport.json``; ``--smoke``
writes ``BENCH_transport_smoke.json``.

Every TCP federation spawns worker processes via forkserver/spawn, so this
module must stay importable as ``__main__`` without side effects (the
``if __name__ == "__main__"`` guard below is load-bearing).
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Optional

import numpy as np

from benchmarks.bench_utils import record_json
from repro.datasets import load_dataset
from repro.federated import FederatedConfig
from repro.fgl import build_baseline
from repro.simulation import community_split

#: simulated links for the sweep: (name, WAN spec or None for a raw socket)
WAN_PRESETS = [
    ("loopback", None),
    ("lan", {"latency_ms": 0.5, "jitter_ms": 0.2,
             "bandwidth_mbps": 1000.0, "seed": 7}),
    ("wan", {"latency_ms": 20.0, "jitter_ms": 5.0,
             "bandwidth_mbps": 100.0, "loss": 0.01, "seed": 7}),
    ("slow", {"latency_ms": 80.0, "jitter_ms": 10.0,
              "bandwidth_mbps": 10.0, "seed": 7}),
    ("lossy", {"latency_ms": 40.0, "jitter_ms": 10.0,
               "bandwidth_mbps": 50.0, "loss": 0.05, "seed": 7}),
]

#: upload codecs, lossless first (the parity reference)
CODECS = [
    dict(delta_codec="bitdelta"),
    dict(delta_codec="topk", delta_top_k=32),
    dict(delta_codec="qtopk", delta_top_k=32, delta_bits=8),
]

#: keep failure detection snappy without tripping on loaded CI machines
KNOBS = dict(heartbeat_interval=0.25, heartbeat_timeout=10.0,
             retransmit_timeout=0.5)


def _train(clients, *, rounds: int, transport: str,
           transport_options: Optional[Dict] = None, seed: int = 0,
           **codec) -> Dict:
    """One sync process-pool training; returns history + timing + wire."""
    config = FederatedConfig(rounds=rounds, local_epochs=2, lr=0.02,
                             seed=seed, backend="process_pool",
                             num_workers=2, intra_worker="serial",
                             transport=transport,
                             transport_options=transport_options, **codec)
    trainer = build_baseline("fedgcn", clients, config=config, hidden=32)
    start = time.perf_counter()
    history = trainer.run()
    wall = time.perf_counter() - start
    stats = trainer.backend.last_pipeline_stats
    return {
        "history": history,
        "wall_sec": wall,
        "rounds_per_sec": rounds / wall,
        # the pool-IPC accounting (codec-aware parameter_delta volume), not
        # the backend-invariant logical tracker
        "comm_floats": trainer.backend.transport.summary(),
        "wire": stats.get("transport", {}),
        "accuracy": history.test_accuracy[-1],
    }


def _bitwise_equal(a, b) -> bool:
    return (a.rounds == b.rounds
            and np.array_equal(a.loss, b.loss)
            and np.array_equal(a.test_accuracy, b.test_accuracy)
            and np.array_equal(a.train_accuracy, b.train_accuracy))


def run_parity_section(clients, *, rounds: int, seed: int = 0) -> Dict:
    """pipe vs tcp on localhost: bitwise histories, relative wall-clock."""
    pipe = _train(clients, rounds=rounds, transport="pipe", seed=seed)
    tcp = _train(clients, rounds=rounds, transport="tcp",
                 transport_options=dict(KNOBS), seed=seed)
    equal = _bitwise_equal(pipe["history"], tcp["history"])
    section = {
        "bitwise_equal": equal,
        "pipe": {"wall_sec": pipe["wall_sec"],
                 "rounds_per_sec": pipe["rounds_per_sec"]},
        "tcp": {"wall_sec": tcp["wall_sec"],
                "rounds_per_sec": tcp["rounds_per_sec"],
                "wire": tcp["wire"]},
    }
    print(f"  parity: bitwise={equal}  pipe {pipe['wall_sec']:.2f}s  "
          f"tcp {tcp['wall_sec']:.2f}s  "
          f"({tcp['wire'].get('bytes_sent', 0)} bytes down, "
          f"{tcp['wire'].get('retransmits', 0)} retransmits)")
    return section


def run_wan_codec_sweep(clients, *, rounds: int, presets, codecs,
                        seed: int = 0) -> List[Dict]:
    """TCP training per (link preset × upload codec) cell."""
    reference = None
    points = []
    for preset_name, wan in presets:
        options = dict(KNOBS)
        if wan is not None:
            options["wan"] = wan
        for codec in codecs:
            result = _train(clients, rounds=rounds, transport="tcp",
                            transport_options=options, seed=seed, **codec)
            if reference is None:       # loopback/bitdelta cell
                reference = result
            point = {
                "link": preset_name,
                "wan": wan,
                "codec": codec["delta_codec"],
                "wall_sec": result["wall_sec"],
                "rounds_per_sec": result["rounds_per_sec"],
                "uploaded_floats": result["comm_floats"]["uploaded"],
                "downloaded_floats": result["comm_floats"]["downloaded"],
                "accuracy": result["accuracy"],
                "wire": result["wire"],
                # lossless cells must reproduce the reference bitwise; the
                # lossy codecs trade exactness for bytes by design
                "bitwise_vs_reference": _bitwise_equal(
                    result["history"], reference["history"]),
            }
            points.append(point)
            print(f"  link={preset_name:8s} codec={point['codec']:8s} "
                  f"{point['rounds_per_sec']:6.2f} rounds/s  "
                  f"up {point['uploaded_floats']:.0f} floats  "
                  f"retx {result['wire'].get('retransmits', 0)}  "
                  f"dropped {result['wire'].get('wan_dropped', 0)}")
    return points


def run_transport_suite(*, smoke: bool = False,
                        output_name: Optional[str] = None,
                        seed: int = 0) -> Dict:
    if smoke:
        num_nodes, num_clients, rounds = 200, 4, 3
        presets = [WAN_PRESETS[0], WAN_PRESETS[2]]      # loopback + wan
        codecs = [CODECS[0], CODECS[2]]                 # bitdelta + qtopk
    else:
        num_nodes, num_clients, rounds = 400, 4, 5
        presets = WAN_PRESETS
        codecs = CODECS

    graph = load_dataset("cora", seed=seed, num_nodes=num_nodes)
    clients = community_split(graph, num_clients, seed=seed)

    print("transport parity (pipe vs tcp):")
    parity = run_parity_section(clients, rounds=rounds, seed=seed)
    print("wan × codec sweep:")
    sweep = run_wan_codec_sweep(clients, rounds=rounds, presets=presets,
                                codecs=codecs, seed=seed)

    slowest = min(sweep, key=lambda point: point["rounds_per_sec"])
    fastest = max(sweep, key=lambda point: point["rounds_per_sec"])
    report = {
        "setup": {"dataset": "cora", "num_nodes": num_nodes,
                  "num_clients": num_clients, "num_workers": 2,
                  "rounds": rounds, "seed": seed,
                  "presets": [name for name, _wan in presets],
                  "codecs": [codec["delta_codec"] for codec in codecs]},
        "transport_parity": parity,
        "wan_codec_sweep": sweep,
        "headline": {
            "bitwise_parity": parity["bitwise_equal"],
            "fastest": {key: fastest[key]
                        for key in ("link", "codec", "rounds_per_sec")},
            "slowest": {key: slowest[key]
                        for key in ("link", "codec", "rounds_per_sec")},
        },
    }
    name = output_name or ("BENCH_transport_smoke" if smoke
                           else "BENCH_transport")
    record_json(name, report)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="transport parity + WAN/codec sweep harness")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid for CI (BENCH_transport_smoke.json)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    report = run_transport_suite(smoke=args.smoke, seed=args.seed)
    assert report["transport_parity"]["bitwise_equal"]
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Results are
printed and also written to ``benchmarks/results/<name>.txt`` so they survive
pytest's output capturing.

Scale knobs (environment variables):

* ``REPRO_BENCH_NODES`` — nodes per generated dataset (default 600).
* ``REPRO_BENCH_FULL=1`` — run the full dataset/method grids instead of the
  representative subsets used by default to keep the suite fast.
* ``REPRO_CLIENTS`` / ``REPRO_ROUNDS`` / ``REPRO_EPOCHS`` /
  ``REPRO_PERSONALIZED_EPOCHS`` — forwarded to :class:`ExperimentSettings`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Sequence

from repro.datasets import load_dataset
from repro.experiments import ExperimentSettings, prepare_clients, run_method

RESULTS_DIR = Path(__file__).parent / "results"

#: Methods reported in Table II/III of the paper (plus AdaFGL).
MAIN_METHODS = [
    "fedgcn", "fedgcnii", "fedgamlp", "fedgprgnn", "fedggcn", "fedglognn",
    "fedgl", "gcfl+", "fedsage+", "fed-pub", "adafgl",
]

#: Smaller method set for sweeps/figures.
SWEEP_METHODS = ["fedgcn", "fedglognn", "fedsage+", "fed-pub", "adafgl"]


def full_grid() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_nodes() -> int:
    try:
        return int(os.environ.get("REPRO_BENCH_NODES", "600"))
    except ValueError:
        return 600


def settings(**overrides) -> ExperimentSettings:
    base = ExperimentSettings()
    for key, value in overrides.items():
        setattr(base, key, value)
    return base


def load_bench_dataset(name: str, seed: int = 0):
    """Load a dataset at benchmark scale."""
    return load_dataset(name, seed=seed, num_nodes=bench_nodes())


def run_grid(datasets: Sequence[str], methods: Sequence[str],
             splits: Sequence[str], config: ExperimentSettings,
             injection: str = "random") -> Dict:
    """Run every (dataset, split, method) combination and collect accuracies."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for dataset in datasets:
        graph = load_bench_dataset(dataset, seed=config.seed)
        for split in splits:
            clients = prepare_clients(dataset, split, config, graph=graph,
                                      injection=injection)
            for method in methods:
                summary = run_method(method, clients, config)
                results.setdefault(split, {}).setdefault(dataset, {})[method] \
                    = summary["accuracy"]
    return results


def record(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def record_json(name: str, payload: Dict) -> Path:
    """Persist a structured result under benchmarks/results/<name>.json.

    Used by the timing harness (``bench_perf.py``) so perf trajectories can
    be diffed across PRs; returns the written path.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[saved to {path}]")
    return path

"""Table II — transductive accuracy on the 10 transductive datasets,
community split vs structure Non-iid split, all baselines + AdaFGL."""

import numpy as np

from repro.experiments import format_table

from benchmarks.bench_utils import (
    MAIN_METHODS,
    full_grid,
    record,
    run_grid,
    settings,
)

DEFAULT_DATASETS = ["cora", "citeseer", "chameleon", "squirrel"]
FULL_DATASETS = ["cora", "citeseer", "pubmed", "computer", "physics",
                 "chameleon", "squirrel", "actor", "penn94", "arxiv-year"]


def test_table2_transductive_performance(benchmark):
    datasets = FULL_DATASETS if full_grid() else DEFAULT_DATASETS
    config = settings()

    results = benchmark.pedantic(
        lambda: run_grid(datasets, MAIN_METHODS, ["community", "structure"],
                         config),
        iterations=1, rounds=1)

    blocks = []
    for split in ("community", "structure"):
        rows = [[method] + [results[split][d][method] for d in datasets]
                for method in MAIN_METHODS]
        blocks.append(format_table(["method"] + datasets, rows,
                                   title=f"Table II — {split} split"))
    record("table2_transductive", "\n\n".join(blocks))

    # Shape checks against the paper's headline claims.
    homophilous = [d for d in datasets if d in ("cora", "citeseer", "pubmed",
                                                "computer", "physics")]
    # (1) AdaFGL is the best or near-best method on homophilous datasets under
    #     the community split.  CiteSeer gets a looser margin: the paper
    #     itself reports only limited AdaFGL improvement on its weak global
    #     homophily (Sec. IV-B).
    for dataset in homophilous:
        margin = 0.08 if dataset == "citeseer" else 0.05
        best = max(results["community"][dataset].values())
        assert results["community"][dataset]["adafgl"] >= best - margin
    # (2) Homophilous federated GNNs degrade on homophilous datasets when
    #     moving from community split to structure Non-iid split.
    drops = [results["community"][d]["fedgcn"] - results["structure"][d]["fedgcn"]
             for d in homophilous]
    assert np.mean(drops) > 0.0
    # (3) AdaFGL stays within a small margin of the best method on average.
    gaps = []
    for split in ("community", "structure"):
        for dataset in datasets:
            best = max(results[split][dataset].values())
            gaps.append(best - results[split][dataset]["adafgl"])
    assert np.mean(gaps) < 0.08

"""Pytest entry point for the scaling harness (marker: bench).

Skipped by tier-1 runs; enable with ``pytest --run-bench`` or
``REPRO_RUN_BENCH=1``.  Runs the suite at smoke scale — the checked-in
``BENCH_scale.json`` artifact is produced by running ``bench_scale.py``
directly at the full {1k, 10k, 100k} client counts.
"""

import pytest

from benchmarks.bench_scale import run_scale_suite


@pytest.mark.bench
def test_scale_harness_smoke():
    report = run_scale_suite(client_counts=(64, 256), cohort=16, rounds=2,
                             local_epochs=1, num_workers=2,
                             output_name="BENCH_scale_smoke")
    # The hard exactness bar: both scaling paths reproduce flat FedAvg.
    assert report["parity"]["hierarchical_loss_gap"] == 0.0
    assert report["parity"]["store_trainer_loss_gap"] == 0.0
    points = report["curve"]["points"]
    assert [entry["num_clients"] for entry in points] == [64, 256]
    for entry in points:
        assert entry["rounds_per_sec"] > 0
        assert entry["participants_per_round"] == 16
        assert entry["coordinator_peak_rss_mb"] > 0
    # 4x the clients must not cost 4x the coordinator footprint: only the
    # sampled cohort ever materializes, so RSS stays ~flat.
    assert points[1]["coordinator_peak_rss_mb"] < \
        2 * points[0]["coordinator_peak_rss_mb"]
    assert report["headline"]["num_clients"] == 256

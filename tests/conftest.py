"""Shared fixtures: small deterministic graphs and client splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import CSBMConfig, generate_csbm, load_dataset, make_split_masks
from repro.graph import Graph
from repro.simulation import community_split, structure_noniid_split


def small_csbm(num_nodes=120, num_classes=3, homophily=0.8, seed=0,
               num_features=16, avg_degree=6.0, signal=1.2) -> Graph:
    """Small labelled graph used across the test suite."""
    config = CSBMConfig(
        num_nodes=num_nodes, num_classes=num_classes, num_features=num_features,
        avg_degree=avg_degree, edge_homophily=homophily, feature_signal=signal,
        blocks_per_class=2, seed=seed, name=f"test-{homophily}")
    graph = generate_csbm(config)
    make_split_masks(graph, 0.4, 0.3, 0.3, seed=seed)
    graph.metadata["num_classes"] = num_classes
    return graph


@pytest.fixture(scope="session")
def homophilous_graph() -> Graph:
    return small_csbm(num_nodes=150, homophily=0.85, seed=1)


@pytest.fixture(scope="session")
def heterophilous_graph() -> Graph:
    return small_csbm(num_nodes=150, homophily=0.2, seed=2)


@pytest.fixture(scope="session")
def tiny_graph() -> Graph:
    """Very small graph for expensive per-test operations."""
    return small_csbm(num_nodes=60, num_classes=3, homophily=0.8, seed=3,
                      num_features=8, avg_degree=5.0)


@pytest.fixture(scope="session")
def community_clients(homophilous_graph):
    return community_split(homophilous_graph, 3, seed=0)


@pytest.fixture(scope="session")
def noniid_clients(homophilous_graph):
    return structure_noniid_split(homophilous_graph, 3, seed=0)


@pytest.fixture(scope="session")
def cora_small() -> Graph:
    return load_dataset("cora", seed=0, num_nodes=200)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)

"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, functional as F
from repro.core.hcs import label_propagation
from repro.core.knowledge import optimized_propagation_matrix
from repro.federated import fedavg_aggregate
from repro.graph import (
    adjacency_from_edges,
    edge_homophily,
    node_homophily,
    normalize_adjacency,
)
from repro.graph.normalize import row_normalize


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def random_graph(draw, max_nodes=30):
    """A random undirected graph with labels: (adjacency, labels)."""
    n = draw(st.integers(min_value=4, max_value=max_nodes))
    num_classes = draw(st.integers(min_value=2, max_value=4))
    edge_count = draw(st.integers(min_value=0, max_value=3 * n))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    rng = np.random.default_rng(seed)
    if edge_count:
        edges = rng.integers(0, n, size=(edge_count, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
    else:
        edges = np.zeros((0, 2), dtype=int)
    adjacency = adjacency_from_edges(edges, n)
    labels = rng.integers(0, num_classes, size=n)
    return adjacency, labels, num_classes


matrices = st.integers(min_value=0, max_value=2 ** 16).map(
    lambda seed: np.random.default_rng(seed).normal(
        size=(int(np.random.default_rng(seed).integers(2, 8)),
              int(np.random.default_rng(seed + 1).integers(2, 6)))))


# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------
@given(random_graph())
@settings(max_examples=40, deadline=None)
def test_homophily_metrics_are_probabilities(data):
    adjacency, labels, _ = data
    assert 0.0 <= edge_homophily(adjacency, labels) <= 1.0
    assert 0.0 <= node_homophily(adjacency, labels) <= 1.0


@given(random_graph())
@settings(max_examples=40, deadline=None)
def test_homophily_invariant_to_label_permutation(data):
    adjacency, labels, num_classes = data
    permutation = np.random.default_rng(0).permutation(num_classes)
    assert edge_homophily(adjacency, labels) == edge_homophily(
        adjacency, permutation[labels])


@given(random_graph())
@settings(max_examples=40, deadline=None)
def test_constant_labels_are_fully_homophilous(data):
    adjacency, labels, _ = data
    constant = np.zeros_like(labels)
    assert edge_homophily(adjacency, constant) == 1.0
    assert node_homophily(adjacency, constant) == 1.0


@given(random_graph(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_normalized_adjacency_is_nonnegative_and_bounded(data, r):
    adjacency, _, _ = data
    norm = normalize_adjacency(adjacency, r=r)
    dense = norm.toarray()
    assert np.all(dense >= 0.0)
    assert np.all(dense <= 1.0 + 1e-9)
    assert np.all(np.isfinite(dense))


@given(random_graph())
@settings(max_examples=30, deadline=None)
def test_label_propagation_stays_on_simplex(data):
    adjacency, labels, num_classes = data
    labeled = np.zeros(labels.shape[0], dtype=bool)
    labeled[: max(1, labels.shape[0] // 3)] = True
    beliefs = label_propagation(adjacency, labels, labeled, num_classes, k=3)
    assert np.all(beliefs >= -1e-12)
    assert np.all(beliefs <= 1.0 + 1e-9)


@given(random_graph(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=30, deadline=None)
def test_optimized_propagation_rows_sum_to_one(data, alpha):
    adjacency, labels, num_classes = data
    rng = np.random.default_rng(1)
    probs = rng.dirichlet(np.ones(num_classes), size=labels.shape[0])
    matrix = optimized_propagation_matrix(adjacency, probs, alpha=alpha)
    assert np.allclose(matrix.sum(axis=1), 1.0, atol=1e-8)
    assert np.all(matrix >= -1e-12)


@given(st.integers(min_value=2, max_value=20), st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_row_normalize_rows_sum_to_one_or_zero(n, seed):
    rng = np.random.default_rng(seed)
    matrix = np.abs(rng.normal(size=(n, n)))
    matrix[0] = 0.0
    out = row_normalize(matrix)
    sums = out.sum(axis=1)
    assert np.all((np.isclose(sums, 1.0)) | (np.isclose(sums, 0.0)))


# ----------------------------------------------------------------------
# Autograd invariants
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=40, deadline=None)
def test_softmax_rows_always_sum_to_one(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(scale=10.0, size=(5, 7))
    out = F.softmax(Tensor(x), axis=-1)
    assert np.allclose(out.data.sum(axis=1), 1.0)
    assert np.all(out.data >= 0.0)


@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=40, deadline=None)
def test_addition_gradient_is_ones(seed):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    (a + b).sum().backward()
    assert np.allclose(a.grad, 1.0)
    assert np.allclose(b.grad, 1.0)


@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=30, deadline=None)
def test_spmm_linear_in_features(seed):
    rng = np.random.default_rng(seed)
    dense = (rng.random((6, 6)) < 0.4).astype(float)
    adjacency = sp.csr_matrix(dense)
    x = rng.normal(size=(6, 3))
    y = rng.normal(size=(6, 3))
    lhs = F.spmm(adjacency, Tensor(x + y)).data
    rhs = F.spmm(adjacency, Tensor(x)).data + F.spmm(adjacency, Tensor(y)).data
    assert np.allclose(lhs, rhs)


# ----------------------------------------------------------------------
# Federated aggregation invariants
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=40, deadline=None)
def test_fedavg_stays_within_convex_hull(num_clients, seed):
    rng = np.random.default_rng(seed)
    states = [{"w": rng.normal(size=(3, 2))} for _ in range(num_clients)]
    weights = rng.random(num_clients) + 0.1
    aggregated = fedavg_aggregate(states, weights.tolist())["w"]
    stacked = np.stack([s["w"] for s in states])
    assert np.all(aggregated <= stacked.max(axis=0) + 1e-9)
    assert np.all(aggregated >= stacked.min(axis=0) - 1e-9)


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=40, deadline=None)
def test_fedavg_of_identical_states_is_identity(num_clients, seed):
    rng = np.random.default_rng(seed)
    base = {"w": rng.normal(size=(4,)), "b": rng.normal(size=(2, 2))}
    states = [{k: v.copy() for k, v in base.items()} for _ in range(num_clients)]
    aggregated = fedavg_aggregate(states)
    for key in base:
        assert np.allclose(aggregated[key], base[key])

"""Tests for pipelined round execution: streaming sync, async, delta codecs.

Covers the streaming aggregation fold (bitwise-equal to the barrier FedAvg),
the sync pipelined loop's serial-parity guarantee (the CI guard test),
pipelined failure paths (worker crashes must surface their own traceback and
reclaim the pool), bounded-staleness async rounds (determinism under fixed
simulated speeds, staleness discounting, lag histories) and the lossy top-k
delta transport with error feedback.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import AdaFGL, AdaFGLConfig
from repro.federated import FederatedConfig, ProcessPoolBackend
from repro.federated.engine import (
    StreamingAggregate,
    WorkerError,
    apply_topk_delta,
    encode_topk_delta,
    resolve_round_loop,
)
from repro.federated.engine.pipeline import AsyncRoundLoop, SyncPipelinedLoop
from repro.federated.server import fedavg_aggregate
from repro.fgl.fedgnn import FederatedGNN


def _config(backend="process_pool", rounds=3, **kwargs):
    defaults = dict(rounds=rounds, local_epochs=2, lr=0.02, seed=0,
                    backend=backend,
                    num_workers=2 if backend == "process_pool" else 0)
    defaults.update(kwargs)
    return FederatedConfig(**defaults)


def _run(clients, **kwargs):
    trainer = FederatedGNN(clients, "gcn", hidden=16, config=_config(**kwargs))
    history = trainer.run()
    return trainer, history


def _assert_bitwise_equal(a, b):
    assert a.rounds == b.rounds
    np.testing.assert_array_equal(a.loss, b.loss)
    np.testing.assert_array_equal(a.test_accuracy, b.test_accuracy)
    np.testing.assert_array_equal(a.train_accuracy, b.train_accuracy)


# ----------------------------------------------------------------------
# Streaming fold
# ----------------------------------------------------------------------
class TestStreamingAggregate:
    def _states(self, rng, count=4):
        return [{"w": rng.normal(size=(5, 3)), "b": rng.normal(size=(3,))}
                for _ in range(count)]

    def test_out_of_order_fold_is_bitwise_fedavg(self, rng):
        states = self._states(rng)
        weights = [3.0, 1.0, 7.0, 2.0]
        reference = fedavg_aggregate(states, weights)
        fold = StreamingAggregate(weights)
        for index in (2, 0, 3, 1):  # worst-case arrival order
            fold.add(index, states[index])
        sealed = fold.seal()
        for key in reference:
            np.testing.assert_array_equal(sealed[key], reference[key])

    def test_in_order_fold_matches_too(self, rng):
        states = self._states(rng, count=3)
        weights = [1, 2, 3]  # ints, like client.num_samples
        fold = StreamingAggregate(weights)
        for index, state in enumerate(states):
            fold.add(index, state)
        reference = fedavg_aggregate(states, weights)
        for key in reference:
            np.testing.assert_array_equal(fold.seal()[key], reference[key])

    def test_seal_before_complete_raises(self, rng):
        fold = StreamingAggregate([1.0, 1.0])
        fold.add(1, self._states(rng, count=1)[0])  # folds immediately
        assert fold.pending == 1
        with pytest.raises(RuntimeError, match="pending"):
            fold.seal()

    def test_duplicate_and_out_of_range_adds_raise(self, rng):
        state = self._states(rng, count=1)[0]
        fold = StreamingAggregate([1.0, 1.0])
        fold.add(0, state)
        with pytest.raises(ValueError, match="already folded"):
            fold.add(0, state)
        with pytest.raises(IndexError):
            fold.add(2, state)

    def test_invalid_weights_raise(self):
        with pytest.raises(ValueError):
            StreamingAggregate([])
        with pytest.raises(ValueError):
            StreamingAggregate([0.0, 0.0])

    def test_finalize_hook_runs_at_seal(self, rng):
        state = self._states(rng, count=1)[0]
        fold = StreamingAggregate([2.0], finalize=lambda avg: {
            key: value * 2.0 for key, value in avg.items()})
        fold.add(0, state)
        np.testing.assert_allclose(fold.seal()["w"], state["w"] * 2.0)


# ----------------------------------------------------------------------
# Sync pipelined loop
# ----------------------------------------------------------------------
class TestSyncPipelined:
    def test_sync_round_mode_bitwise_equals_serial(self, community_clients):
        """CI guard: pipelined sync histories are bitwise-equal to serial.

        3-client toy run; ``intra_worker="serial"`` pins the bitwise path so
        any deviation is the pipeline's fault, not shard fusion's.
        """
        _, serial_history = _run(community_clients, backend="serial")
        trainer, pipelined_history = _run(community_clients,
                                          intra_worker="serial")
        # The pipelined loop (not lockstep) must actually have run.
        assert trainer.backend.last_pipeline_stats is not None
        assert trainer.backend.last_pipeline_stats["round_mode"] == "sync"
        _assert_bitwise_equal(serial_history, pipelined_history)

    def test_pipelined_loop_resolves_for_process_pool(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=_config())
        assert isinstance(resolve_round_loop(trainer), SyncPipelinedLoop)
        serial = FederatedGNN(community_clients, "gcn", hidden=16,
                              config=_config("serial"))
        assert resolve_round_loop(serial) is None

    def test_hook_overrides_fall_back_to_lockstep(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=_config())
        trainer.before_round = lambda round_index, participants: None
        assert resolve_round_loop(trainer) is None

    def test_invalid_round_mode_raises(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=_config(round_mode="chaotic"))
        with pytest.raises(ValueError, match="round_mode"):
            trainer.run()

    def test_partial_participation_matches_serial(self, community_clients):
        _, serial_history = _run(community_clients, backend="serial",
                                 participation=0.67)
        _, pipelined_history = _run(community_clients, participation=0.67,
                                    intra_worker="serial")
        _assert_bitwise_equal(serial_history, pipelined_history)

    def test_eval_every_matches_serial(self, community_clients):
        _, serial_history = _run(community_clients, backend="serial",
                                 rounds=4, eval_every=2)
        _, pipelined_history = _run(community_clients, rounds=4, eval_every=2,
                                    intra_worker="serial")
        assert pipelined_history.rounds == [2, 4]
        _assert_bitwise_equal(serial_history, pipelined_history)

    def test_straggler_skew_preserves_parity(self, community_clients):
        """Simulated slow workers change timing, never results."""
        _, serial_history = _run(community_clients, backend="serial")
        trainer, skewed_history = _run(community_clients,
                                       intra_worker="serial",
                                       worker_speeds=[1.0, 0.25])
        _assert_bitwise_equal(serial_history, skewed_history)
        stats = trainer.backend.last_pipeline_stats
        assert stats["worker_utilization"] > 0.0
        assert stats["straggler_wait_sec"] >= 0.0

    def test_streaming_serveropt_matches_serial(self, community_clients):
        """fedadam streams through the finalize hook; results must match."""
        _, serial_history = _run(community_clients, backend="serial",
                                 aggregation="fedadam")
        _, pipelined_history = _run(community_clients, aggregation="fedadam",
                                    intra_worker="serial")
        _assert_bitwise_equal(serial_history, pipelined_history)

    def test_non_streaming_strategy_matches_serial(self, community_clients):
        """trimmed_mean cannot stream: the loop gathers, still pipelined."""
        _, serial_history = _run(community_clients, backend="serial",
                                 aggregation="trimmed_mean")
        trainer, pipelined_history = _run(community_clients,
                                          aggregation="trimmed_mean",
                                          intra_worker="serial")
        assert trainer.backend.last_pipeline_stats is not None
        _assert_bitwise_equal(serial_history, pipelined_history)

    def test_worker_speed_cycles_over_pool(self):
        backend = ProcessPoolBackend(2, worker_speeds=[1.0, 0.5])
        assert backend.worker_speed(0) == 1.0
        assert backend.worker_speed(1) == 0.5
        assert backend.worker_speed(2) == 1.0  # cycles
        with pytest.raises(ValueError):
            ProcessPoolBackend(2, worker_speeds=[0.0])


# ----------------------------------------------------------------------
# Pipelined failure paths
# ----------------------------------------------------------------------
class TestPipelinedFailures:
    def test_worker_crash_surfaces_traceback_and_reclaims_pool(
            self, community_clients):
        """A worker dying mid-pipelined-round must raise *its* traceback and
        the context manager must reclaim the pool with no queued broadcasts
        left behind."""
        import copy
        clients = copy.deepcopy(community_clients)
        trainer = FederatedGNN(clients, "gcn", hidden=16,
                               config=_config(rounds=3,
                                              intra_worker="serial"))
        # Out-of-range labels blow up the worker-side cross-entropy gather.
        trainer.clients[0].graph.labels[:] = 999
        with trainer:
            with pytest.raises(WorkerError, match="worker 0 failed"):
                trainer.run()
        assert trainer.backend._pool is None

    def test_run_after_worker_crash_starts_clean(self, community_clients):
        """No queued broadcasts/replies leak into the next run: after a
        crash, a repaired trainer reproduces the serial history exactly."""
        import copy
        clients = copy.deepcopy(community_clients)
        trainer = FederatedGNN(clients, "gcn", hidden=16,
                               config=_config(rounds=2,
                                              intra_worker="serial"))
        good_labels = trainer.clients[0].graph.labels.copy()
        initial = {cid: c.get_weights()
                   for cid, c in enumerate(trainer.clients)}
        trainer.clients[0].graph.labels[:] = 999
        with pytest.raises(WorkerError):
            trainer.run()
        assert trainer.backend._pool is None
        # Repair and restart from the initial weights: a clean pool must
        # reproduce the serial history bit for bit.
        trainer.clients[0].graph.labels[:] = good_labels
        for cid, client in enumerate(trainer.clients):
            client.set_weights(initial[cid])
            client.reset_optimizer()
        serial = FederatedGNN(community_clients, "gcn", hidden=16,
                              config=_config("serial", rounds=2))
        _assert_bitwise_equal(serial.run(), trainer.run())

    def test_async_worker_crash_reclaims_pool(self, community_clients):
        import copy
        clients = copy.deepcopy(community_clients)
        trainer = FederatedGNN(clients, "gcn", hidden=16,
                               config=_config(rounds=3, round_mode="async"))
        trainer.clients[0].graph.labels[:] = 999
        with pytest.raises(WorkerError, match="failed"):
            trainer.run()
        assert trainer.backend._pool is None


# ----------------------------------------------------------------------
# Bounded-staleness async rounds
# ----------------------------------------------------------------------
class TestAsyncRounds:
    SPEEDS = [1.0, 0.5]

    def _async_config(self, **kwargs):
        defaults = dict(rounds=4, round_mode="async", async_buffer=1,
                        staleness_cap=2, worker_speeds=self.SPEEDS,
                        intra_worker="serial")
        defaults.update(kwargs)
        return _config(**defaults)

    def test_fixed_seed_and_speeds_are_deterministic(self, community_clients):
        histories = []
        for _ in range(2):
            trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                                   config=self._async_config())
            histories.append(trainer.run())
        a, b = histories
        assert a.rounds == b.rounds
        np.testing.assert_array_equal(a.loss, b.loss)
        np.testing.assert_array_equal(a.test_accuracy, b.test_accuracy)
        assert a.client_lag == b.client_lag

    def test_history_records_per_client_lag(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=self._async_config())
        history = trainer.run()
        assert history.rounds == [1, 2, 3, 4]
        assert len(history.client_lag) == 4
        # Lags are observed for every client that reported, and a slow
        # worker must actually fall behind at some point.
        assert any(lag_map for lag_map in history.client_lag)
        all_lags = [lag for lag_map in history.client_lag
                    for lag in lag_map.values()]
        assert all(lag >= 0 for lag in all_lags)
        assert max(all_lags) > 0

    def test_pipeline_stats_summarise_the_run(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=self._async_config())
        with trainer:
            trainer.run()
            stats = trainer.backend.last_pipeline_stats
        assert stats["round_mode"] == "async"
        assert stats["seals"] == 4
        assert stats["reports_merged"] >= 4  # ≥ one report per seal (B=1)
        assert 0.0 <= stats["worker_utilization"] <= 1.0
        assert stats["max_report_lag"] >= stats["mean_report_lag"] >= 0.0

    def test_zero_staleness_cap_drops_stale_reports(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=self._async_config(staleness_cap=0,
                                                         rounds=5))
        with trainer:
            trainer.run()
            stats = trainer.backend.last_pipeline_stats
        # With one shard sealing per report, the other worker's reports
        # arrive ≥1 seal stale and must be dropped under cap 0.
        assert stats["reports_dropped"] > 0

    def test_async_requires_process_pool(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=_config("serial", round_mode="async"))
        with pytest.raises(ValueError, match="process_pool"):
            trainer.run()

    def test_async_partial_participation_is_deterministic(
            self, community_clients):
        """Async rounds subsample each dispatched shard from the dedicated
        participation stream; the virtual clock makes the dispatch order —
        and therefore the sampled sets — reproducible run to run."""
        def run():
            trainer = FederatedGNN(
                community_clients, "gcn", hidden=16,
                config=self._async_config(participation=0.5))
            return trainer.run()

        a, b = run(), run()
        assert a.participants and a.participants == b.participants
        total = len(community_clients)
        for ids in a.participants.values():
            assert 0 < len(ids) <= total
        np.testing.assert_array_equal(a.test_accuracy, b.test_accuracy)

    def test_async_rejects_out_of_range_participation(
            self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=self._async_config(participation=1.5))
        with pytest.raises(ValueError, match="participation"):
            trainer.run()

    def test_async_rejects_personalized_aggregation(self, community_clients):
        """Personalized strategies assume per-client broadcasts; the async
        loop ships the raw sealed global model, so it must refuse instead
        of silently degenerating FED-PUB/GCFL+ to plain async FedAvg."""
        from repro.fgl import build_baseline

        trainer = build_baseline("fed-pub", community_clients,
                                 config=self._async_config())
        with pytest.raises(ValueError, match="personalized"):
            trainer.run()

    def test_async_rejects_hook_overrides(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=self._async_config())
        trainer.after_round = lambda round_index, participants: None
        with pytest.raises(ValueError, match="hooks"):
            trainer.run()

    def test_async_rejects_hooked_clients(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=self._async_config())
        trainer.clients[0].extra_loss = lambda client, logits: None
        with pytest.raises(ValueError, match="picklable"):
            trainer.run()
        assert trainer.backend._pool is None

    def test_invalid_async_knobs_raise(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=self._async_config(async_buffer=0))
        with pytest.raises(ValueError, match="async_buffer"):
            trainer.run()
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=self._async_config(staleness_cap=-1))
        with pytest.raises(ValueError, match="staleness_cap"):
            trainer.run()

    def test_final_weights_settle_on_sealed_model(self, community_clients):
        """After the drain, every mirror holds the last sealed global."""
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=self._async_config())
        trainer.run()
        reference = trainer.clients[0].get_weights()
        for client in trainer.clients[1:]:
            for key, value in client.get_weights().items():
                np.testing.assert_array_equal(value, reference[key])
        for key, value in trainer.server.global_state.items():
            np.testing.assert_array_equal(reference[key], value)

    def test_adafgl_step2_rides_async_pool(self, community_clients):
        """AdaFGL Step 1 can run async; Step 2 reuses the same worker pool
        (resident subgraphs) and still produces a sane personalized model."""
        config = AdaFGLConfig(rounds=3, local_epochs=1, hidden=16,
                              personalized_epochs=4, k_prop=2,
                              message_layers=1, seed=0, num_workers=2,
                              sparse_propagation=True,
                              round_mode="async", async_buffer=1,
                              staleness_cap=2,
                              worker_speeds=self.SPEEDS)
        method = AdaFGL(community_clients, config)
        method.run()
        assert method.extractor.trainer.backend._pool is None  # reclaimed
        # Step-1 seals recorded per-client lags in the extractor history.
        assert any(lag_map for lag_map in method.step1_history.client_lag)
        assert len(method.personalized) == len(community_clients)
        assert 0.0 <= method.evaluate("test") <= 1.0


# ----------------------------------------------------------------------
# Lossy top-k delta transport
# ----------------------------------------------------------------------
class TestTopkDeltaCodec:
    def test_roundtrip_reconstructs_truncated_trajectory(self, rng):
        received = {"w": rng.normal(size=(6, 4))}
        trained = {"w": received["w"] + rng.normal(size=(6, 4))}
        payload, residual, transported = encode_topk_delta(
            trained, received, top_k=5)
        rebuilt = apply_topk_delta(received, payload)
        # Kept entries move exactly to the trained value, the rest stay put
        # and their miss is carried in the residual.
        delta = trained["w"] - received["w"]
        kept = payload["w"][0]
        np.testing.assert_allclose(rebuilt["w"].ravel()[kept],
                                   trained["w"].ravel()[kept])
        np.testing.assert_allclose(rebuilt["w"] + residual["w"], trained["w"])
        assert transported == 2 * 5
        # Top-k by magnitude: every kept entry dominates every dropped one.
        dropped_mask = np.ones(delta.size, dtype=bool)
        dropped_mask[kept] = False
        assert np.abs(delta.ravel()[kept]).min() >= \
            np.abs(delta.ravel()[dropped_mask]).max()

    def test_error_feedback_carries_dropped_mass(self, rng):
        received = {"w": np.zeros(4)}
        trained = {"w": np.array([1.0, -3.0, 0.5, 2.0])}
        payload, residual, _ = encode_topk_delta(trained, received, top_k=1)
        assert payload["w"][1].tolist() == [-3.0]
        np.testing.assert_allclose(residual["w"], [1.0, 0.0, 0.5, 2.0])
        # Next round: zero fresh movement, but the residual alone must now
        # surface the next-largest dropped entry.
        payload2, residual2, _ = encode_topk_delta(
            received, received, top_k=1, residual=residual)
        assert payload2["w"][1].tolist() == [2.0]
        np.testing.assert_allclose(residual2["w"], [1.0, 0.0, 0.5, 0.0])

    def test_topk_keeps_everything_when_k_exceeds_size(self, rng):
        received = {"w": rng.normal(size=(2, 2))}
        trained = {"w": received["w"] + 1.0}
        payload, residual, _ = encode_topk_delta(trained, received, top_k=99)
        rebuilt = apply_topk_delta(received, payload)
        np.testing.assert_allclose(rebuilt["w"], trained["w"])
        np.testing.assert_array_equal(residual["w"], 0.0)

    def test_pipelined_run_ships_fewer_values(self, community_clients):
        base = dict(rounds=3, intra_worker="serial")
        lossless, _ = _run(community_clients, **base)
        lossy, lossy_history = _run(community_clients, **base,
                                    delta_codec="topk", delta_top_k=8)
        assert lossy.backend.transport.uploaded["parameter_delta"] < \
            lossless.backend.transport.uploaded["parameter_delta"]
        assert np.all(np.isfinite(lossy_history.loss))
        # Mirror and worker never diverge: a second run continues cleanly.
        assert 0.0 <= lossy_history.test_accuracy[-1] <= 1.0

    def test_codec_validation(self):
        with pytest.raises(ValueError, match="delta_codec"):
            ProcessPoolBackend(2, delta_codec="zip")
        with pytest.raises(ValueError, match="delta_top_k"):
            ProcessPoolBackend(2, delta_codec="topk", delta_top_k=0)

"""Tests for the Graph container, normalisation, homophily and utilities."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    Graph,
    add_self_loops,
    adjacency_from_edges,
    class_homophily,
    edge_homophily,
    edges_from_adjacency,
    k_hop_adjacency,
    largest_connected_component,
    node_homophily,
    normalize_adjacency,
    row_normalize,
    subgraph,
    to_symmetric,
)


def _path_graph(n=5):
    edges = np.array([[i, i + 1] for i in range(n - 1)])
    return adjacency_from_edges(edges, n)


def _toy_graph():
    adjacency = _path_graph(6)
    features = np.arange(12.0).reshape(6, 2)
    labels = np.array([0, 0, 0, 1, 1, 1])
    return Graph(adjacency=adjacency, features=features, labels=labels,
                 train_mask=np.array([1, 0, 0, 1, 0, 0], dtype=bool))


class TestGraphContainer:
    def test_basic_properties(self):
        g = _toy_graph()
        assert g.num_nodes == 6
        assert g.num_edges == 5
        assert g.num_features == 2
        assert g.num_classes == 2

    def test_masks_default_to_false(self):
        g = Graph(_path_graph(4), np.zeros((4, 2)), np.zeros(4, dtype=int))
        assert g.val_mask.sum() == 0
        assert g.test_mask.sum() == 0

    def test_rejects_nonsquare_adjacency(self):
        with pytest.raises(ValueError):
            Graph(sp.csr_matrix(np.ones((3, 4))), np.zeros((3, 2)),
                  np.zeros(3, dtype=int))

    def test_rejects_feature_length_mismatch(self):
        with pytest.raises(ValueError):
            Graph(_path_graph(4), np.zeros((5, 2)), np.zeros(4, dtype=int))

    def test_rejects_label_length_mismatch(self):
        with pytest.raises(ValueError):
            Graph(_path_graph(4), np.zeros((4, 2)), np.zeros(3, dtype=int))

    def test_rejects_bad_mask_length(self):
        with pytest.raises(ValueError):
            Graph(_path_graph(4), np.zeros((4, 2)), np.zeros(4, dtype=int),
                  train_mask=np.zeros(3, dtype=bool))

    def test_degrees(self):
        g = _toy_graph()
        assert np.allclose(g.degrees, [1, 2, 2, 2, 2, 1])

    def test_copy_is_independent(self):
        g = _toy_graph()
        c = g.copy()
        c.features[0, 0] = 99.0
        assert g.features[0, 0] != 99.0

    def test_node_subgraph_preserves_masks_and_metadata(self):
        g = _toy_graph()
        sub = g.node_subgraph(np.array([0, 1, 2]))
        assert sub.num_nodes == 3
        assert sub.train_mask[0]
        assert "global_ids" in sub.metadata
        assert sub.num_classes == g.num_classes

    def test_num_classes_metadata_override(self):
        g = _toy_graph()
        g.metadata["num_classes"] = 7
        assert g.num_classes == 7

    def test_with_adjacency_wrong_shape_rejected(self):
        g = _toy_graph()
        with pytest.raises(ValueError):
            g.with_adjacency(sp.eye(3, format="csr"))

    def test_label_onehot(self):
        g = _toy_graph()
        onehot = g.label_onehot()
        assert onehot.shape == (6, 2)
        assert np.allclose(onehot.sum(axis=1), 1.0)

    def test_label_distribution(self):
        g = _toy_graph()
        assert np.array_equal(g.label_distribution(), [3, 3])

    def test_split_index_helpers(self):
        g = _toy_graph()
        assert np.array_equal(g.train_indices(), [0, 3])
        assert g.val_indices().size == 0


class TestNormalization:
    def test_to_symmetric(self):
        directed = sp.csr_matrix(np.array([[0, 1, 0], [0, 0, 0], [1, 0, 0]],
                                          dtype=float))
        sym = to_symmetric(directed)
        assert (sym != sym.T).nnz == 0
        assert sym.diagonal().sum() == 0

    def test_add_self_loops(self):
        adj = _path_graph(3)
        with_loops = add_self_loops(adj)
        assert np.allclose(with_loops.diagonal(), 1.0)

    def test_symmetric_normalization_row_sums(self):
        adj = _path_graph(5)
        norm = normalize_adjacency(adj, r=0.5)
        # Symmetric normalisation of a graph with self-loops keeps row sums
        # close to 1 for regular parts of the graph.
        assert norm.shape == (5, 5)
        assert norm.max() <= 1.0 + 1e-9

    def test_row_normalization_r1(self):
        adj = _path_graph(5)
        norm = normalize_adjacency(adj, r=1.0)
        # r=1 gives D^0 Â D^{-1}: columns sum to one.
        assert np.allclose(np.asarray(norm.sum(axis=0)).ravel(), 1.0)

    def test_reverse_transition_r0(self):
        adj = _path_graph(5)
        norm = normalize_adjacency(adj, r=0.0)
        assert np.allclose(np.asarray(norm.sum(axis=1)).ravel(), 1.0)

    def test_invalid_r_rejected(self):
        with pytest.raises(ValueError):
            normalize_adjacency(_path_graph(3), r=1.5)

    def test_isolated_node_handled(self):
        adj = sp.csr_matrix((3, 3))
        norm = normalize_adjacency(adj, r=0.5, self_loops=False)
        assert np.all(np.isfinite(norm.toarray()))

    def test_row_normalize_dense(self):
        matrix = np.array([[2.0, 2.0], [0.0, 0.0]])
        out = row_normalize(matrix)
        assert np.allclose(out[0], [0.5, 0.5])
        assert np.allclose(out[1], [0.0, 0.0])


class TestHomophily:
    def test_perfectly_homophilous(self):
        edges = np.array([[0, 1], [2, 3]])
        adj = adjacency_from_edges(edges, 4)
        labels = np.array([0, 0, 1, 1])
        assert edge_homophily(adj, labels) == pytest.approx(1.0)
        assert node_homophily(adj, labels) == pytest.approx(1.0)

    def test_perfectly_heterophilous(self):
        edges = np.array([[0, 1], [2, 3]])
        adj = adjacency_from_edges(edges, 4)
        labels = np.array([0, 1, 0, 1])
        assert edge_homophily(adj, labels) == pytest.approx(0.0)
        assert node_homophily(adj, labels) == pytest.approx(0.0)

    def test_mixed_star(self):
        edges = np.array([[0, 1], [0, 2], [0, 3]])
        adj = adjacency_from_edges(edges, 4)
        labels = np.array([0, 0, 1, 1])
        assert edge_homophily(adj, labels) == pytest.approx(1.0 / 3.0)

    def test_empty_graph_returns_one(self):
        adj = sp.csr_matrix((3, 3))
        labels = np.array([0, 1, 2])
        assert edge_homophily(adj, labels) == 1.0
        assert node_homophily(adj, labels) == 1.0

    def test_class_homophily_bounds(self, homophilous_graph, heterophilous_graph):
        high = class_homophily(homophilous_graph.adjacency,
                               homophilous_graph.labels)
        low = class_homophily(heterophilous_graph.adjacency,
                              heterophilous_graph.labels)
        assert 0.0 <= low <= high <= 1.0

    def test_homophilous_dataset_scores_higher(self, homophilous_graph,
                                               heterophilous_graph):
        assert (edge_homophily(homophilous_graph.adjacency,
                               homophilous_graph.labels)
                > edge_homophily(heterophilous_graph.adjacency,
                                 heterophilous_graph.labels) + 0.3)


class TestGraphUtils:
    def test_edges_roundtrip(self):
        edges = np.array([[0, 1], [1, 2], [0, 3]])
        adj = adjacency_from_edges(edges, 4)
        back = edges_from_adjacency(adj)
        assert set(map(tuple, back)) == set(map(tuple, edges))

    def test_adjacency_from_empty_edges(self):
        adj = adjacency_from_edges(np.zeros((0, 2)), 5)
        assert adj.nnz == 0
        assert adj.shape == (5, 5)

    def test_adjacency_removes_self_loops_and_duplicates(self):
        edges = np.array([[0, 0], [0, 1], [1, 0]])
        adj = adjacency_from_edges(edges, 2)
        assert adj.diagonal().sum() == 0
        assert adj.nnz == 2  # one undirected edge stored twice

    def test_k_hop_adjacency_path(self):
        adj = _path_graph(4)
        two_hop = k_hop_adjacency(adj, 2)
        assert two_hop[0, 2] > 0
        assert two_hop[0, 0] == 0

    def test_k_hop_invalid(self):
        with pytest.raises(ValueError):
            k_hop_adjacency(_path_graph(3), 0)

    def test_largest_connected_component(self):
        edges = np.array([[0, 1], [1, 2], [3, 4]])
        adj = adjacency_from_edges(edges, 5)
        component = largest_connected_component(adj)
        assert set(component) == {0, 1, 2}

    def test_single_component_returns_all(self):
        adj = _path_graph(4)
        assert largest_connected_component(adj).size == 4

    def test_subgraph_extraction(self):
        adj = _path_graph(5)
        sub = subgraph(adj, np.array([0, 1, 2]))
        assert sub.shape == (3, 3)
        assert sub[0, 1] > 0

"""Tests for every centralised GNN model in the zoo."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.models import (
    GAMLP,
    GCN,
    GCNII,
    GGCN,
    MLP,
    MODEL_REGISTRY,
    GPRGNN,
    GloGNN,
    SGC,
    prepare_propagation,
)
from repro.optim import Adam


def _build(model_name, graph, hidden=16, seed=0):
    in_features = graph.num_features
    out_features = graph.num_classes
    if model_name == "mlp":
        return MLP(in_features, [hidden], out_features, seed=seed)
    if model_name == "sgc":
        return SGC(in_features, out_features, k=2, seed=seed)
    cls = MODEL_REGISTRY[model_name]
    return cls(in_features, hidden, out_features, seed=seed)


GRAPH_MODELS = ["gcn", "sgc", "gcnii", "gamlp", "gprgnn", "ggcn", "glognn"]


class TestForwardShapes:
    @pytest.mark.parametrize("name", GRAPH_MODELS)
    def test_output_shape(self, name, tiny_graph):
        model = _build(name, tiny_graph)
        out = model(Tensor(tiny_graph.features), tiny_graph.adjacency)
        assert out.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    @pytest.mark.parametrize("name", GRAPH_MODELS)
    def test_gradients_reach_all_parameters(self, name, tiny_graph):
        model = _build(name, tiny_graph)
        model.eval()  # disable dropout so every path is active
        out = model(Tensor(tiny_graph.features), tiny_graph.adjacency)
        F.cross_entropy(out, tiny_graph.labels,
                        mask=tiny_graph.train_mask).backward()
        with_grad = sum(1 for p in model.parameters() if p.grad is not None)
        total = sum(1 for _ in model.parameters())
        assert with_grad >= total - 1  # GPRGNN gamma[k] always participates

    @pytest.mark.parametrize("name", GRAPH_MODELS)
    def test_predict_probabilities(self, name, tiny_graph):
        model = _build(name, tiny_graph)
        probs = model.predict_probabilities(tiny_graph.features,
                                            tiny_graph.adjacency)
        assert probs.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)


class TestTrainingBehaviour:
    @pytest.mark.parametrize("name", ["gcn", "sgc", "gamlp", "gprgnn"])
    def test_model_learns_on_homophilous_graph(self, name, homophilous_graph):
        graph = homophilous_graph
        model = _build(name, graph, hidden=16)
        optimizer = Adam(model.parameters(), lr=0.05)
        features = Tensor(graph.features)

        def train_accuracy():
            probs = model.predict_probabilities(graph.features, graph.adjacency)
            mask = graph.train_mask
            return np.mean(probs[mask].argmax(axis=1) == graph.labels[mask])

        initial = train_accuracy()
        for _ in range(60):
            optimizer.zero_grad()
            out = model(features, graph.adjacency)
            loss = F.cross_entropy(out, graph.labels, mask=graph.train_mask)
            loss.backward()
            optimizer.step()
        assert train_accuracy() > max(initial + 0.2, 0.6)

    def test_gcn_beats_mlp_on_homophilous_structure(self):
        """When features are pure noise, GCN can still exploit structure."""
        from tests.conftest import small_csbm

        graph = small_csbm(num_nodes=150, homophily=0.9, signal=0.0, seed=5)
        results = {}
        for name in ("mlp", "gcn"):
            model = _build(name, graph, hidden=16)
            optimizer = Adam(model.parameters(), lr=0.05)
            for _ in range(80):
                optimizer.zero_grad()
                if name == "mlp":
                    out = model(Tensor(graph.features))
                else:
                    out = model(Tensor(graph.features), graph.adjacency)
                F.cross_entropy(out, graph.labels,
                                mask=graph.train_mask).backward()
                optimizer.step()
            if name == "mlp":
                model.eval()
                probs = F.softmax(model(Tensor(graph.features))).numpy()
            else:
                probs = model.predict_probabilities(graph.features,
                                                    graph.adjacency)
            mask = graph.test_mask
            results[name] = np.mean(probs[mask].argmax(axis=1)
                                    == graph.labels[mask])
        assert results["gcn"] > results["mlp"]

    def test_prepare_propagation_row_sums(self, tiny_graph):
        prop = prepare_propagation(tiny_graph.adjacency)
        assert prop.shape == (tiny_graph.num_nodes, tiny_graph.num_nodes)
        assert prop.diagonal().min() > 0  # self-loops added

    def test_propagation_matrix_cached(self, tiny_graph):
        model = GCN(tiny_graph.num_features, 8, tiny_graph.num_classes)
        first = model.propagation_matrix(tiny_graph.adjacency)
        second = model.propagation_matrix(tiny_graph.adjacency)
        assert first is second


class TestModelSpecifics:
    def test_gcn_invalid_layers(self):
        with pytest.raises(ValueError):
            GCN(4, 8, 2, num_layers=0)

    def test_sgc_invalid_k(self):
        with pytest.raises(ValueError):
            SGC(4, 2, k=0)

    def test_gamlp_hop_gates_sum_to_one(self, tiny_graph):
        model = GAMLP(tiny_graph.num_features, 8, tiny_graph.num_classes, k=3)
        gates = F.softmax(model.hop_logits.reshape(1, -1), axis=-1)
        assert gates.data.sum() == pytest.approx(1.0)

    def test_gprgnn_gamma_initialised_with_decay(self):
        model = GPRGNN(4, 8, 2, k=4, alpha=0.2)
        gamma = model.gamma.data
        assert gamma[0] == pytest.approx(0.2)
        assert gamma.shape == (5,)

    def test_gcnii_deeper_than_two_layers(self, tiny_graph):
        model = GCNII(tiny_graph.num_features, 8, tiny_graph.num_classes,
                      num_layers=6)
        out = model(Tensor(tiny_graph.features), tiny_graph.adjacency)
        assert np.all(np.isfinite(out.data))

    def test_ggcn_signed_weights_nonnegative(self, tiny_graph):
        from repro.models.ggcn import _signed_edge_weights

        embedding = np.random.default_rng(0).normal(
            size=(tiny_graph.num_nodes, 8))
        pos, neg = _signed_edge_weights(embedding, tiny_graph.adjacency)
        assert pos.min() >= 0
        assert neg.min() >= 0

    def test_glognn_handles_heterophily_better_than_gcn(self, heterophilous_graph):
        """GloGNN should at least match GCN on a strongly heterophilous graph."""
        graph = heterophilous_graph
        scores = {}
        for name in ("gcn", "glognn"):
            model = _build(name, graph, hidden=16)
            optimizer = Adam(model.parameters(), lr=0.05)
            for _ in range(60):
                optimizer.zero_grad()
                out = model(Tensor(graph.features), graph.adjacency)
                F.cross_entropy(out, graph.labels,
                                mask=graph.train_mask).backward()
                optimizer.step()
            probs = model.predict_probabilities(graph.features, graph.adjacency)
            mask = graph.test_mask
            scores[name] = np.mean(probs[mask].argmax(axis=1)
                                   == graph.labels[mask])
        assert scores["glognn"] >= scores["gcn"] - 0.05

    def test_registry_contains_all_models(self):
        for name in ("mlp", "gcn", "sgc", "gcnii", "gamlp", "gprgnn", "ggcn",
                     "glognn"):
            assert name in MODEL_REGISTRY

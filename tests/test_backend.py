"""Array-backend dispatch layer: numpy reference vs jit, bitwise.

The contract under test (see ``repro/autograd/backend``):

* the **numpy** backend is the bitwise parity reference — it must reproduce
  the pre-dispatch hot-path math exactly;
* the **jit** backend (numba CSR kernels when numba is importable, scipy
  fallbacks otherwise) must be **bitwise-identical** to numpy on its default
  kernel set, both per kernel and end-to-end across every federation engine
  path (serial, batched, persistent pool, hierarchical) and AdaFGL Step-2;
* active dropout refuses to run without an explicit rng (no hidden
  unseeded ``default_rng()`` on any hot path).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import (
    Tensor,
    current_backend,
    default_backend,
    functional as F,
    get_backend,
    list_array_backends,
    numba_available,
    register_backend,
    resolve_backend,
    use_backend,
)
from repro.autograd.backend import (
    KERNEL_NAMES,
    ArrayBackend,
    cached_transpose,
    transpose_cache_size,
)
from repro.core import AdaFGL, AdaFGLConfig
from repro.federated import FederatedConfig
from repro.fgl.fedgnn import FederatedGNN
from tests.conftest import small_csbm
from repro.simulation import community_split


NUMPY = get_backend("numpy")
JIT = get_backend("jit")


def _random_csr(rows, cols, density=0.15, seed=0):
    rng = np.random.default_rng(seed)
    matrix = sp.random(rows, cols, density=density, format="csr",
                       random_state=rng, dtype=np.float64)
    matrix.sort_indices()
    return matrix


def _sorted_support(pattern):
    rows = np.repeat(np.arange(pattern.shape[0]), np.diff(pattern.indptr))
    cols = pattern.indices
    return rows, cols


# Mixed shapes exercising the real plans: tall/thin client features,
# batched blocks, near-square patterns, single-column edge case.
SHAPES = [(40, 40, 8), (64, 64, 16), (25, 25, 1), (96, 96, 5)]


# ----------------------------------------------------------------------
# Registry / resolution behaviour
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"numpy", "jit"} <= set(list_array_backends())

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_backend("quantum")

    def test_backends_are_singletons(self):
        assert get_backend("numpy") is NUMPY
        assert get_backend("jit") is JIT

    def test_resolve_precedence(self):
        assert resolve_backend(None) is default_backend()
        assert resolve_backend("jit") is JIT
        assert resolve_backend(JIT) is JIT
        with use_backend("jit"):
            assert resolve_backend(None) is JIT
            assert current_backend() is JIT
            with use_backend("numpy"):
                assert resolve_backend(None) is NUMPY
        assert resolve_backend(None) is default_backend()

    def test_use_backend_accepts_none_as_noop(self):
        before = current_backend()
        with use_backend(None):
            assert current_backend() is before

    def test_pickling_resolves_to_singleton(self):
        # Pool workers receive backends by name, never by deep copy.
        assert pickle.loads(pickle.dumps(JIT)) is JIT
        assert pickle.loads(pickle.dumps(NUMPY)) is NUMPY

    def test_all_kernels_registered(self):
        assert not NUMPY.missing_kernels()
        assert not JIT.missing_kernels()

    def test_missing_kernels_reported(self):
        class Partial(ArrayBackend):
            name = "partial-test"

        partial = Partial()
        assert set(partial.missing_kernels()) == set(KERNEL_NAMES)
        with pytest.raises(NotImplementedError):
            partial.kernel("spmm")

    def test_register_rejects_incomplete_backend(self):
        class Incomplete(ArrayBackend):
            name = "incomplete-test"

        with pytest.raises(ValueError, match="missing kernels"):
            register_backend(Incomplete())

    def test_tensor_carries_backend(self):
        t = Tensor(np.ones((2, 2)), backend="jit")
        assert t.backend is JIT
        assert t.device == "jit"
        assert (t + t).backend is JIT
        assert t.detach().backend is JIT


# ----------------------------------------------------------------------
# Per-kernel forward/backward parity (numpy vs jit, bitwise)
# ----------------------------------------------------------------------
class TestKernelParity:
    @pytest.mark.parametrize("n,m,f", SHAPES)
    def test_spmm_forward_backward(self, n, m, f):
        adjacency = _random_csr(n, m, seed=n)
        dense = np.random.default_rng(1).standard_normal((m, f))
        grad = np.random.default_rng(2).standard_normal((n, f))
        assert np.array_equal(NUMPY.spmm(adjacency, dense),
                              JIT.spmm(adjacency, dense))
        assert np.array_equal(NUMPY.spmm_backward(adjacency, None, grad),
                              JIT.spmm_backward(adjacency, None, grad))

    def test_spmm_backward_accepts_precomputed_transpose(self):
        adjacency = _random_csr(30, 30, seed=3)
        adjacency_t = adjacency.T.tocsr()
        grad = np.random.default_rng(4).standard_normal((30, 6))
        expected = NUMPY.spmm_backward(adjacency, None, grad)
        for backend in (NUMPY, JIT):
            assert np.array_equal(
                backend.spmm_backward(adjacency, adjacency_t, grad), expected)

    @pytest.mark.parametrize("batch", [1, 3])
    def test_spmm_batched(self, batch):
        n, f = 20, 7
        block = sp.block_diag(
            [_random_csr(n, n, seed=10 + b) for b in range(batch)],
            format="csr")
        stacked = np.random.default_rng(5).standard_normal((batch, n, f))
        assert np.array_equal(NUMPY.spmm_batched(block, stacked),
                              JIT.spmm_batched(block, stacked))

    @pytest.mark.parametrize("n,m,f", SHAPES)
    def test_sddmm_forward_backward(self, n, m, f):
        pattern = _random_csr(n, n, seed=n + 1)
        rows, cols = _sorted_support(pattern)
        rng = np.random.default_rng(6)
        a = rng.standard_normal((n, f))
        b = rng.standard_normal((n, f))
        grad = rng.standard_normal(pattern.nnz)
        assert np.array_equal(NUMPY.sddmm(rows, cols, a, b),
                              JIT.sddmm(rows, cols, a, b))
        ref = NUMPY.sddmm_backward(rows, cols, a, b, grad, True, True)
        out = JIT.sddmm_backward(rows, cols, a, b, grad, True, True)
        assert np.array_equal(ref[0], out[0])
        assert np.array_equal(ref[1], out[1])

    def test_sddmm_backward_unsorted_rows_fallback(self):
        # The scatter-free path requires CSR-ordered rows; shuffled support
        # must fall back to np.add.at and stay correct (not bitwise-ordered,
        # so compare against the reference on the SAME shuffled support).
        pattern = _random_csr(30, 30, seed=8)
        rows, cols = _sorted_support(pattern)
        perm = np.random.default_rng(9).permutation(rows.size)
        rows, cols = rows[perm], cols[perm]
        rng = np.random.default_rng(10)
        a = rng.standard_normal((30, 4))
        b = rng.standard_normal((30, 4))
        grad = rng.standard_normal(rows.size)
        ref = NUMPY.sddmm_backward(rows, cols, a, b, grad, True, True)
        out = JIT.sddmm_backward(rows, cols, a, b, grad, True, True)
        assert np.array_equal(ref[0], out[0])
        assert np.array_equal(ref[1], out[1])

    def test_sddmm_backward_partial_grads(self):
        pattern = _random_csr(20, 20, seed=11)
        rows, cols = _sorted_support(pattern)
        rng = np.random.default_rng(12)
        a = rng.standard_normal((20, 3))
        b = rng.standard_normal((20, 3))
        grad = rng.standard_normal(rows.size)
        for backend in (NUMPY, JIT):
            grad_a, grad_b = backend.sddmm_backward(rows, cols, a, b, grad,
                                                    True, False)
            assert grad_a is not None and grad_b is None
            grad_a, grad_b = backend.sddmm_backward(rows, cols, a, b, grad,
                                                    False, True)
            assert grad_a is None and grad_b is not None

    @pytest.mark.parametrize("n,m,f", SHAPES)
    def test_spmm_pattern_forward_backward(self, n, m, f):
        pattern = _random_csr(n, n, seed=n + 2)
        rng = np.random.default_rng(13)
        values = rng.standard_normal(pattern.nnz)
        dense = rng.standard_normal((n, f))
        grad = rng.standard_normal((n, f))
        out_ref, matrix_ref = NUMPY.spmm_pattern(pattern, values, dense)
        out_jit, matrix_jit = JIT.spmm_pattern(pattern, values, dense)
        assert np.array_equal(out_ref, out_jit)
        assert np.array_equal(
            NUMPY.spmm_pattern_backward_values(pattern, grad, dense),
            JIT.spmm_pattern_backward_values(pattern, grad, dense))
        assert np.array_equal(
            NUMPY.spmm_pattern_backward_dense(matrix_ref, grad),
            JIT.spmm_pattern_backward_dense(matrix_jit, grad))

    def test_dropout_mask_rng_stream_identical(self):
        # Both backends must consume the rng stream identically so that a
        # numpy-trained and jit-trained run see the same masks.
        for p in (0.1, 0.5):
            mask_ref = NUMPY.dropout_mask(np.random.default_rng(0), (13, 7), p)
            mask_jit = JIT.dropout_mask(np.random.default_rng(0), (13, 7), p)
            assert np.array_equal(mask_ref, mask_jit)
        x = np.random.default_rng(1).standard_normal((13, 7))
        assert np.array_equal(NUMPY.apply_mask(x, mask_ref),
                              JIT.apply_mask(x, mask_ref))

    def test_functional_ops_match_through_autograd(self):
        adjacency = _random_csr(30, 30, seed=14)
        feats = np.random.default_rng(15).standard_normal((30, 5))
        grads = {}
        for name in ("numpy", "jit"):
            x = Tensor(feats.copy(), requires_grad=True, backend=name)
            out = F.spmm(adjacency, x)
            out.sum().backward()
            grads[name] = (out.numpy(), x.grad.copy())
        assert np.array_equal(grads["numpy"][0], grads["jit"][0])
        assert np.array_equal(grads["numpy"][1], grads["jit"][1])


# ----------------------------------------------------------------------
# Shared transposed-CSR cache (satellite: every spmm backward reuses it)
# ----------------------------------------------------------------------
class TestTransposeCache:
    def test_cache_returns_same_object(self):
        adjacency = _random_csr(25, 25, seed=16)
        first = cached_transpose(adjacency)
        assert cached_transpose(adjacency) is first
        assert np.array_equal(first.toarray(), adjacency.T.toarray())
        assert transpose_cache_size() >= 1

    def test_spmm_backward_hits_shared_cache(self):
        adjacency = _random_csr(25, 25, seed=17)
        cached = cached_transpose(adjacency)
        x = Tensor(np.random.default_rng(18).standard_normal((25, 4)),
                   requires_grad=True)
        F.spmm(adjacency, x).sum().backward()
        expected = cached @ np.ones((25, 4))
        assert np.array_equal(x.grad, expected)
        # The entry was reused, not rebuilt.
        assert cached_transpose(adjacency) is cached


# ----------------------------------------------------------------------
# Dropout rng contract (satellite: no unseeded fallback on any hot path)
# ----------------------------------------------------------------------
class TestDropoutRng:
    def test_active_dropout_without_rng_raises(self):
        x = Tensor(np.ones((4, 4)))
        with pytest.raises(ValueError, match="explicit random generator"):
            F.dropout(x, 0.5, training=True)

    def test_inactive_dropout_without_rng_is_noop(self):
        x = Tensor(np.ones((4, 4)))
        assert F.dropout(x, 0.5, training=False) is x
        assert F.dropout(x, 0.0, training=True) is x

    def test_training_paths_never_hit_fallback(self, monkeypatch):
        # Any hot path reaching an unseeded default_rng() would be a
        # reproducibility bug; make the constructor explode and train.
        def _boom(*args, **kwargs):
            raise AssertionError(
                "hot path constructed an unseeded default_rng()")

        monkeypatch.setattr(np.random, "default_rng",
                            lambda seed=None: (_boom() if seed is None
                                               else np.random.Generator(
                                                   np.random.PCG64(seed))))
        graph = small_csbm(num_nodes=60, seed=21)
        clients = community_split(graph, 2, seed=0)
        config = FederatedConfig(rounds=1, local_epochs=1, seed=0,
                                 backend="serial")
        FederatedGNN(clients, "gcn", hidden=8, config=config).run()


# ----------------------------------------------------------------------
# End-to-end TrainingHistory parity: numpy vs jit, every engine path
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def parity_clients():
    graph = small_csbm(num_nodes=90, seed=5)
    return community_split(graph, 3, seed=0)


def _histories_equal(a, b):
    assert a.loss == b.loss
    assert a.train_accuracy == b.train_accuracy
    assert a.test_accuracy == b.test_accuracy
    assert a.client_accuracy == b.client_accuracy


class TestEndToEndParity:
    @pytest.mark.parametrize("backend,extra", [
        ("serial", {}),
        ("batched", {}),
        ("process_pool", {"num_workers": 2}),
        ("process_pool", {"num_workers": 2, "hierarchical": True}),
    ], ids=["serial", "batched", "persistent-pool", "hierarchical"])
    def test_step1_history_bitwise(self, parity_clients, backend, extra):
        histories = {}
        for array_backend in ("numpy", "jit"):
            config = FederatedConfig(rounds=2, local_epochs=2, lr=0.02,
                                     seed=0, backend=backend,
                                     array_backend=array_backend, **extra)
            trainer = FederatedGNN(parity_clients, "gcn", hidden=8,
                                   config=config)
            histories[array_backend] = trainer.run()
        _histories_equal(histories["numpy"], histories["jit"])

    def test_adafgl_step2_history_bitwise(self, parity_clients):
        histories, accuracies = {}, {}
        for array_backend in ("numpy", "jit"):
            config = AdaFGLConfig(rounds=2, local_epochs=2,
                                  personalized_epochs=3, hidden=8, seed=0,
                                  sparse_propagation=True,
                                  array_backend=array_backend)
            trainer = AdaFGL(list(parity_clients), config)
            histories[array_backend] = trainer.run()
            accuracies[array_backend] = trainer.evaluate("test")
        _histories_equal(histories["numpy"], histories["jit"])
        assert accuracies["numpy"] == accuracies["jit"]

    def test_env_default_matches_explicit(self, parity_clients, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "jit")
        from repro.experiments import ExperimentSettings
        settings = ExperimentSettings(seed=0)
        assert settings.array_backend == "jit"
        assert settings.federated_config().array_backend == "jit"


class TestDispatchLintGuard:
    def test_hot_paths_are_clean(self):
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[1]
        result = subprocess.run(
            [sys.executable, str(repo / "tools" / "check_backend_dispatch.py")],
            cwd=repo, capture_output=True, text=True)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_guard_catches_bare_numpy(self, tmp_path):
        import importlib.util
        from pathlib import Path

        repo = Path(__file__).resolve().parents[1]
        spec = importlib.util.spec_from_file_location(
            "check_backend_dispatch",
            repo / "tools" / "check_backend_dispatch.py")
        guard = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(guard)
        source = (repo / "src/repro/autograd/functional.py").read_text()
        bad = source.replace(
            "out_data = backend.spmm(adjacency, dense.data)",
            "out_data = np.asarray(adjacency @ dense.data)")
        assert bad != source
        target = tmp_path / "functional.py"
        target.write_text(bad)
        violations = guard.check(target)
        assert any(fn == "spmm" and expr == "np.asarray"
                   for fn, _, expr in violations)


class TestNumbaGating:
    def test_numba_available_is_bool(self):
        assert isinstance(numba_available(), bool)

    def test_jit_backend_usable_without_numba(self):
        # Works either way: with numba, the kernels are compiled; without,
        # the scipy fallbacks serve — parity above covers both regimes.
        out = JIT.spmm(sp.eye(3, format="csr"), np.arange(6.0).reshape(3, 2))
        assert np.array_equal(out, np.arange(6.0).reshape(3, 2))

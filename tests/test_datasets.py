"""Tests for the cSBM generator, dataset registry and split utilities."""

import numpy as np
import pytest

from repro.datasets import (
    CSBMConfig,
    DATASET_REGISTRY,
    dataset_statistics,
    generate_csbm,
    inductive_partition,
    list_datasets,
    load_dataset,
    make_split_masks,
)
from repro.graph import edge_homophily, largest_connected_component


class TestCSBM:
    def test_shapes(self):
        graph = generate_csbm(CSBMConfig(num_nodes=200, num_classes=4,
                                         num_features=10, seed=0))
        assert graph.num_nodes == 200
        assert graph.num_features == 10
        assert graph.labels.max() == 3

    def test_homophily_target_high(self):
        graph = generate_csbm(CSBMConfig(num_nodes=400, edge_homophily=0.85,
                                         avg_degree=8, seed=1))
        assert edge_homophily(graph.adjacency, graph.labels) > 0.7

    def test_homophily_target_low(self):
        graph = generate_csbm(CSBMConfig(num_nodes=400, edge_homophily=0.2,
                                         avg_degree=8, seed=1))
        assert edge_homophily(graph.adjacency, graph.labels) < 0.35

    def test_connected(self):
        graph = generate_csbm(CSBMConfig(num_nodes=150, avg_degree=3, seed=2))
        assert largest_connected_component(graph.adjacency).size == 150

    def test_deterministic_given_seed(self):
        a = generate_csbm(CSBMConfig(num_nodes=100, seed=7))
        b = generate_csbm(CSBMConfig(num_nodes=100, seed=7))
        assert (a.adjacency != b.adjacency).nnz == 0
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = generate_csbm(CSBMConfig(num_nodes=100, seed=1))
        b = generate_csbm(CSBMConfig(num_nodes=100, seed=2))
        assert not np.array_equal(a.features, b.features)

    def test_all_classes_present(self):
        graph = generate_csbm(CSBMConfig(num_nodes=120, num_classes=6, seed=0))
        assert np.unique(graph.labels).size == 6

    def test_feature_signal_separates_classes(self):
        strong = generate_csbm(CSBMConfig(num_nodes=200, feature_signal=3.0,
                                          seed=0))
        weak = generate_csbm(CSBMConfig(num_nodes=200, feature_signal=0.0,
                                        seed=0))

        def class_separation(graph):
            means = np.stack([graph.features[graph.labels == c].mean(axis=0)
                              for c in range(graph.num_classes)])
            return np.linalg.norm(means - means.mean(axis=0))

        assert class_separation(strong) > class_separation(weak) + 1.0

    def test_average_degree_close_to_target(self):
        graph = generate_csbm(CSBMConfig(num_nodes=500, avg_degree=10, seed=0))
        mean_degree = graph.degrees.mean()
        assert 7.0 < mean_degree < 14.0


class TestRegistry:
    def test_twelve_datasets_registered(self):
        assert len(DATASET_REGISTRY) == 12

    def test_list_datasets_by_task(self):
        inductive = list_datasets(task="inductive")
        assert set(inductive) == {"reddit", "flickr"}
        assert len(list_datasets(task="transductive")) == 10

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    @pytest.mark.parametrize("name", list_datasets())
    def test_every_dataset_loads(self, name):
        graph = load_dataset(name, seed=0, num_nodes=150)
        spec = DATASET_REGISTRY[name]
        assert graph.num_nodes == 150
        assert graph.num_classes == spec.num_classes
        assert graph.num_features == spec.num_features
        assert graph.train_mask.sum() > 0
        assert graph.test_mask.sum() > 0

    def test_homophilous_vs_heterophilous_targets(self):
        cora = load_dataset("cora", num_nodes=400)
        squirrel = load_dataset("squirrel", num_nodes=400)
        h_cora = edge_homophily(cora.adjacency, cora.labels)
        h_squirrel = edge_homophily(squirrel.adjacency, squirrel.labels)
        assert h_cora > 0.6
        assert h_squirrel < 0.35

    def test_dataset_statistics_contains_paper_counts(self):
        stats = dataset_statistics("cora")
        assert stats["paper_nodes"] == 2708
        assert stats["classes"] == 7
        assert 0.0 <= stats["edge_homophily"] <= 1.0

    def test_num_classes_metadata_set(self):
        graph = load_dataset("citeseer", num_nodes=150)
        assert graph.metadata["num_classes"] == 6

    def test_propagation_top_k_defaults_banded_by_homophily(self):
        from repro.datasets.registry import DATASET_REGISTRY
        # BENCH_topk-informed banding: homophilous graphs need few
        # similarity entries per row, heterophilous graphs keep more.
        assert DATASET_REGISTRY["cora"].propagation_top_k == 8
        assert DATASET_REGISTRY["physics"].propagation_top_k == 8
        assert DATASET_REGISTRY["penn94"].propagation_top_k == 16
        assert DATASET_REGISTRY["chameleon"].propagation_top_k == 32
        assert DATASET_REGISTRY["squirrel"].propagation_top_k == 32

    def test_propagation_top_k_stamped_and_inherited(self):
        graph = load_dataset("cora", num_nodes=150)
        assert graph.metadata["propagation_top_k"] == 8
        sub = graph.node_subgraph(np.arange(40))
        assert sub.metadata["propagation_top_k"] == 8


class TestSplits:
    def test_ratios_respected(self):
        graph = load_dataset("cora", num_nodes=300)
        make_split_masks(graph, 0.2, 0.4, 0.4, seed=0)
        n = graph.num_nodes
        assert abs(graph.train_mask.sum() / n - 0.2) < 0.08
        assert abs(graph.val_mask.sum() / n - 0.4) < 0.08

    def test_masks_disjoint(self):
        graph = load_dataset("pubmed", num_nodes=300)
        overlap = (graph.train_mask & graph.val_mask) | \
                  (graph.train_mask & graph.test_mask) | \
                  (graph.val_mask & graph.test_mask)
        assert overlap.sum() == 0

    def test_stratified_split_covers_every_class(self):
        graph = load_dataset("computer", num_nodes=300)
        train_labels = graph.labels[graph.train_mask]
        assert np.unique(train_labels).size == graph.num_classes

    def test_invalid_ratios_rejected(self):
        graph = load_dataset("cora", num_nodes=150)
        with pytest.raises(ValueError):
            make_split_masks(graph, 0.8, 0.8)

    def test_inductive_partition(self):
        graph = load_dataset("reddit", num_nodes=200)
        observed, full = inductive_partition(graph)
        assert observed.num_nodes == int((graph.train_mask | graph.val_mask).sum())
        assert full.num_nodes == graph.num_nodes
        assert observed.test_mask.sum() == 0
